"""Figure 6c — link message/data counts per design (Lesson 4)."""

from repro.sim.experiments import figure6_traffic


def test_fig6c(benchmark, report, size):
    table = benchmark.pedantic(figure6_traffic, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    by_key = {(row[0], row[1]): [int(c) for c in row[2:]]
              for row in table.rows}
    for (label, system), (axc_msg, axc_data, l2_msg, l2_data) in \
            by_key.items():
        if system == "SCRATCH":
            # Push-based: no request messages at all, only DMA data on
            # the host link — the Lesson 4 contrast.
            assert axc_msg == 0 and axc_data == 0
            assert l2_data > 0
        if system == "FUSION":
            shared_msg = by_key[(label, "SHARED")][0]
            # The L0X filters the per-access request messages SHARED
            # pays (paper: 80-83 % filtered).
            assert axc_msg < 0.55 * shared_msg, label
