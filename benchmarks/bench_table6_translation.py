"""Table 6 — AX-TLB / AX-RMAP lookup counts (Lesson 8)."""

from repro.sim.experiments import table6
from repro.sim.simulator import run
from repro.workloads.registry import BENCHMARKS


def test_table6(benchmark, report, size):
    table = benchmark.pedantic(table6, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    tlb = [int(row[1]) for row in table.rows]
    rmap = [int(row[2]) for row in table.rows]
    # The TLB sits on the miss path: lookups track L1X misses, and the
    # RMAP (forwarded requests only) is touched far less in aggregate.
    assert all(count > 0 for count in tlb)
    assert sum(rmap) < sum(tlb)


def test_translation_energy_below_one_percent(benchmark, size):
    def measure():
        return [run("FUSION", name, size) for name in BENCHMARKS]

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    for result in results:
        assert result.energy["xlat"] < 0.01 * result.energy.total_pj
