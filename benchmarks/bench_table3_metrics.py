"""Table 3 — per-function execution metrics on FUSION (KCyc, LT, %En)."""

from repro.sim.experiments import table3


def test_table3(benchmark, report, size):
    table = benchmark.pedantic(table3, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    # Cache energy dominates compute energy for every benchmark — the
    # premise of the whole study (Table 3's Cache/Compute column).
    ratios = {float(row[1]) for row in table.rows}
    assert all(ratio > 1.0 for ratio in ratios)
