"""Figure 6b — cycle time normalised to SCRATCH."""

from repro.sim.experiments import figure6_performance
from repro.workloads.registry import LABELS

DMA_BOUND = ("fft", "disparity", "tracking", "histogram")
SMALL_WSET = ("adpcm", "susan", "filter")


def test_fig6b(benchmark, report, size):
    table = benchmark.pedantic(figure6_performance, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    if size != "full":
        return  # capacity relationships only hold at paper-shaped sizes
    rows = {row[0]: row for row in table.rows}
    # SHARED outperforms SCRATCH on the DMA-dominated group (DISP is
    # borderline in our reproduction: its oracle DMA windows capture
    # more stencil reuse than the paper's, so SHARED only breaks even).
    for name in DMA_BOUND:
        budget = 1.05 if name == "disparity" else 1.0
        assert float(rows[LABELS[name]][2]) < budget, name
    # ...and degrades on the small-working-set three (paper: -14 %).
    for name in SMALL_WSET:
        assert float(rows[LABELS[name]][2]) > 1.0, name
    # FUSION is the best design on every single benchmark.
    for label, row in rows.items():
        assert float(row[3]) <= float(row[2]) + 0.02, label
        assert float(row[3]) < 1.0, label
    # DMA dominates SCRATCH's cycle time on FFT (paper: ~82 % on the
    # DMA-bound group, with FFT the extreme case).
    assert float(rows[LABELS["fft"]][4]) > 60.0
