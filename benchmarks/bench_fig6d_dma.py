"""Figure 6d — working set vs oracle-DMA traffic (SCRATCH)."""

from repro.sim.experiments import figure6_dma
from repro.workloads.registry import LABELS


def test_fig6d(benchmark, report, size):
    table = benchmark.pedantic(figure6_dma, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    if size != "full":
        return  # capacity relationships only hold at paper-shaped sizes
    ratio = {row[0]: float(row[4]) for row in table.rows}
    # Every benchmark re-stages more data than its working set...
    assert all(value > 1.0 for value in ratio.values())
    # ...and FFT is the pathological case (paper: DMA/WSet = 165).
    assert ratio[LABELS["fft"]] == max(ratio.values())
    if table.rows and float(table.rows[0][1]) > 10:  # full size only
        assert ratio[LABELS["fft"]] > 50
