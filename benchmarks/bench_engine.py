"""Execution-engine benchmarks: parallel speedup and warm-cache reruns.

Exercises the ISSUE 1 acceptance criteria on the ``fig6a + fig6b +
headline`` grid (one deduplicated batch of Figure 6 points):

* cold cache, serial vs ``jobs=4`` — the parallel engine should win by
  >= 2x wall-clock on a machine with >= 4 CPUs;
* warm cache — a rerun must complete with zero re-simulations and a
  100 % hit ratio.

Both tests build private engines over throwaway cache directories so
the session-wide warm-up (``conftest.warm_result_cache``) and the
user's real ``~/.cache/repro`` stay out of the measurement.
"""

import os
import time

import pytest

from repro.sim.engine import DiskCache, ExecutionEngine
from repro.sim.experiments import EXPERIMENT_GRIDS
from repro.sim.reporting import ExperimentTable

SIZE = os.environ.get("REPRO_BENCH_SIZE", "full")

#: The headline evaluation grid: every Figure 6 / headline point.
GRID_EXPERIMENTS = ("fig6a", "fig6b", "headline")


def _grid(size):
    requests = []
    for name in GRID_EXPERIMENTS:
        requests.extend(EXPERIMENT_GRIDS[name](size))
    return requests


def test_cold_cache_parallel_speedup(tmp_path, report):
    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip("needs >= 2 CPUs to demonstrate parallel speedup")
    grid = _grid(SIZE)

    serial = ExecutionEngine(jobs=1, cache=DiskCache(tmp_path / "serial"))
    started = time.perf_counter()
    serial_results = serial.run_batch(grid)
    serial_s = time.perf_counter() - started

    parallel = ExecutionEngine(jobs=4,
                               cache=DiskCache(tmp_path / "parallel"))
    started = time.perf_counter()
    parallel_results = parallel.run_batch(grid)
    parallel_s = time.perf_counter() - started

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    table = ExperimentTable(
        "Engine speedup", "fig6a+fig6b+headline grid, cold cache "
        "(size={}, {} CPUs)".format(SIZE, cpus),
        ["Mode", "Points", "Wall(s)", "Speedup"])
    table.add_row("serial (jobs=1)", len(grid), serial_s, 1.0)
    table.add_row("parallel (jobs=4)", len(grid), parallel_s, speedup)
    report(table)

    # Parallel and serial paths must agree exactly (determinism).
    assert parallel_results == serial_results
    assert serial.telemetry.computed == parallel.telemetry.computed
    # Pool overhead swamps sub-second tiny grids; only the paper-sized
    # evaluation meaningfully demonstrates the 2x criterion.
    if cpus >= 4 and SIZE == "full":
        assert speedup >= 2.0


def test_warm_cache_rerun_zero_resimulations(tmp_path, benchmark, report):
    grid = _grid(SIZE)
    cache_root = tmp_path / "cache"

    cold = ExecutionEngine(cache=DiskCache(cache_root))
    cold_results = cold.run_batch(grid)
    unique_points = cold.telemetry.unique
    assert cold.telemetry.computed == unique_points
    assert cold.telemetry.hit_ratio() == 0.0

    # Fresh engine, same disk: everything must come back from the cache.
    warm = ExecutionEngine(cache=DiskCache(cache_root))
    warm_results = benchmark.pedantic(warm.run_batch, args=(grid,),
                                      rounds=1, iterations=1)
    assert warm.telemetry.computed == 0
    assert warm.telemetry.disk_hits == unique_points
    assert warm.telemetry.hit_ratio() == 1.0
    assert warm_results == cold_results
    assert all(result.meta["source"] == "disk" for result in warm_results)

    table = ExperimentTable(
        "Engine cache", "warm-cache rerun (size={})".format(SIZE),
        ["Pass", "Simulated", "Disk hits", "Hit ratio"])
    table.add_row("cold", cold.telemetry.computed, 0, "0%")
    table.add_row("warm", warm.telemetry.computed,
                  warm.telemetry.disk_hits, "100%")
    report(table)
