"""Figure 6a — dynamic energy breakdown normalised to SCRATCH."""

from repro.sim.experiments import figure6_energy
from repro.workloads.registry import LABELS


def test_fig6a(benchmark, report, size):
    table = benchmark.pedantic(figure6_energy, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    if size != "full":
        return  # capacity relationships only hold at paper-shaped sizes
    totals = {(row[0], row[1]): float(row[2]) for row in table.rows}
    # FFT: the cache hierarchies demolish the DMA baseline (paper:
    # 10.6x for SHARED; FUSION similar).
    assert totals[(LABELS["fft"], "FUSION")] < 0.35
    assert totals[(LABELS["fft"], "SHARED")] < 0.35
    # DISP: FUSION saves energy where SHARED's L1X access cost bites.
    assert totals[(LABELS["disparity"], "FUSION")] < 1.0
    assert totals[(LABELS["disparity"], "FUSION")] < \
        totals[(LABELS["disparity"], "SHARED")]
    # The small-working-set trio: SHARED burns energy in the shared
    # L1X; FUSION lands near SCRATCH (paper: within ~10 %).
    for name in ("adpcm", "susan", "filter"):
        assert totals[(LABELS[name], "SHARED")] > 1.1
        assert totals[(LABELS[name], "FUSION")] < \
            totals[(LABELS[name], "SHARED")]
