"""Benchmark-harness infrastructure.

Every bench regenerates one of the paper's tables/figures, times it with
pytest-benchmark, and registers the rendered table through the
``report`` fixture; all tables are printed together in the terminal
summary (so ``pytest benchmarks/ --benchmark-only | tee ...`` captures
them) and written to ``benchmarks/results/``.

Set ``REPRO_BENCH_SIZE=small`` (or ``tiny``) for a quick pass; the
default regenerates the full-size evaluation.

The whole simulation grid is warmed once per session through the
execution engine (``repro.sim.engine``) — deduplicated, fanned out over
``REPRO_JOBS`` workers and backed by the persistent result cache — so
the individual benches then measure table assembly over cache hits.
Warm-up and hit/miss telemetry are reported in the terminal summary.
"""

import os
import pathlib
import time

import pytest

#: Workload size used by every bench.
SIZE = os.environ.get("REPRO_BENCH_SIZE", "full")

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_TABLES = []
_WARM_STATS = {}


@pytest.fixture(scope="session", autouse=True)
def warm_result_cache():
    """Warm the engine's batch once per session (every experiment grid)."""
    from repro.sim.engine import get_engine
    from repro.sim.experiments import prefetch

    engine = get_engine()
    before = engine.telemetry.snapshot()
    started = time.perf_counter()
    after = prefetch(size=SIZE)
    _WARM_STATS.update({
        "wall_s": time.perf_counter() - started,
        "jobs": engine.jobs,
        "simulated": after["computed"] - before["computed"],
        "disk_hits": after["disk_hits"] - before["disk_hits"],
        "memory_hits": after["memory_hits"] - before["memory_hits"],
        "unique_points": after["unique"] - before["unique"],
    })
    yield


@pytest.fixture
def report():
    """Collect a rendered ExperimentTable for the terminal summary."""

    def _report(table):
        _TABLES.append(table)
        _RESULTS_DIR.mkdir(exist_ok=True)
        filename = table.exp_id.lower().replace(" ", "") + ".txt"
        (_RESULTS_DIR / filename).write_text(table.render() + "\n")
        return table

    return _report


@pytest.fixture
def size():
    return SIZE


def pytest_terminal_summary(terminalreporter):
    if _WARM_STATS:
        from repro.sim.engine import get_engine, resolve_jobs
        telemetry = get_engine().telemetry
        terminalreporter.write_sep("=", "simulation engine (size={})"
                                        .format(SIZE))
        terminalreporter.write_line(
            "cache warm-up : {unique_points} unique points, {simulated} "
            "simulated, {disk_hits} disk hits, {memory_hits} memory hits "
            "in {wall_s:.2f}s".format(**_WARM_STATS))
        terminalreporter.write_line(
            "session total : {} simulated / {} hits (hit ratio {:.0%}), "
            "jobs={}".format(
                telemetry.computed, telemetry.hits, telemetry.hit_ratio(),
                resolve_jobs(get_engine().jobs)))
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "regenerated paper tables/figures "
                                    "(size={})".format(SIZE))
    for table in _TABLES:
        terminalreporter.write_line(table.render())
        terminalreporter.write_line("")
