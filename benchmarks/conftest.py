"""Benchmark-harness infrastructure.

Every bench regenerates one of the paper's tables/figures, times it with
pytest-benchmark, and registers the rendered table through the
``report`` fixture; all tables are printed together in the terminal
summary (so ``pytest benchmarks/ --benchmark-only | tee ...`` captures
them) and written to ``benchmarks/results/``.

Set ``REPRO_BENCH_SIZE=small`` (or ``tiny``) for a quick pass; the
default regenerates the full-size evaluation.
"""

import os
import pathlib

import pytest

#: Workload size used by every bench.
SIZE = os.environ.get("REPRO_BENCH_SIZE", "full")

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_TABLES = []


@pytest.fixture
def report():
    """Collect a rendered ExperimentTable for the terminal summary."""

    def _report(table):
        _TABLES.append(table)
        _RESULTS_DIR.mkdir(exist_ok=True)
        filename = table.exp_id.lower().replace(" ", "") + ".txt"
        (_RESULTS_DIR / filename).write_text(table.render() + "\n")
        return table

    return _report


@pytest.fixture
def size():
    return SIZE


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "regenerated paper tables/figures "
                                    "(size={})".format(SIZE))
    for table in _TABLES:
        terminalreporter.write_line(table.render())
        terminalreporter.write_line("")
