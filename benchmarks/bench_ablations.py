"""Ablations of the design choices DESIGN.md calls out.

Not from the paper's evaluation — these probe the knobs the FUSION
design fixes implicitly: ACC lease length, L1X banking, and the oracle
DMA's double buffering.
"""

from dataclasses import replace

from repro.common.config import small_config
from repro.sim.reporting import ExperimentTable
from repro.sim.simulator import run

BENCH = "filter"   # small, lease-sensitive (Lesson 4's thrash case)


def test_ablation_lease_length(benchmark, report, size):
    """Short leases force renewal misses; long leases stall host
    forwards (GTIME) — the sweet spot is in the middle."""

    def sweep():
        table = ExperimentTable(
            "Ablation lease", "ACC lease length sweep (FUSION, FILT.)",
            ["Lease", "Cycles", "L0X miss%", "FwdStallCyc"])
        for lease in (50, 200, 500, 2000, 10000):
            result = run("FUSION", BENCH, size,
                         small_config().with_lease(lease))
            accesses = sum(v for k, v in result.stats.items()
                           if k.startswith("l0x.axc")
                           and k.endswith(".accesses"))
            misses = sum(v for k, v in result.stats.items()
                         if k.startswith("l0x.axc")
                         and k.endswith(".misses"))
            table.add_row(lease, result.accel_cycles,
                          100.0 * misses / accesses,
                          result.stat("l1x.fwd_gtime_stall_cycles"))
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(table)
    miss_rates = [float(row[2]) for row in table.rows]
    # Longer leases monotonically reduce renewal misses...
    assert miss_rates[0] > miss_rates[-1]
    # ...but extreme leases stall the host's forwarded requests longer.
    stalls = [float(row[3]) for row in table.rows]
    assert stalls[-1] >= stalls[0]


def test_ablation_l1x_banking(benchmark, report, size):
    """Banking is where the L1X's energy efficiency comes from."""

    def sweep():
        table = ExperimentTable(
            "Ablation banking", "L1X bank count (FUSION, FILT.)",
            ["Banks", "L1X pJ/access", "Total uJ"])
        for banks in (1, 4, 16):
            config = small_config()
            config = replace(config, tile=replace(
                config.tile, l1x=replace(config.tile.l1x, banks=banks)))
            result = run("FUSION", BENCH, size, config)
            accesses = result.stat("l1x.accesses") or 1
            table.add_row(banks,
                          result.stat("l1x.energy_pj") / accesses,
                          result.energy.total_pj / 1e6)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(table)
    per_access = [float(row[1]) for row in table.rows]
    assert per_access[0] > per_access[-1]


def test_ablation_dma_double_buffering(benchmark, report, size):
    """Disabling double buffering doubles the window footprint: fewer,
    larger transfers, but less halo re-staging."""

    def sweep():
        table = ExperimentTable(
            "Ablation dma", "DMA double buffering (SCRATCH, TRACK.)",
            ["DoubleBuffered", "DMA kB", "#DMA", "Cycles"])
        for enabled in (True, False):
            config = small_config()
            config = replace(config, dma=replace(config.dma,
                                                 double_buffered=enabled))
            result = run("SCRATCH", "tracking", size, config)
            table.add_row(str(enabled), result.dma_kb, result.dma_count,
                          result.accel_cycles)
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report(table)
    dma_kb = [float(row[1]) for row in table.rows]
    transfers = [int(row[2]) for row in table.rows]
    assert transfers[0] > transfers[1]   # double buffering: more windows
    assert dma_kb[0] >= dma_kb[1]        # ... and more halo re-staging
