"""Perf smoke: guard the lowered hot path's speedup against regression.

The trace-lowering layer (``repro.workloads.lowering``) exists to make
the per-access inner loop fast; this script *measures* that claim and
fails when it regresses.  It times the same synthetic invocation two
ways:

* **legacy** — a faithful replica of the pre-lowering interpreter
  (isinstance dispatch over ``trace.ops``, per-op ``math.ceil``,
  ``op.block`` property, dotted-name stats), kept here as the fixed
  comparison point;
* **lowered** — the production :meth:`repro.accel.core.AxcCore.run`
  over the compiled stream.

It also measures the run-coalescing fast path the same way: a
run-heavy synthetic invocation driven through a real ACC L0X/L1X
protocol stack once op-by-op and once with the controller's
``access_run`` entry point wired in.  One rung further up, the vector
pair drives the same stack once per-phase (``phase_quote``) and once
with the batched-window entry point (``phase_quote_batch``) wired in.
Above those sits the replay pair: an iterated Figure-6 FFT workload
through the full FUSION system with ``REPLAY_INVOCATIONS`` off
(steady phases) and on (guarded invocation replay), timed interleaved
best-of-3 — and the Figure-6 grid itself, timed cold and interleaved
with the vector rung on and off.

Each pair must produce the *same end time* (semantics check), and each
fast/slow ops-per-second ratio must stay within ``TOLERANCE`` of the
committed baseline (``benchmarks/results/perf_baseline.json``).
Comparing *ratios* rather than absolute ops/sec keeps the gate
meaningful across machines of different speeds.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py                  # gate
    PYTHONPATH=src python benchmarks/perf_smoke.py --write-baseline # regen
"""

import argparse
import heapq
import json
import math
import pathlib
import sys
import time

from repro.accel.core import AxcCore
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, ComputeOp, FunctionTrace, MemOp

BASELINE_PATH = (pathlib.Path(__file__).parent / "results"
                 / "perf_baseline.json")

#: Allowed relative drop of the lowered/legacy speedup ratio before the
#: gate fails (satellite requirement: >30% regression fails CI).
TOLERANCE = 0.30

#: Best-of-N timing repeats (the minimum is robust to scheduler noise).
REPEATS = 5


def make_trace(num_mem_ops=4096, blocks=64):
    """Synthetic invocation exercising both op kinds on the hot path."""
    ops = []
    for i in range(num_mem_ops):
        ops.append(ComputeOp(int_ops=3, fp_ops=1))
        ops.append(MemOp(
            AccessType.STORE if i % 4 == 3 else AccessType.LOAD,
            (i % blocks) * 64 + (i % 8) * 8))
    return FunctionTrace(name="perf_smoke", benchmark="perf_smoke",
                         ops=ops, lease_time=1000)


def make_run_trace(num_runs=512, run_len=8, blocks=32):
    """Run-heavy synthetic invocation: ``num_runs`` maximal access runs
    of ``run_len`` same-line loads, each preceded by a compute chunk (so
    lowering cannot merge adjacent runs on the same line)."""
    ops = []
    for i in range(num_runs):
        ops.append(ComputeOp(int_ops=3, fp_ops=1))
        base = (i % blocks) * 64
        for j in range(run_len):
            ops.append(MemOp(AccessType.LOAD, base + (j % 8) * 8))
    return FunctionTrace(name="perf_smoke_runs", benchmark="perf_smoke",
                         ops=ops, lease_time=1_000_000)


def build_acc_l0x():
    """A minimal but real ACC protocol stack (L0X over L1X over the host
    memory system) for timing the controller hot path in isolation."""
    from repro.common.config import small_config
    from repro.coherence.acc import AccL0XController, AccL1XController
    from repro.coherence.mesi import HostMemorySystem
    from repro.interconnect.link import Link
    from repro.mem.tlb import PageTable

    config = small_config()
    stats = StatsRegistry()
    mem = HostMemorySystem(config, stats)
    l1x = AccL1XController(config, mem, PageTable(), stats)
    mem.tile_agent = l1x
    return AccL0XController(0, config, l1x, Link("axc_l1x", 0.4, stats),
                            Link("fwd", 0.1, stats), stats)


def legacy_iter_run(core, trace, start_time, access_fn, mlp,
                    issue_interval=1, charge_invocation=True):
    """The pre-lowering ``AxcCore.iter_run``, replicated verbatim.

    This is the fixed comparison point for the speedup measurement; it
    must keep paying the historical per-op costs (isinstance dispatch,
    ``op.block`` property, ``math.ceil`` per ComputeOp, dotted stats
    adds) so the ratio tracks what lowering actually buys.
    """
    mlp = max(1, int(mlp))
    now = start_time
    outstanding = []            # heap of completion times
    fill_time_of = {}           # block -> outstanding completion
    int_ops = 0
    fp_ops = 0
    mem_ops = 0
    for op in trace.ops:
        if isinstance(op, ComputeOp):
            int_ops += op.int_ops
            fp_ops += op.fp_ops
            now += max(1, math.ceil(op.total / core.issue_width))
            continue
        if not isinstance(op, MemOp):
            continue
        mem_ops += 1
        while outstanding and outstanding[0] <= now:
            heapq.heappop(outstanding)
        if len(outstanding) >= mlp:
            earliest = heapq.heappop(outstanding)
            if earliest > now:
                core._core_stats.add("mlp_stall_cycles", earliest - now)
                now = earliest
        latency = access_fn(op, now)
        completion = now + latency
        pending = fill_time_of.get(op.block)
        if pending is not None and pending > completion:
            completion = pending
            core._core_stats.add("mshr_merges")
        fill_time_of[op.block] = completion
        heapq.heappush(outstanding, completion)
        now += issue_interval
        yield now
    if outstanding:
        now = max(now, max(outstanding))
    core._core_stats.add("cycles", now - start_time)
    core._core_stats.add("mem_ops", mem_ops)
    core._core_stats.add("int_ops", int_ops)
    core._core_stats.add("fp_ops", fp_ops)
    return now


def legacy_run(core, trace, start_time, access_fn, mlp,
               issue_interval=1):
    """Drive :func:`legacy_iter_run` like the pre-lowering ``run`` did."""
    generator = legacy_iter_run(core, trace, start_time, access_fn, mlp,
                                issue_interval)
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return stop.value


def _flat_access(op, now):
    return 2


def _best_seconds(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_measurement():
    """Measure legacy vs lowered ops/sec; returns the metrics dict."""
    trace = make_trace()
    total_ops = len(trace.ops)
    core = AxcCore(0, StatsRegistry())

    legacy_end = legacy_run(core, trace, 0, _flat_access, mlp=4)
    lowered_end = core.run(trace, 0, _flat_access, mlp=4)
    if legacy_end != lowered_end:
        raise AssertionError(
            "semantics drift: legacy end {} != lowered end {}".format(
                legacy_end, lowered_end))

    legacy_s = _best_seconds(
        lambda: legacy_run(core, trace, 0, _flat_access, mlp=4))
    lowered_s = _best_seconds(
        lambda: core.run(trace, 0, _flat_access, mlp=4))
    legacy_ops = total_ops / legacy_s
    lowered_ops = total_ops / lowered_s
    return {
        "trace_ops": total_ops,
        "legacy_ops_per_s": round(legacy_ops),
        "lowered_ops_per_s": round(lowered_ops),
        "speedup": round(lowered_ops / legacy_ops, 3),
    }


def run_coalesce_measurement():
    """Measure per-op vs run-coalesced protocol serving; returns the
    metrics dict.

    The same run-heavy trace is driven through a warm ACC L0X twice per
    repeat: once expanding every op through ``AccL0XController.access``
    and once with ``access_run`` wired into the core, which serves each
    steady-state run in one protocol step.  Both paths must end at the
    same cycle — the run-coalescing layer's bit-identity claim, pinned
    exhaustively by ``tests/test_golden_full.py`` and
    ``tests/test_property_coalesce.py``.
    """
    trace = make_run_trace()
    total_mem_ops = sum(1 for op in trace.ops if isinstance(op, MemOp))
    core = AxcCore(0, StatsRegistry())
    l0x = build_acc_l0x()
    lease = trace.lease_time
    l0x.invocation_lease = lease

    def access_run(op, count, now, horizon, interval):
        return l0x.access_run(op, count, now, horizon, interval, lease)

    # Warm the L0X (install every line) so both timed paths run in the
    # steady state the fast path targets; then check semantics.
    core.run(trace, 0, l0x.access, mlp=4)
    per_op_end = core.run(trace, 0, l0x.access, mlp=4)
    coalesced_end = core.run(trace, 0, l0x.access, mlp=4,
                             access_run=access_run)
    if per_op_end != coalesced_end:
        raise AssertionError(
            "semantics drift: per-op end {} != coalesced end {}".format(
                per_op_end, coalesced_end))

    per_op_s = _best_seconds(
        lambda: core.run(trace, 0, l0x.access, mlp=4))
    coalesced_s = _best_seconds(
        lambda: core.run(trace, 0, l0x.access, mlp=4,
                         access_run=access_run))
    per_op_ops = total_mem_ops / per_op_s
    coalesced_ops = total_mem_ops / coalesced_s
    return {
        "mem_ops": total_mem_ops,
        "run_length": 8,
        "per_op_ops_per_s": round(per_op_ops),
        "coalesced_ops_per_s": round(coalesced_ops),
        "speedup": round(coalesced_ops / per_op_ops, 3),
    }


def run_phase_measurement():
    """Measure run-coalesced vs steady-phase protocol serving; returns
    the metrics dict.

    The next rung of the fallback ladder above run coalescing: the same
    warm run-heavy trace, once with ``access_run`` alone and once with
    ``phase_quote`` also wired in, so lease-stable windows collapse to
    one guard check, one ledger flush and one closed-form timeline
    application.  Both paths must end at the same cycle — bit-identity
    across every counter is pinned by
    ``tests/test_property_phases.py``.
    """
    trace = make_run_trace()
    total_mem_ops = sum(1 for op in trace.ops if isinstance(op, MemOp))
    core = AxcCore(0, StatsRegistry())
    l0x = build_acc_l0x()
    lease = trace.lease_time
    l0x.invocation_lease = lease

    def access_run(op, count, now, horizon, interval):
        return l0x.access_run(op, count, now, horizon, interval, lease)

    core.run(trace, 0, l0x.access, mlp=4)  # install every line
    coalesced_end = core.run(trace, 0, l0x.access, mlp=4,
                             access_run=access_run)
    phased_end = core.run(trace, 0, l0x.access, mlp=4,
                          access_run=access_run,
                          phase_quote=l0x.phase_quote)
    if phased_end != coalesced_end:
        raise AssertionError(
            "semantics drift: coalesced end {} != phased end {}".format(
                coalesced_end, phased_end))

    coalesced_s = _best_seconds(
        lambda: core.run(trace, 0, l0x.access, mlp=4,
                         access_run=access_run))
    phased_s = _best_seconds(
        lambda: core.run(trace, 0, l0x.access, mlp=4,
                         access_run=access_run,
                         phase_quote=l0x.phase_quote))
    coalesced_ops = total_mem_ops / coalesced_s
    phased_ops = total_mem_ops / phased_s
    return {
        "mem_ops": total_mem_ops,
        "coalesced_ops_per_s": round(coalesced_ops),
        "phased_ops_per_s": round(phased_ops),
        "speedup": round(phased_ops / coalesced_ops, 3),
    }


def run_vector_measurement():
    """Measure per-phase vs batched-window protocol serving; returns
    the metrics dict.

    The fifth rung of the fallback ladder: the run-heavy trace (grown
    to 2048 runs so one window covers a hundred-plus phases), once with
    ``phase_quote`` alone — one guard walk, ledger flush and timeline
    per phase — and once with ``phase_quote_batch`` also wired in, so
    the whole window's guard collapses to one vectorised lease compare
    and its ledger to one bulk apply.  Both paths must end at the same
    cycle — bit-identity across every counter is pinned by
    ``tests/test_property_vector.py``.

    Returns ``None`` on a numpy-less install: the rung cannot engage
    there (it degrades to the per-phase path), so there is nothing to
    measure or gate.
    """
    from repro.workloads.vector import HAVE_NUMPY
    if not HAVE_NUMPY:
        return None
    trace = make_run_trace(num_runs=2048)
    total_mem_ops = sum(1 for op in trace.ops if isinstance(op, MemOp))
    core = AxcCore(0, StatsRegistry())
    l0x = build_acc_l0x()
    lease = trace.lease_time
    l0x.invocation_lease = lease

    def access_run(op, count, now, horizon, interval):
        return l0x.access_run(op, count, now, horizon, interval, lease)

    core.run(trace, 0, l0x.access, mlp=4)  # install every line
    phased_end = core.run(trace, 0, l0x.access, mlp=4,
                          access_run=access_run,
                          phase_quote=l0x.phase_quote)
    vector_end = core.run(trace, 0, l0x.access, mlp=4,
                          access_run=access_run,
                          phase_quote=l0x.phase_quote,
                          phase_quote_batch=l0x.phase_quote_batch)
    if vector_end != phased_end:
        raise AssertionError(
            "semantics drift: phased end {} != vector end {}".format(
                phased_end, vector_end))

    phased_s = _best_seconds(
        lambda: core.run(trace, 0, l0x.access, mlp=4,
                         access_run=access_run,
                         phase_quote=l0x.phase_quote))
    vector_s = _best_seconds(
        lambda: core.run(trace, 0, l0x.access, mlp=4,
                         access_run=access_run,
                         phase_quote=l0x.phase_quote,
                         phase_quote_batch=l0x.phase_quote_batch))
    phased_ops = total_mem_ops / phased_s
    vector_ops = total_mem_ops / vector_s
    return {
        "mem_ops": total_mem_ops,
        "phased_ops_per_s": round(phased_ops),
        "vector_ops_per_s": round(vector_ops),
        "speedup": round(vector_ops / phased_ops, 3),
    }


def run_replay_measurement(repeats=3):
    """Measure phased vs replayed whole-system wall time; returns the
    metrics dict.

    The top rung of the fallback ladder: an iterated Figure-6 FFT
    workload (every invocation recurs twelve times, the shape the
    invocation replay cache targets) is run through the full FUSION
    system with ``REPLAY_INVOCATIONS`` off (the steady-phase path
    serves everything) and on (recorded invocations are served whole
    from the guarded replay cache).  Timings are interleaved best-of-N
    on one machine state, and both paths must report bit-identical
    results — the rung's equivalence claim, pinned across systems and
    adversarial leases by ``tests/test_property_replay.py``.
    """
    from repro.accel import replay as replay_mod
    from repro.common.config import small_config
    from repro.systems import SYSTEMS
    from repro.workloads.kernels import fft
    from repro.workloads.registry import _factory

    workload, _ = fft.build_workload(_factory, n=256, iterations=12)
    fusion = SYSTEMS["FUSION"]

    def fingerprint(result):
        return (result.accel_cycles, result.total_cycles,
                repr(result.energy.total_pj),
                tuple(sorted((name, repr(value))
                             for name, value in result.stats.items())))

    original = replay_mod.REPLAY_INVOCATIONS
    phased_s = replayed_s = float("inf")
    try:
        # Warm both paths once (lowering/DMA caches attach to the
        # shared trace objects), then check bit-identity.
        replay_mod.REPLAY_INVOCATIONS = False
        phased = fusion(small_config(), workload).run()
        replay_mod.REPLAY_INVOCATIONS = True
        replay_mod.reset_telemetry()
        replayed = fusion(small_config(), workload).run()
        if fingerprint(phased) != fingerprint(replayed):
            raise AssertionError(
                "semantics drift: replay on/off results differ")
        telemetry = replay_mod.telemetry_snapshot()

        for _ in range(repeats):
            replay_mod.REPLAY_INVOCATIONS = False
            start = time.perf_counter()
            fusion(small_config(), workload).run()
            phased_s = min(phased_s, time.perf_counter() - start)
            replay_mod.REPLAY_INVOCATIONS = True
            start = time.perf_counter()
            fusion(small_config(), workload).run()
            replayed_s = min(replayed_s, time.perf_counter() - start)
    finally:
        replay_mod.REPLAY_INVOCATIONS = original
    return {
        "benchmark": "fft",
        "n": 256,
        "iterations": 12,
        "phased_s": round(phased_s, 4),
        "replayed_s": round(replayed_s, 4),
        "replay_hits": telemetry["hits"],
        "replay_recordings": telemetry["recordings"],
        "speedup": round(phased_s / replayed_s, 3),
    }


def measure_grid(size="small", repeats=3):
    """Wall time of the full Figure 6 grid (all systems, uncached),
    measured interleaved with the vector rung on and off.

    Best-of-``repeats`` per path, alternating vector and per-phase
    passes on one machine state (the only way wall-clock comparisons
    mean anything on a drifting container).  Every timed pass runs with
    cold per-trace caches — the registry rebuild happens outside the
    timer, so lowering, DMA windows and MLP characterisation are paid
    inside it, exactly like a fresh process.  The two paths' grids must
    be bit-identical (same fingerprint the property suites pin),
    checked on the first repeat.
    """
    import repro.accel.core as core_mod
    from repro.common.config import small_config
    from repro.systems import SYSTEMS
    from repro.workloads import registry

    config = small_config()

    def cold_pass():
        registry.clear_caches()
        workloads = {name: registry.build_workload(name, size)
                     for name in registry.BENCHMARKS}
        results = {}
        start = time.perf_counter()
        for cls in SYSTEMS.values():
            for name, workload in workloads.items():
                results[(cls.name, name)] = cls(config, workload).run()
        return time.perf_counter() - start, results

    def fingerprints(results):
        return {
            key: (result.accel_cycles, result.total_cycles,
                  repr(result.energy.total_pj),
                  tuple(sorted((name, repr(value))
                               for name, value in result.stats.items())))
            for key, result in results.items()}

    original = core_mod.VECTOR_PHASES
    vector_s = phased_s = float("inf")
    try:
        for index in range(repeats):
            core_mod.VECTOR_PHASES = True
            elapsed, vector_results = cold_pass()
            vector_s = min(vector_s, elapsed)
            core_mod.VECTOR_PHASES = False
            elapsed, phased_results = cold_pass()
            phased_s = min(phased_s, elapsed)
            if index == 0 and fingerprints(vector_results) \
                    != fingerprints(phased_results):
                raise AssertionError(
                    "semantics drift: fig6 grid differs with "
                    "VECTOR_PHASES on/off")
    finally:
        core_mod.VECTOR_PHASES = original
    return {
        "systems": len(SYSTEMS),
        "benchmarks": len(registry.BENCHMARKS),
        "size": size,
        "wall_s": round(vector_s, 3),
        "phased_wall_s": round(phased_s, 3),
        "vector_speedup": round(phased_s / vector_s, 3),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write-baseline", action="store_true",
                        help="measure and (re)write the committed "
                             "baseline JSON instead of gating")
    parser.add_argument("--grid", action="store_true",
                        help="with --write-baseline: also record the "
                             "Figure 6 small-grid wall time")
    args = parser.parse_args(argv)

    metrics = run_measurement()
    print("legacy : {legacy_ops_per_s:>10,} ops/s".format(**metrics))
    print("lowered: {lowered_ops_per_s:>10,} ops/s".format(**metrics))
    print("speedup: {speedup:.2f}x (lowered over legacy)".format(**metrics))
    coalesce = run_coalesce_measurement()
    print("per-op   : {per_op_ops_per_s:>10,} ops/s".format(**coalesce))
    print("coalesced: {coalesced_ops_per_s:>10,} ops/s".format(**coalesce))
    print("speedup: {speedup:.2f}x (coalesced over per-op protocol "
          "serving)".format(**coalesce))
    phases = run_phase_measurement()
    print("coalesced: {coalesced_ops_per_s:>10,} ops/s".format(**phases))
    print("phased   : {phased_ops_per_s:>10,} ops/s".format(**phases))
    print("speedup: {speedup:.2f}x (steady phases over coalesced "
          "serving)".format(**phases))
    vector = run_vector_measurement()
    if vector is not None:
        print("phased   : {phased_ops_per_s:>10,} ops/s".format(**vector))
        print("vector   : {vector_ops_per_s:>10,} ops/s".format(**vector))
        print("speedup: {speedup:.2f}x (batched windows over per-phase "
              "serving)".format(**vector))
    else:
        print("vector   : numpy not installed; rung degrades to "
              "per-phase serving (pair skipped)")
    replay = run_replay_measurement()
    print("phased   : {phased_s:>10.3f} s (iterated fft, full FUSION "
          "system)".format(**replay))
    print("replayed : {replayed_s:>10.3f} s ({replay_hits} guard "
          "hits)".format(**replay))
    print("speedup: {speedup:.2f}x (invocation replay over steady "
          "phases)".format(**replay))

    if args.write_baseline:
        payload = {
            "_provenance": (
                "Recorded by `PYTHONPATH=src python benchmarks/"
                "perf_smoke.py --write-baseline --grid` on the dev "
                "container ({}).  CI gates only the machine-independent "
                "speedup *ratios* (micro.speedup, run_coalesce.speedup, "
                "steady_phases.speedup); fig6_grid.wall_s is "
                "machine-dependent provenance only — container speed "
                "drifts between sessions (earlier baselines recorded "
                "6.838s and 6.236s for grids this machine now runs in "
                "under 4s), so wall-clock comparisons are only "
                "meaningful interleaved on one machine state.  "
                "invocation_replay is measured that way: phased vs "
                "replayed passes interleaved best-of-3 on the iterated "
                "Figure-6 FFT through the full FUSION system, results "
                "checked bit-identical; the recorded speedup must stay "
                "at or above the 1.8x acceptance floor.  fig6_grid is "
                "interleaved the same way: cold vector vs per-phase "
                "passes alternating best-of-3, fingerprints checked "
                "bit-identical, wall_s recording the vector-rung pass "
                "and phased_wall_s the rung-off pass.".format(
                    time.strftime("%Y-%m-%d"))),
            "micro": metrics,
            "run_coalesce": coalesce,
            "steady_phases": phases,
            "invocation_replay": replay,
            "tolerance": TOLERANCE,
        }
        if vector is not None:
            payload["vector_phases"] = vector
        if args.grid:
            payload["fig6_grid"] = measure_grid()
            print("fig6 {size} grid ({systems} systems x {benchmarks} "
                  "benchmarks): {wall_s:.2f}s vectorised, "
                  "{phased_wall_s:.2f}s per-phase "
                  "({vector_speedup:.2f}x)".format(
                      **payload["fig6_grid"]))
        BASELINE_PATH.parent.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(payload, indent=1) + "\n")
        print("wrote {}".format(BASELINE_PATH))
        return 0

    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except (OSError, ValueError):
        print("no baseline at {}; run with --write-baseline".format(
            BASELINE_PATH), file=sys.stderr)
        return 2
    tolerance = baseline.get("tolerance", TOLERANCE)
    failed = False
    gates = [("lowered hot path", baseline["micro"]["speedup"],
              metrics["speedup"])]
    if "run_coalesce" in baseline:
        gates.append(("run coalescing", baseline["run_coalesce"]["speedup"],
                      coalesce["speedup"]))
    if "steady_phases" in baseline:
        gates.append(("steady phases",
                      baseline["steady_phases"]["speedup"],
                      phases["speedup"]))
    if "vector_phases" in baseline and vector is not None:
        gates.append(("vector phases",
                      baseline["vector_phases"]["speedup"],
                      vector["speedup"]))
    if "invocation_replay" in baseline:
        gates.append(("invocation replay",
                      baseline["invocation_replay"]["speedup"],
                      replay["speedup"]))
    for label, reference, measured in gates:
        floor = reference * (1.0 - tolerance)
        # The replay rung also carries an absolute acceptance floor:
        # the recorded speedup must stay >= 1.8x, not merely within
        # tolerance of a (possibly decaying) baseline.
        if label == "invocation replay":
            floor = max(floor, 1.8)
        print("{}: baseline speedup {:.2f}x; floor {:.2f}x; "
              "measured {:.2f}x".format(label, reference, floor, measured))
        if measured < floor:
            print("FAIL: {} regressed more than {:.0%} vs baseline".format(
                label, tolerance), file=sys.stderr)
            failed = True
    if failed:
        return 1
    print("OK: hot paths within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
