"""Perf smoke: guard the lowered hot path's speedup against regression.

The trace-lowering layer (``repro.workloads.lowering``) exists to make
the per-access inner loop fast; this script *measures* that claim and
fails when it regresses.  It times the same synthetic invocation two
ways:

* **legacy** — a faithful replica of the pre-lowering interpreter
  (isinstance dispatch over ``trace.ops``, per-op ``math.ceil``,
  ``op.block`` property, dotted-name stats), kept here as the fixed
  comparison point;
* **lowered** — the production :meth:`repro.accel.core.AxcCore.run`
  over the compiled stream.

Both paths must produce the *same end time* (semantics check), and the
lowered/legacy ops-per-second ratio must stay within ``TOLERANCE`` of
the committed baseline (``benchmarks/results/perf_baseline.json``).
Comparing the *ratio* rather than absolute ops/sec keeps the gate
meaningful across machines of different speeds.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py                  # gate
    PYTHONPATH=src python benchmarks/perf_smoke.py --write-baseline # regen
"""

import argparse
import heapq
import json
import math
import pathlib
import sys
import time

from repro.accel.core import AxcCore
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, ComputeOp, FunctionTrace, MemOp

BASELINE_PATH = (pathlib.Path(__file__).parent / "results"
                 / "perf_baseline.json")

#: Allowed relative drop of the lowered/legacy speedup ratio before the
#: gate fails (satellite requirement: >30% regression fails CI).
TOLERANCE = 0.30

#: Best-of-N timing repeats (the minimum is robust to scheduler noise).
REPEATS = 5


def make_trace(num_mem_ops=4096, blocks=64):
    """Synthetic invocation exercising both op kinds on the hot path."""
    ops = []
    for i in range(num_mem_ops):
        ops.append(ComputeOp(int_ops=3, fp_ops=1))
        ops.append(MemOp(
            AccessType.STORE if i % 4 == 3 else AccessType.LOAD,
            (i % blocks) * 64 + (i % 8) * 8))
    return FunctionTrace(name="perf_smoke", benchmark="perf_smoke",
                         ops=ops, lease_time=1000)


def legacy_iter_run(core, trace, start_time, access_fn, mlp,
                    issue_interval=1, charge_invocation=True):
    """The pre-lowering ``AxcCore.iter_run``, replicated verbatim.

    This is the fixed comparison point for the speedup measurement; it
    must keep paying the historical per-op costs (isinstance dispatch,
    ``op.block`` property, ``math.ceil`` per ComputeOp, dotted stats
    adds) so the ratio tracks what lowering actually buys.
    """
    mlp = max(1, int(mlp))
    now = start_time
    outstanding = []            # heap of completion times
    fill_time_of = {}           # block -> outstanding completion
    int_ops = 0
    fp_ops = 0
    mem_ops = 0
    for op in trace.ops:
        if isinstance(op, ComputeOp):
            int_ops += op.int_ops
            fp_ops += op.fp_ops
            now += max(1, math.ceil(op.total / core.issue_width))
            continue
        if not isinstance(op, MemOp):
            continue
        mem_ops += 1
        while outstanding and outstanding[0] <= now:
            heapq.heappop(outstanding)
        if len(outstanding) >= mlp:
            earliest = heapq.heappop(outstanding)
            if earliest > now:
                core._core_stats.add("mlp_stall_cycles", earliest - now)
                now = earliest
        latency = access_fn(op, now)
        completion = now + latency
        pending = fill_time_of.get(op.block)
        if pending is not None and pending > completion:
            completion = pending
            core._core_stats.add("mshr_merges")
        fill_time_of[op.block] = completion
        heapq.heappush(outstanding, completion)
        now += issue_interval
        yield now
    if outstanding:
        now = max(now, max(outstanding))
    core._core_stats.add("cycles", now - start_time)
    core._core_stats.add("mem_ops", mem_ops)
    core._core_stats.add("int_ops", int_ops)
    core._core_stats.add("fp_ops", fp_ops)
    return now


def legacy_run(core, trace, start_time, access_fn, mlp,
               issue_interval=1):
    """Drive :func:`legacy_iter_run` like the pre-lowering ``run`` did."""
    generator = legacy_iter_run(core, trace, start_time, access_fn, mlp,
                                issue_interval)
    while True:
        try:
            next(generator)
        except StopIteration as stop:
            return stop.value


def _flat_access(op, now):
    return 2


def _best_seconds(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_measurement():
    """Measure legacy vs lowered ops/sec; returns the metrics dict."""
    trace = make_trace()
    total_ops = len(trace.ops)
    core = AxcCore(0, StatsRegistry())

    legacy_end = legacy_run(core, trace, 0, _flat_access, mlp=4)
    lowered_end = core.run(trace, 0, _flat_access, mlp=4)
    if legacy_end != lowered_end:
        raise AssertionError(
            "semantics drift: legacy end {} != lowered end {}".format(
                legacy_end, lowered_end))

    legacy_s = _best_seconds(
        lambda: legacy_run(core, trace, 0, _flat_access, mlp=4))
    lowered_s = _best_seconds(
        lambda: core.run(trace, 0, _flat_access, mlp=4))
    legacy_ops = total_ops / legacy_s
    lowered_ops = total_ops / lowered_s
    return {
        "trace_ops": total_ops,
        "legacy_ops_per_s": round(legacy_ops),
        "lowered_ops_per_s": round(lowered_ops),
        "speedup": round(lowered_ops / legacy_ops, 3),
    }


def measure_grid(size="small"):
    """Wall time of the full Figure 6 grid (all systems, uncached)."""
    from repro.common.config import small_config
    from repro.systems import SYSTEMS
    from repro.workloads.registry import BENCHMARKS, build_workload

    config = small_config()
    workloads = {name: build_workload(name, size) for name in BENCHMARKS}
    start = time.perf_counter()
    for cls in SYSTEMS.values():
        for workload in workloads.values():
            cls(config, workload).run()
    return {
        "systems": len(SYSTEMS),
        "benchmarks": len(workloads),
        "size": size,
        "wall_s": round(time.perf_counter() - start, 3),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write-baseline", action="store_true",
                        help="measure and (re)write the committed "
                             "baseline JSON instead of gating")
    parser.add_argument("--grid", action="store_true",
                        help="with --write-baseline: also record the "
                             "Figure 6 small-grid wall time")
    args = parser.parse_args(argv)

    metrics = run_measurement()
    print("legacy : {legacy_ops_per_s:>10,} ops/s".format(**metrics))
    print("lowered: {lowered_ops_per_s:>10,} ops/s".format(**metrics))
    print("speedup: {speedup:.2f}x (lowered over legacy)".format(**metrics))

    if args.write_baseline:
        payload = {"micro": metrics, "tolerance": TOLERANCE}
        if args.grid:
            payload["fig6_grid"] = measure_grid()
            print("fig6 {size} grid ({systems} systems x {benchmarks} "
                  "benchmarks): {wall_s:.2f}s".format(
                      **payload["fig6_grid"]))
        BASELINE_PATH.parent.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(payload, indent=1) + "\n")
        print("wrote {}".format(BASELINE_PATH))
        return 0

    try:
        baseline = json.loads(BASELINE_PATH.read_text())
    except (OSError, ValueError):
        print("no baseline at {}; run with --write-baseline".format(
            BASELINE_PATH), file=sys.stderr)
        return 2
    reference = baseline["micro"]["speedup"]
    floor = reference * (1.0 - baseline.get("tolerance", TOLERANCE))
    print("baseline speedup {:.2f}x; floor {:.2f}x".format(
        reference, floor))
    if metrics["speedup"] < floor:
        print("FAIL: lowered hot path regressed more than {:.0%} "
              "vs baseline".format(baseline.get("tolerance", TOLERANCE)),
              file=sys.stderr)
        return 1
    print("OK: lowered hot path within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
