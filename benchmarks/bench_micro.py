"""Microbenchmarks of the simulator's hot paths (true pytest-benchmark
timing loops — these gate simulator performance regressions)."""

from repro.common.config import small_config
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, MemOp
from repro.coherence.acc import AccL0XController, AccL1XController
from repro.coherence.mesi import HostMemorySystem
from repro.interconnect.link import Link
from repro.mem.cache import SetAssocCache
from repro.mem.tlb import PageTable


def test_micro_cache_lookup(benchmark):
    cache = SetAssocCache(small_config().tile.l0x)
    for i in range(64):
        cache.insert(i * 64)
    blocks = [(i % 64) * 64 for i in range(1024)]

    def lookups():
        for block in blocks:
            cache.lookup(block)

    benchmark(lookups)


def test_micro_acc_hit_path(benchmark):
    config = small_config()
    stats = StatsRegistry()
    mem = HostMemorySystem(config, stats)
    l1x = AccL1XController(config, mem, PageTable(), stats)
    mem.tile_agent = l1x
    l0x = AccL0XController(0, config, l1x, Link("axc_l1x", 0.4, stats),
                           Link("fwd", 0.1, stats), stats)
    ops = [MemOp(AccessType.LOAD, (i % 32) * 4) for i in range(512)]

    def accesses():
        for i, op in enumerate(ops):
            l0x.access(op, now=i, lease=1_000_000)

    benchmark(accesses)


def test_micro_host_load_hit(benchmark):
    config = small_config()
    mem = HostMemorySystem(config, StatsRegistry())
    mem.host_load(0x40)

    def loads():
        for _ in range(512):
            mem.host_load(0x40)

    benchmark(loads)
