"""Microbenchmarks of the simulator's hot paths (true pytest-benchmark
timing loops — these gate simulator performance regressions).

The ``test_micro_core_run_*`` pair measures the tentpole claim of the
trace-lowering layer directly: the same synthetic invocation interpreted
by the legacy per-op loop (replicated in ``perf_smoke.py``) vs executed
from its lowered stream by the production ``AxcCore.run``.  The
committed numbers (and the CI regression gate) live in
``results/perf_baseline.json`` via ``python benchmarks/perf_smoke.py``.
"""

import functools

import perf_smoke

from repro.accel import replay as replay_mod
from repro.accel.core import AxcCore
from repro.common.config import small_config
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, MemOp
from repro.coherence.acc import AccL0XController, AccL1XController
from repro.coherence.mesi import HostMemorySystem
from repro.interconnect.link import Link
from repro.mem.cache import SetAssocCache
from repro.mem.tlb import PageTable
from repro.workloads.lowering import lowered_trace


def test_micro_cache_lookup(benchmark):
    cache = SetAssocCache(small_config().tile.l0x)
    for i in range(64):
        cache.insert(i * 64)
    blocks = [(i % 64) * 64 for i in range(1024)]

    def lookups():
        for block in blocks:
            cache.lookup(block)

    benchmark(lookups)


def test_micro_acc_hit_path(benchmark):
    config = small_config()
    stats = StatsRegistry()
    mem = HostMemorySystem(config, stats)
    l1x = AccL1XController(config, mem, PageTable(), stats)
    mem.tile_agent = l1x
    l0x = AccL0XController(0, config, l1x, Link("axc_l1x", 0.4, stats),
                           Link("fwd", 0.1, stats), stats)
    ops = [MemOp(AccessType.LOAD, (i % 32) * 4) for i in range(512)]

    def accesses():
        for i, op in enumerate(ops):
            l0x.access(op, now=i, lease=1_000_000)

    benchmark(accesses)


def test_micro_core_run_lowered(benchmark):
    """Ops/sec of the production core over the pre-lowered stream."""
    trace = perf_smoke.make_trace()
    core = AxcCore(0, StatsRegistry())
    lowered_trace(trace, core.issue_width)  # lower once, outside the loop

    benchmark(lambda: core.run(trace, 0, perf_smoke._flat_access, mlp=4))


def test_micro_core_run_legacy(benchmark):
    """Ops/sec of the replicated pre-lowering interpreter (comparison
    point for the speedup the lowering layer claims)."""
    trace = perf_smoke.make_trace()
    core = AxcCore(0, StatsRegistry())

    benchmark(lambda: perf_smoke.legacy_run(
        core, trace, 0, perf_smoke._flat_access, mlp=4))


def test_micro_lowered_matches_legacy():
    """Semantics gate: both interpreters end at the same cycle."""
    trace = perf_smoke.make_trace()
    core = AxcCore(0, StatsRegistry())
    legacy_end = perf_smoke.legacy_run(
        core, trace, 0, perf_smoke._flat_access, mlp=4)
    lowered_end = core.run(trace, 0, perf_smoke._flat_access, mlp=4)
    assert lowered_end == legacy_end


def _warm_run_setup():
    """Warm ACC stack + run-heavy trace for the coalescing pair."""
    trace = perf_smoke.make_run_trace()
    core = AxcCore(0, StatsRegistry())
    l0x = perf_smoke.build_acc_l0x()
    l0x.invocation_lease = lease = trace.lease_time

    def access_run(op, count, now, horizon, interval):
        return l0x.access_run(op, count, now, horizon, interval, lease)

    core.run(trace, 0, l0x.access, mlp=4)  # install every line
    return trace, core, l0x, access_run


def test_micro_acc_run_per_op(benchmark):
    """Ops/sec expanding every access-run op through the L0X protocol."""
    trace, core, l0x, _ = _warm_run_setup()

    benchmark(lambda: core.run(trace, 0, l0x.access, mlp=4))


def test_micro_acc_run_coalesced(benchmark):
    """Ops/sec with ``access_run`` serving each steady-state run in one
    protocol step (the run-coalescing fast path)."""
    trace, core, l0x, access_run = _warm_run_setup()

    benchmark(lambda: core.run(trace, 0, l0x.access, mlp=4,
                               access_run=access_run))


def test_micro_run_coalesced_matches_per_op():
    """Semantics gate: both protocol paths end at the same cycle."""
    trace, core, l0x, access_run = _warm_run_setup()
    per_op_end = core.run(trace, 0, l0x.access, mlp=4)
    coalesced_end = core.run(trace, 0, l0x.access, mlp=4,
                             access_run=access_run)
    assert coalesced_end == per_op_end


def test_micro_acc_phase_steady(benchmark):
    """Ops/sec with ``phase_quote`` serving whole lease-stable windows
    in one protocol step (the steady-state phase engine — top rung of
    the fallback ladder above the coalesced-run path)."""
    trace, core, l0x, access_run = _warm_run_setup()

    benchmark(lambda: core.run(trace, 0, l0x.access, mlp=4,
                               access_run=access_run,
                               phase_quote=l0x.phase_quote))


def test_micro_phase_matches_coalesced():
    """Semantics gate: the phase path and the coalesced-run path end at
    the same cycle (bit-identity across all counters is the property
    suite's job — ``tests/test_property_phases.py``)."""
    trace, core, l0x, access_run = _warm_run_setup()
    coalesced_end = core.run(trace, 0, l0x.access, mlp=4,
                             access_run=access_run)
    phased_end = core.run(trace, 0, l0x.access, mlp=4,
                          access_run=access_run,
                          phase_quote=l0x.phase_quote)
    assert phased_end == coalesced_end


def _warm_window_setup():
    """Warm ACC stack + a long steady-state trace whose phase plan
    compiles to one large :class:`~repro.workloads.vector.VectorWindow`
    (the regime the vector rung targets)."""
    import pytest

    pytest.importorskip("numpy")
    trace = perf_smoke.make_run_trace(num_runs=2048)
    core = AxcCore(0, StatsRegistry())
    l0x = perf_smoke.build_acc_l0x()
    l0x.invocation_lease = lease = trace.lease_time

    def access_run(op, count, now, horizon, interval):
        return l0x.access_run(op, count, now, horizon, interval, lease)

    core.run(trace, 0, l0x.access, mlp=4)  # install every line
    return trace, core, l0x, access_run


def test_micro_acc_windows_phased(benchmark):
    """Ops/sec serving the long window one ``phase_quote`` at a time
    (comparison point for the vector rung's batch win)."""
    trace, core, l0x, access_run = _warm_window_setup()

    benchmark(lambda: core.run(trace, 0, l0x.access, mlp=4,
                               access_run=access_run,
                               phase_quote=l0x.phase_quote))


def test_micro_acc_windows_vector(benchmark):
    """Ops/sec with ``phase_quote_batch`` guarding and accounting the
    whole multi-phase window in one vectorised pass (the fifth rung of
    the fallback ladder)."""
    trace, core, l0x, access_run = _warm_window_setup()

    benchmark(lambda: core.run(
        trace, 0, l0x.access, mlp=4, access_run=access_run,
        phase_quote=l0x.phase_quote,
        phase_quote_batch=l0x.phase_quote_batch))


def test_micro_vector_matches_phased():
    """Semantics gate: the batched window path and the per-phase path
    end at the same cycle (counter bit-identity is covered by
    ``tests/test_property_vector.py``)."""
    trace, core, l0x, access_run = _warm_window_setup()
    phased_end = core.run(trace, 0, l0x.access, mlp=4,
                          access_run=access_run,
                          phase_quote=l0x.phase_quote)
    vector_end = core.run(trace, 0, l0x.access, mlp=4,
                          access_run=access_run,
                          phase_quote=l0x.phase_quote,
                          phase_quote_batch=l0x.phase_quote_batch)
    assert vector_end == phased_end


@functools.lru_cache(maxsize=1)
def _iterated_fft_workload():
    """A small iterated FFT: every invocation recurs eight times, the
    recurrence shape the invocation replay cache targets."""
    from repro.workloads.kernels import fft
    from repro.workloads.registry import _factory

    workload, _ = fft.build_workload(_factory, n=128, iterations=8)
    return workload


def _run_fusion(workload, replay_on):
    from repro.systems import SYSTEMS

    original = replay_mod.REPLAY_INVOCATIONS
    replay_mod.REPLAY_INVOCATIONS = replay_on
    try:
        return SYSTEMS["FUSION"](small_config(), workload).run()
    finally:
        replay_mod.REPLAY_INVOCATIONS = original


def test_micro_fusion_fft_phased(benchmark):
    """Whole-system wall time with the replay rung off: the iterated
    FFT is served by the steady-phase path (comparison point for the
    replay rung's claim)."""
    workload = _iterated_fft_workload()
    _run_fusion(workload, False)  # warm the lowering/DMA trace caches

    benchmark(lambda: _run_fusion(workload, False))


def test_micro_fusion_fft_replayed(benchmark):
    """Whole-system wall time with the guarded invocation replay cache
    serving recorded invocations whole (top rung of the fallback
    ladder)."""
    workload = _iterated_fft_workload()
    _run_fusion(workload, True)  # warm caches and record invocations

    benchmark(lambda: _run_fusion(workload, True))


def test_micro_replay_matches_phased():
    """Semantics gate: the replay rung reports results bit-identical to
    the phased path (the full property is pinned across systems and
    adversarial leases by ``tests/test_property_replay.py``)."""
    workload = _iterated_fft_workload()
    phased = _run_fusion(workload, False)
    replayed = _run_fusion(workload, True)
    assert replayed.accel_cycles == phased.accel_cycles
    assert replayed.total_cycles == phased.total_cycles
    assert repr(replayed.energy.total_pj) == repr(phased.energy.total_pj)
    assert (sorted((n, repr(v)) for n, v in replayed.stats.items())
            == sorted((n, repr(v)) for n, v in phased.stats.items()))


def test_micro_host_load_hit(benchmark):
    config = small_config()
    mem = HostMemorySystem(config, StatsRegistry())
    mem.host_load(0x40)

    def loads():
        for _ in range(512):
            mem.host_load(0x40)

    benchmark(loads)
