"""Figure 7 — LARGE (8K/256K) vs SMALL (4K/64K) accelerator caches."""

from repro.sim.experiments import figure7
from repro.workloads.registry import LABELS


def test_fig7(benchmark, report, size):
    table = benchmark.pedantic(figure7, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    if size != "full":
        return  # capacity relationships only hold at paper-shaped sizes
    energy = {row[0]: float(row[1]) for row in table.rows}
    misses = {row[0]: float(row[3]) for row in table.rows}
    # Lesson 7: the small-working-set trio pays the larger L1X's access
    # energy and gets nothing back.
    for name in ("adpcm", "susan", "filter"):
        assert energy[LABELS[name]] > 1.05, name
        assert misses[LABELS[name]] > 0.95, name
    # DISP is the one benchmark that newly fits the 256 kB L1X (paper:
    # 22 % L1X-miss drop); it must see the largest miss reduction.
    assert misses[LABELS["disparity"]] == min(misses.values())
    assert misses[LABELS["disparity"]] < 0.8
