"""Benches for the library's extensions beyond the paper's evaluation:
the IDEAL efficiency bound, the adaptive lease policy, and PID-tagged
multi-tenancy."""

from repro.common.config import small_config
from repro.sim.reporting import ExperimentTable
from repro.sim.simulator import run
from repro.systems import FusionSystem
from repro.systems.multitenant import MultiTenantFusionSystem
from repro.workloads.registry import BENCHMARKS, LABELS, build_workload


def test_ideal_efficiency(benchmark, report, size):
    """Fraction of the data-movement-free bound each design achieves."""

    def measure():
        table = ExperimentTable(
            "Ext efficiency", "IDEAL cycles / system cycles (%)",
            ["Benchmark", "SCRATCH", "SHARED", "FUSION"])
        for name in BENCHMARKS:
            ideal = run("IDEAL", name, size).accel_cycles
            table.add_row(
                LABELS[name],
                100.0 * ideal / run("SCRATCH", name, size).accel_cycles,
                100.0 * ideal / run("SHARED", name, size).accel_cycles,
                100.0 * ideal / run("FUSION", name, size).accel_cycles)
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(table)
    for row in table.rows:
        assert float(row[3]) >= float(row[1]) - 1e-6 or \
            float(row[3]) >= float(row[2]) - 1e-6
        assert 0 < float(row[3]) <= 100.0


def test_adaptive_lease_policy(benchmark, report, size):
    """Adaptive leases recover most of a badly chosen fixed lease."""

    def measure():
        table = ExperimentTable(
            "Ext adaptive-lease",
            "Fixed-40 vs adaptive vs paper leases (FUSION, FILT.)",
            ["Policy", "Cycles", "L0X misses", "uJ"])
        workload = build_workload("filter", size)
        short = small_config().with_lease(40)
        configs = [("fixed-40", short),
                   ("adaptive-40", short.with_lease_policy("adaptive")),
                   ("paper", small_config())]
        for label, config in configs:
            result = FusionSystem(config, workload).run()
            misses = sum(v for k, v in result.stats.items()
                         if k.startswith("l0x.axc")
                         and k.endswith(".misses"))
            table.add_row(label, result.accel_cycles, misses,
                          result.energy.total_pj / 1e6)
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(table)
    misses = {row[0]: float(row[2]) for row in table.rows}
    assert misses["adaptive-40"] < misses["fixed-40"]


def test_pipelined_overlap(benchmark, report, size):
    """Dependence-aware invocation overlap (the Figure 5 concurrency)."""

    def measure():
        from repro.workloads.dependence import parallelism_profile
        table = ExperimentTable(
            "Ext pipelined", "FUSION vs dependence-pipelined FUSION",
            ["Benchmark", "Width", "FUSION KCyc", "PIPE KCyc",
             "Speedup"])
        for name in BENCHMARKS:
            workload = build_workload(name, size)
            _, _, width = parallelism_profile(workload)
            seq = run("FUSION", name, size)
            pipe = run("FUSION-PIPE", name, size)
            table.add_row(LABELS[name], width,
                          seq.accel_cycles / 1000.0,
                          pipe.accel_cycles / 1000.0,
                          seq.accel_cycles / pipe.accel_cycles)
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(table)
    for row in table.rows:
        width = int(row[1])
        speedup = float(row[4])
        assert speedup >= 0.99
        if width == 1:
            assert speedup <= 1.01  # chains cannot overlap


def test_multitenant_isolation(benchmark, report, size):
    """Two processes time-sharing one tile: PID tags keep them apart."""

    def measure():
        table = ExperimentTable(
            "Ext multitenant", "PID-tagged tile sharing (FUSION-MT)",
            ["Scenario", "Cycles", "PIDconflicts", "L1Xmisses"])
        wl_a = build_workload("adpcm", size)
        wl_b = build_workload("filter", size)
        solo_a = FusionSystem(small_config(), wl_a).run()
        solo_b = FusionSystem(small_config(), wl_b).run()
        pair = MultiTenantFusionSystem(small_config(),
                                       [wl_a, wl_b]).run()
        table.add_row("adpcm alone", solo_a.accel_cycles, 0,
                      int(solo_a.stat("l1x.misses")))
        table.add_row("filter alone", solo_b.accel_cycles, 0,
                      int(solo_b.stat("l1x.misses")))
        table.add_row("co-resident", pair.accel_cycles,
                      int(pair.stat("l1x.pid_conflicts")),
                      int(pair.stat("l1x.misses")))
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(table)
    pair_misses = int(table.rows[2][3])
    solo_misses = int(table.rows[0][3]) + int(table.rows[1][3])
    # Isolation: co-residency can only add misses, never share data.
    assert pair_misses >= solo_misses
