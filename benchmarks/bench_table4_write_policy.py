"""Table 4 — write-through vs writeback bandwidth at the L0X (Lesson 5)."""

from repro.sim.experiments import table4
from repro.workloads.registry import LABELS


def test_table4(benchmark, report, size):
    table = benchmark.pedantic(table4, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    if size != "full":
        return  # capacity relationships only hold at paper-shaped sizes
    # Write-through must cost more store-traffic flits than write-caching
    # on every streaming benchmark (the paper's Lesson 5).  FFT's strided
    # butterflies are the one workload with low per-line store reuse.
    ratios = {row[0]: float(row[4]) for row in table.rows}
    losers = [name for name, ratio in ratios.items() if ratio <= 1.0]
    assert set(losers) <= {LABELS["fft"]}
    assert sum(1 for r in ratios.values() if r > 1.5) >= 5
