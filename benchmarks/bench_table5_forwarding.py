"""Table 5 — FUSION-Dx inter-AXC forwarding (blocks, energy savings)."""

from repro.sim.experiments import table5


def test_table5(benchmark, report, size):
    table = benchmark.pedantic(table5, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    if size != "full":
        return  # capacity relationships only hold at paper-shaped sizes
    blocks = [int(row[1]) for row in table.rows]
    link_savings = [float(row[3].rstrip("%")) for row in table.rows]
    assert all(count > 0 for count in blocks)
    # Forwarding saves tile-link energy on both studied benchmarks
    # (paper: 16.9 % on FFT, 5.7 % on TRACK).
    assert all(saving > 0 for saving in link_savings)
