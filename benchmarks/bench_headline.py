"""Headline claims — aggregate speedups and energy savings vs the paper."""

from repro.sim.experiments import headline


def test_headline(benchmark, report, size):
    table = benchmark.pedantic(headline, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    if size != "full":
        return  # capacity relationships only hold at paper-shaped sizes
    measured = {row[0]: row[2] for row in table.rows}

    def value(key):
        return float(measured[key].rstrip("x"))

    # Directional agreement with every aggregate claim.  Magnitudes are
    # compressed relative to the paper (our oracle DMA is kinder than
    # theirs — see EXPERIMENTS.md), but every winner/loser matches.
    assert value("FUSION speedup vs SCRATCH (geomean)") > 1.2
    assert value("SHARED speedup, DMA-bound subset") > 1.2
    assert value("SHARED slowdown, small-WSet subset") < 1.0
    assert value("FUSION energy saving vs SCRATCH (geomean)") > 1.0
    assert value("FUSION energy saving, FFT") > 4.0
    assert value("FUSION energy saving, DISP") > 1.0
