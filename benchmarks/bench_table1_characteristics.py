"""Table 1 — accelerator characteristics (%Time, op mix, MLP, %SHR, LT)."""

from repro.sim.experiments import table1


def test_table1(benchmark, report, size):
    table = benchmark.pedantic(table1, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    # Every benchmark contributes at least two accelerated functions and
    # the suite-wide average sharing degree is substantial (the paper
    # reports ~50 %).
    shr = [float(row[8]) for row in table.rows]
    assert len(table.rows) >= 14
    assert sum(shr) / len(shr) > 30.0
