"""Policy-engine headline: per-invocation strategy selection vs the
best static coherence design.

The acceptance claims, checked at every size:

* the oracle never loses to the best static system on any kernel
  (guaranteed by construction — the uniform runs are oracle
  candidates — so a violation means the evaluator broke);
* the trained bandit closes at least half the static-to-oracle gap on
  at least two kernels (on kernels where the gap is zero, matching the
  best static counts as closed — there was nothing to learn).
"""

from repro.sim.experiments import policy_gap


def test_policy_gap(benchmark, report, size):
    table = benchmark.pedantic(policy_gap, kwargs={"size": size},
                               rounds=1, iterations=1)
    report(table)
    rows = {row[0]: [float(cell) for cell in row[2:]]
            for row in table.rows}
    assert rows

    for name, (best, oracle, bandit, _gain, _closed) in rows.items():
        assert oracle <= best, \
            "oracle worse than best static on {}".format(name)
        assert bandit > 0

    closed_half = [name for name, row in rows.items() if row[4] >= 50.0]
    assert len(closed_half) >= 2, \
        "bandit closed >=50% of the gap only on {}".format(closed_half)
