"""The paper's Figure 1 motivating example, built from the public API.

An image-processing application reads an image and passes it through
three step functions: ``step1`` (gain) and ``step2`` (threshold) are
offloaded to accelerators AXC-1 and AXC-2; ``step3`` runs in software on
the host.  The intermediate array ``tmp_1`` is the data that ping-pongs
through the host L2 in a scratchpad design and flows directly through
the tile in FUSION.

This example shows how to define a *custom* workload with
:class:`repro.workloads.builder.TraceBuilder` and run it on all four
systems — the same way you would evaluate your own accelerator
pipeline.

Run with::

    python examples/image_pipeline.py
"""

from repro import SYSTEMS, small_config
from repro.workloads.builder import AddressSpace, TraceBuilder

WIDTH, HEIGHT = 96, 64


FRAMES = 4


def build_figure1_workload():
    """in_img -> step1 (AXC-1) -> tmp_1 -> step2 (AXC-2) -> tmp_2.

    The pipeline runs once per video frame (the paper's accelerated
    functions "are invoked repeatedly"): each frame re-migrates
    execution across the two accelerators, which is exactly the data
    movement the cache hierarchy exists to optimise.
    """
    space = AddressSpace()
    tb = TraceBuilder("figure1", space)
    npx = WIDTH * HEIGHT
    in_img = space.alloc("in_img", npx, elem_size=1)
    tmp_1 = space.alloc("tmp_1", npx, elem_size=1)
    tmp_2 = space.alloc("tmp_2", npx, elem_size=1)

    for _frame in range(FRAMES):
        # step1: per-pixel gain (AXC-1).
        with tb.function("step1", lease=500):
            for i in range(npx):
                tb.load(in_img, i)
                tb.compute(int_ops=3)
                tb.store(tmp_1, i)

        # step2: threshold against a 3-pixel neighbourhood (AXC-2);
        # consumes tmp_1 — the inter-accelerator hand-off Figure 1 is
        # about.
        with tb.function("step2", lease=500):
            for i in range(1, npx - 1):
                tb.load(tmp_1, i - 1)
                tb.load(tmp_1, i)
                tb.load(tmp_1, i + 1)
                tb.compute(int_ops=5)
                tb.store(tmp_2, i)

    # step3 runs in software: the host consumes tmp_2 incrementally.
    return tb.workload(host_inputs=("in_img",), host_outputs=("tmp_2",))


def main():
    workload = build_figure1_workload()
    config = small_config()
    print("Figure 1 pipeline: {} pixels, {} accelerators, "
          "tmp_1 is {}-block shared intermediate\n".format(
              WIDTH * HEIGHT, workload.num_axcs,
              len(workload.invocations[0].dirty_blocks())))

    baseline = None
    header = "{:<10s} {:>12s} {:>10s} {:>12s} {:>12s}".format(
        "system", "cycles", "energy uJ", "vs SCRATCH", "host-link kB")
    print(header)
    print("-" * len(header))
    for name in ("SCRATCH", "SHARED", "FUSION", "FUSION-Dx"):
        result = SYSTEMS[name](config, workload).run()
        if baseline is None:
            baseline = result
        host_bytes = (result.stat("link.l1x_l2.data_bytes")
                      + result.stat("link.l1x_l2.msg_bytes"))
        print("{:<10s} {:>12,d} {:>10.2f} {:>11.2f}x {:>12.1f}".format(
            name, int(result.accel_cycles),
            result.energy.total_pj / 1e6,
            baseline.energy.total_pj / result.energy.total_pj,
            host_bytes / 1024))
    print("\nSCRATCH DMAs tmp_1 out to the L2 and back into AXC-2's")
    print("scratchpad; FUSION keeps it inside the tile, and FUSION-Dx")
    print("pushes it straight from AXC-1's L0X into AXC-2's.")


if __name__ == "__main__":
    main()
