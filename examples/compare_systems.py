"""Compare all four system designs across the full benchmark suite.

A compact reproduction of the Figure 6 story: per-benchmark cycles and
energy, normalised to the SCRATCH baseline, plus the tile-traffic
numbers behind them (Lesson 4).

Run with::

    python examples/compare_systems.py [size]
"""

import sys

from repro import BENCHMARKS, LABELS, run

SYSTEMS = ("SCRATCH", "SHARED", "FUSION", "FUSION-Dx")


def main():
    size = sys.argv[1] if len(sys.argv) > 1 else "small"
    print("All systems, all benchmarks (size={}), normalised to "
          "SCRATCH\n".format(size))
    header = "{:<8s}".format("bench")
    for system in SYSTEMS:
        header += " | {:^21s}".format(system)
    print(header)
    sub = "{:<8s}".format("")
    for _ in SYSTEMS:
        sub += " | {:>9s} {:>11s}".format("cycles", "energy")
    print(sub)
    print("-" * len(header))

    geomean_cycles = {system: 1.0 for system in SYSTEMS}
    geomean_energy = {system: 1.0 for system in SYSTEMS}
    for benchmark in BENCHMARKS:
        base = run("SCRATCH", benchmark, size)
        row = "{:<8s}".format(LABELS[benchmark])
        for system in SYSTEMS:
            result = run(system, benchmark, size)
            cyc = result.accel_cycles / base.accel_cycles
            erg = result.energy.total_pj / base.energy.total_pj
            geomean_cycles[system] *= cyc
            geomean_energy[system] *= erg
            row += " | {:>8.2f}x {:>10.2f}x".format(cyc, erg)
        print(row)

    n = len(BENCHMARKS)
    row = "{:<8s}".format("geomean")
    for system in SYSTEMS:
        row += " | {:>8.2f}x {:>10.2f}x".format(
            geomean_cycles[system] ** (1 / n),
            geomean_energy[system] ** (1 / n))
    print(row)

    print("\nTile request messages per benchmark (Lesson 4: the L0X "
          "filter)")
    for benchmark in BENCHMARKS:
        shared = run("SHARED", benchmark, size)
        fusion = run("FUSION", benchmark, size)
        filtered = 100 * (1 - fusion.axc_link_msgs
                          / max(1, shared.axc_link_msgs))
        print("  {:<8s} SHARED {:>9,d} msgs -> FUSION {:>9,d} "
              "({:.0f}% filtered)".format(
                  LABELS[benchmark], shared.axc_link_msgs,
                  fusion.axc_link_msgs, filtered))


if __name__ == "__main__":
    main()
