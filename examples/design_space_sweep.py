"""Design-space exploration: cache sizes and lease lengths.

Extends the paper's Figure 7 (SMALL vs LARGE) to a full sweep: L0X size
x L1X size for the FUSION hierarchy, plus an ACC lease-length sweep —
the kind of study the simulator exists to make cheap.

Run with::

    python examples/design_space_sweep.py [benchmark] [size]
"""

import sys
from dataclasses import replace

from repro import run, small_config
from repro.common.config import CacheConfig
from repro.common.units import KB


def tile_with(config, l0x_kb, l1x_kb):
    tile = replace(
        config.tile,
        l0x=CacheConfig(l0x_kb * KB, 4, hit_latency=1, timestamp_bits=32),
        l1x=CacheConfig(l1x_kb * KB, 8, banks=16,
                        hit_latency=4 + (l1x_kb // 128),
                        timestamp_bits=32),
    )
    return replace(config, tile=tile, name="sweep")


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "disparity"
    size = sys.argv[2] if len(sys.argv) > 2 else "small"
    base = small_config()

    print("FUSION cache-size sweep on {} ({})".format(benchmark, size))
    print("{:>6s} {:>6s} {:>12s} {:>10s} {:>10s}".format(
        "L0X", "L1X", "cycles", "uJ", "L1X miss%"))
    for l0x_kb in (2, 4, 8):
        for l1x_kb in (32, 64, 256):
            config = tile_with(base, l0x_kb, l1x_kb)
            result = run("FUSION", benchmark, size, config)
            accesses = result.stat("l1x.accesses") or 1
            print("{:>5d}K {:>5d}K {:>12,d} {:>10.2f} {:>10.1f}".format(
                l0x_kb, l1x_kb, int(result.accel_cycles),
                result.energy.total_pj / 1e6,
                100 * result.stat("l1x.misses") / accesses))

    print("\nACC lease-length sweep (renewal misses vs host-forward "
          "stalls)")
    print("{:>8s} {:>12s} {:>10s} {:>12s}".format(
        "lease", "cycles", "uJ", "fwd stalls"))
    for lease in (100, 300, 500, 1000, 3000):
        config = base.with_lease(lease)
        result = run("FUSION", benchmark, size, config)
        print("{:>8d} {:>12,d} {:>10.2f} {:>12,d}".format(
            lease, int(result.accel_cycles),
            result.energy.total_pj / 1e6,
            int(result.stat("l1x.fwd_gtime_stall_cycles"))))


if __name__ == "__main__":
    main()
