"""Quickstart: simulate one benchmark on the FUSION hierarchy.

Run with::

    python examples/quickstart.py [benchmark] [size]

Builds the workload trace (real kernels, real data), assembles the
FUSION system (per-AXC L0X caches + shared L1X under the ACC lease
protocol, integrated with the host's directory MESI), runs it end to
end, and prints what the paper's evaluation would report for it.
"""

import sys

from repro import run, small_config
from repro.sim.experiments import table2
from repro.workloads.characterize import characterize, working_set_kb
from repro.workloads.registry import build_workload


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "histogram"
    size = sys.argv[2] if len(sys.argv) > 2 else "small"

    print(table2(small_config()).render())
    print()

    workload = build_workload(benchmark, size)
    print("benchmark     : {} ({} accelerators, {:.1f} kB working set)"
          .format(benchmark, workload.num_axcs, working_set_kb(workload)))
    for profile in characterize(workload):
        print("  {:<12s} {:5.1f}% of ops, {:4.1f}% loads, MLP {:.1f}, "
              "{:4.1f}% shared".format(
                  profile.name, profile.time_pct, profile.ld_pct,
                  profile.mlp, profile.shr_pct))
    print()

    result = run("FUSION", benchmark, size)
    print("FUSION results")
    print("  accelerator cycles : {:,}".format(int(result.accel_cycles)))
    print("  total cycles       : {:,}".format(int(result.total_cycles)))
    print("  dynamic energy     : {:.2f} uJ".format(
        result.energy.total_pj / 1e6))
    print("  cache/compute ratio: {:.1f}".format(
        result.energy.cache_to_compute_ratio()))
    print("  energy breakdown:")
    for component, value in sorted(result.energy.components.items(),
                                   key=lambda kv: -kv[1]):
        if value > 0:
            print("    {:<20s} {:8.3f} uJ ({:4.1f}%)".format(
                component, value / 1e6,
                100 * value / result.energy.total_pj))
    print("  L0X hit rate       : {:.1f}%".format(
        100 * sum(v for k, v in result.stats.items()
                  if k.startswith("l0x.axc") and k.endswith(".hits"))
        / max(1, sum(v for k, v in result.stats.items()
                     if k.startswith("l0x.axc")
                     and k.endswith(".accesses")))))
    print("  AX-TLB lookups     : {:,}".format(result.ax_tlb_lookups))
    print("  AX-RMAP lookups    : {:,}".format(result.ax_rmap_lookups))


if __name__ == "__main__":
    main()
