"""Efficiency analysis: how much of the accelerator's potential does
each hierarchy deliver?

Uses the IDEAL system (single-cycle, zero-energy memory) as the
denominator, and folds in the floorplan view: FUSION buys its efficiency
with the shared L1X's area and leakage — the tradeoff the paper's
dynamic-energy study leaves implicit.

Run with::

    python examples/efficiency_analysis.py [size]
"""

import sys

from repro import BENCHMARKS, LABELS, run, small_config
from repro.energy.area import static_energy_pj, tile_area
from repro.sim.charts import bar_chart
from repro.workloads.registry import build_workload

SYSTEMS = ("SCRATCH", "SHARED", "FUSION")


def main():
    size = sys.argv[1] if len(sys.argv) > 1 else "small"
    config = small_config()

    print("Memory-hierarchy efficiency: IDEAL cycles / system cycles\n")
    print("{:<8s}".format("bench")
          + "".join(" {:>9s}".format(s) for s in SYSTEMS))
    efficiency = {system: [] for system in SYSTEMS}
    for benchmark in BENCHMARKS:
        ideal = run("IDEAL", benchmark, size).accel_cycles
        row = "{:<8s}".format(LABELS[benchmark])
        for system in SYSTEMS:
            value = ideal / run(system, benchmark, size).accel_cycles
            efficiency[system].append(value)
            row += " {:>8.0f}%".format(100 * value)
        print(row)
    print()
    print(bar_chart(
        [(system, 100 * sum(values) / len(values))
         for system, values in efficiency.items()],
        label_width=10))

    print("\nWhat that efficiency costs in silicon (per tile):")
    for label, with_sp in (("SCRATCH", True), ("FUSION", False)):
        workload = build_workload("fft", size)
        report = tile_area(config, workload.num_axcs,
                           with_scratchpads=with_sp)
        cycles = run(label if label != "FUSION" else "FUSION",
                     "fft", size).accel_cycles
        leak_uj = static_energy_pj(config, workload.num_axcs, cycles,
                                   with_scratchpads=with_sp) / 1e6
        print("  {:<8s} {:>6.2f} mm^2, {:>6.1f} mW leakage "
              "({:.2f} uJ over its FFT run)".format(
                  label, report.total_mm2, report.leakage_mw(),
                  leak_uj))
    print("\nFUSION spends ~2x the SRAM area of SCRATCH (the shared "
          "L1X)\nand earns it back in cycles and dynamic energy on "
          "every\nsharing-heavy workload.")


if __name__ == "__main__":
    main()
