"""Coherence engines: host directory MESI, tile ACC, SHARED-L1X agent."""

from .acc import AccL0XController, AccL1XController, TILE_LINK_LATENCY
from .lease_policy import AdaptiveLeasePolicy, FixedLeasePolicy, make_policy
from .directory import AGENTS, HOST, TILE, Directory, DirectoryEntry
from .mesi import HostMemorySystem
from .messages import DATA_MESSAGES, MSG_SIZE, Msg, is_data, send, size_of
from .shared_l1 import SWITCH_LATENCY, SharedL1XController

__all__ = [
    "AccL0XController", "AccL1XController", "TILE_LINK_LATENCY",
    "AdaptiveLeasePolicy", "FixedLeasePolicy", "make_policy",
    "AGENTS", "HOST", "TILE", "Directory", "DirectoryEntry",
    "HostMemorySystem",
    "DATA_MESSAGES", "MSG_SIZE", "Msg", "is_data", "send", "size_of",
    "SWITCH_LATENCY", "SharedL1XController",
]
