"""The host L2's coherence directory.

Table 2's LLC runs directory MESI.  With one host core tile and one
accelerator tile, the directory tracks per-block which agents cache the
line and which (if any) owns it exclusively.  The paper relies on the
directory having "perfect information on whether the accelerator tile is
caching the block" so that no extraneous forwards reach the tile — the
sharer list provides exactly that filter.
"""

from dataclasses import dataclass, field

from ..common.errors import ProtocolError

HOST = "host"
TILE = "tile"
#: The default agent pair; additional tiles register their own names
#: ("tile0", "tile1", ...) — the paper notes "the system can support
#: multiple accelerator tiles".
AGENTS = (HOST, TILE)


@dataclass
class DirectoryEntry:
    """Directory state for one L2-resident block."""

    sharers: set = field(default_factory=set)
    owner: str = None
    block: int = None  # back-reference for error context only

    @property
    def is_idle(self):
        return self.owner is None and not self.sharers

    def add_sharer(self, agent):
        _check_agent(agent, self.block)
        if self.owner is not None and self.owner != agent:
            raise ProtocolError(
                "adding sharer {} while {} owns the block".format(
                    agent, self.owner),
                agent=agent, block=self.block, invariant="single-owner")
        self.sharers.add(agent)

    def set_owner(self, agent):
        _check_agent(agent, self.block)
        others = (self.sharers - {agent}) | (
            {self.owner} - {agent, None})
        if others:
            raise ProtocolError(
                "granting ownership to {} while {} still cache the "
                "block".format(agent, sorted(others)),
                agent=agent, block=self.block, invariant="exclusive-owner")
        self.owner = agent
        self.sharers = {agent}

    def remove(self, agent):
        _check_agent(agent, self.block)
        self.sharers.discard(agent)
        if self.owner == agent:
            self.owner = None

    def cached_by(self, agent):
        return agent in self.sharers or self.owner == agent


def _check_agent(agent, block=None):
    if not isinstance(agent, str) or not agent:
        raise ProtocolError("unknown coherence agent {!r}".format(agent),
                            agent=repr(agent), block=block,
                            invariant="known-agent")


class Directory:
    """Block-address -> :class:`DirectoryEntry` map held at the L2."""

    def __init__(self, stats):
        self.stats = stats.scope("directory")
        self._entries = {}

    def entry(self, block):
        """Return the entry for ``block``, creating an idle one if new."""
        entry = self._entries.get(block)
        if entry is None:
            entry = DirectoryEntry(block=block)
            self._entries[block] = entry
        return entry

    def lookup(self, block):
        """Return the entry or ``None`` without creating one."""
        return self._entries.get(block)

    def drop(self, block):
        """Forget a block entirely (L2 eviction after recalls)."""
        self._entries.pop(block, None)

    def tile_caches(self, block):
        """The directory filter: does any accelerator tile cache
        ``block``?"""
        entry = self._entries.get(block)
        return entry is not None and bool(self.tile_sharers(block))

    def tile_sharers(self, block):
        """Names of the non-host agents caching ``block``."""
        entry = self._entries.get(block)
        if entry is None:
            return set()
        names = set(entry.sharers)
        if entry.owner is not None:
            names.add(entry.owner)
        names.discard(HOST)
        return names

    def blocks_owned_by(self, agent):
        return [block for block, entry in self._entries.items()
                if entry.owner == agent]
