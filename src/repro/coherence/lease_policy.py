"""Lease-length policies for the ACC protocol.

The paper fixes each function's lease ahead of time ("the epoch requests
are fixed based on the expected latency of the accelerator invocation")
— that is :class:`FixedLeasePolicy`.  :class:`AdaptiveLeasePolicy`
implements the natural extension the paper leaves open: a small per-set
table at each L0X observes how leases die and adjusts the next request.

* A *renewal miss* — the line expired but the accelerator came back for
  it — means the lease was too short: double that set's multiplier.
* A *wasted lease* — the line was evicted for capacity while its lease
  was still live — means the lease over-committed the L1X (long GTIMEs
  stall host forwards and L1X evictions): halve the multiplier.

The table is per cache set (hardware-plausible: a few counters per set,
like the writeback-timestamp filters of Section 3.2).
"""


class FixedLeasePolicy:
    """The paper's behaviour: always the function's configured lease."""

    name = "fixed"

    def lease_for(self, set_index, default_lease):
        return default_lease

    def on_renewal_miss(self, set_index):
        """A line expired and was then re-requested (no-op when fixed)."""

    def on_wasted_lease(self, set_index):
        """A live-leased line was evicted for capacity (no-op)."""


class AdaptiveLeasePolicy:
    """Per-set multiplicative-increase / multiplicative-decrease leases."""

    name = "adaptive"

    #: Multiplier bounds: x1/4 .. x8 of the function's configured lease.
    MIN_SHIFT = -2
    MAX_SHIFT = 3

    def __init__(self, num_sets):
        self.num_sets = num_sets
        self._shift = [0] * num_sets
        self.renewal_misses = 0
        self.wasted_leases = 0

    def lease_for(self, set_index, default_lease):
        shift = self._shift[set_index % self.num_sets]
        if shift >= 0:
            return default_lease << shift
        return max(1, default_lease >> -shift)

    def on_renewal_miss(self, set_index):
        index = set_index % self.num_sets
        if self._shift[index] < self.MAX_SHIFT:
            self._shift[index] += 1
        self.renewal_misses += 1

    def on_wasted_lease(self, set_index):
        index = set_index % self.num_sets
        if self._shift[index] > self.MIN_SHIFT:
            self._shift[index] -= 1
        self.wasted_leases += 1


class CountingLeasePolicy:
    """Transparent decorator counting lease events into a shared dict.

    The policy engine's telemetry needs per-invocation lease-expiry and
    wasted-lease counts, but the golden grids pin the *complete* stats
    dicts of the legacy systems, so the ACC controllers themselves may
    not grow new counters.  Wrapping each L0X's ``lease_policy`` in this
    decorator (policy runs only) observes the events without touching
    lease arithmetic: ``lease_for`` and the adjustment hooks delegate
    unchanged to the inner policy.
    """

    def __init__(self, inner, counts=None):
        self.inner = inner
        self.counts = counts if counts is not None else {
            "renewal_misses": 0, "wasted_leases": 0}
        self.name = inner.name

    def lease_for(self, set_index, default_lease):
        return self.inner.lease_for(set_index, default_lease)

    def on_renewal_miss(self, set_index):
        self.counts["renewal_misses"] += 1
        self.inner.on_renewal_miss(set_index)

    def on_wasted_lease(self, set_index):
        self.counts["wasted_leases"] += 1
        self.inner.on_wasted_lease(set_index)


def make_policy(name, num_sets):
    """Factory used by the tile: ``"fixed"`` or ``"adaptive"``."""
    if name == "fixed":
        return FixedLeasePolicy()
    if name == "adaptive":
        return AdaptiveLeasePolicy(num_sets)
    raise ValueError("unknown lease policy {!r}".format(name))
