"""The SHARED baseline's tile cache: one L1X shared by all accelerators.

This models the "at-the-core"/coprocessor-dominated designs the paper
compares against [Dyser, Zheng et al.]: every accelerator memory
operation crosses the tile switch to a banked shared L1 cache, which
participates in the host's MESI protocol as an ordinary L1 agent.  There
are no private L0Xs, no leases — just a conventional cache with higher
per-access latency and energy than a small private cache, which is
exactly the tradeoff Lessons 1-3 quantify.
"""

from ..common.stats import compile_phase_ledger
from ..common.types import AccessType
from ..common.units import LINE_SIZE
from ..energy import cacti
from ..mem.banking import BankContention
from ..mem.cache import SetAssocCache
from ..workloads import vector as vector_windows
from .directory import TILE
from .messages import Msg, counter_pairs as msg_counter_pairs, send

#: AXC -> shared L1X switch traversal, one way, cycles.
SWITCH_LATENCY = 1

_BLOCK_MASK = ~(LINE_SIZE - 1)
_STORE = AccessType.STORE

#: Memory-op issue interval in the SHARED design: the request flit and
#: the response flit of every access serialise on the tile switch, so an
#: accelerator cannot quite sustain one L1X access per cycle the way it can
#: against a private scratchpad/L0X.  This is the load-to-use throughput
#: penalty Lessons 1-2 attribute to shared-cache designs.
ISSUE_INTERVAL = 1.5


class SharedL1XController:
    """A MESI-participating shared L1X with no private caches below it."""

    def __init__(self, config, host_mem, page_table, stats,
                 agent_name=TILE):
        self.config = config.tile.l1x
        self.host = host_mem
        self.page_table = page_table
        #: Host-directory agent name; distinct per tile when several
        #: coherence strategies coexist in one run.
        self.agent_name = agent_name
        self.stats = stats.scope("l1x")
        self.cache = SetAssocCache(self.config, name="shared_l1x")
        self.banks = (BankContention(self.config.banks, occupancy=1,
                                     stats=self.stats)
                      if config.tile.model_bank_conflicts else None)
        self._read_energy = cacti.cache_access_energy_pj(self.config)
        self._write_energy = cacti.cache_access_energy_pj(
            self.config, is_store=True)
        # Hot-path bindings: counter handles plus the set-index shift/mask
        # (line size and set count are powers of two by config validation).
        self._add_accesses = self.stats.counter("accesses")
        self._add_energy = self.stats.counter("energy_pj")
        self._add_hits = self.stats.counter("hits")
        self._add_misses = self.stats.counter("misses")
        self._set_shift = self.config.line_size.bit_length() - 1
        self._set_mask = self.config.num_sets - 1
        self._base_latency = SWITCH_LATENCY + self.config.hit_latency
        #: Steady-state phase fast path: per-phase translated block
        #: info + prebuilt sequence flusher, keyed by the Phase object;
        #: compiled ledger programs memoised per (num_loads,
        #: num_stores); and the page table's affine offset (probed
        #: lazily — ``False`` when translation is not a pure shift).
        self._phase_info = {}
        self._programs = {}
        self._phys_delta = None
        #: Batched-quote state per VectorWindow (the vector rung).
        self._window_info = {}
        self.axc_link = None  # attached by the system (builds flushers)

    @property
    def axc_link(self):
        return self._axc_link

    @axc_link.setter
    def axc_link(self, link):
        """Attach the tile link and prebuild the hit-path flushers.

        One hit performs a fixed set of increments (request message,
        cache access/energy/hit, word-sized response); bundling them
        into one :meth:`StatsRegistry.flusher` serves a whole access —
        or a whole coalesced run — in a single call, bit-identical to
        the unbundled sequence.
        """
        self._axc_link = link
        if link is None:
            self._flush_load_hit = None
            self._flush_store_hit = None
            return
        registry = self.stats.registry
        qualify = self.stats.qualified
        self._flush_load_hit = registry.flusher(
            msg_counter_pairs(link, Msg.GETS, self.stats, "req")
            + [(qualify("accesses"), 1),
               (qualify("energy_pj"), self._read_energy),
               (qualify("hits"), 1)]
            + msg_counter_pairs(link, Msg.DATA_WORD, self.stats, "resp"))
        self._flush_store_hit = registry.flusher(
            msg_counter_pairs(link, Msg.GETX, self.stats, "req")
            + [(qualify("accesses"), 1),
               (qualify("energy_pj"), self._write_energy),
               (qualify("hits"), 1)]
            + msg_counter_pairs(link, Msg.WT_DATA, self.stats,
                                "store_data"))

    def _charge(self, is_store=False):
        self._add_accesses()
        self._add_energy(self._write_energy if is_store else
                         self._read_energy)

    def access(self, op, now):
        """Serve one accelerator operation across the tile switch.

        Every access costs a request message and a word-sized response on
        the AXC<->L1X link — the pull-based overhead the FUSION L0X
        exists to filter (Figure 6c).
        """
        is_store = op.is_store
        pblock = self.page_table.translate(op.addr) & _BLOCK_MASK
        line = self.cache.lookup(pblock)
        if line is not None and self.banks is None:
            # Steady-state hit with no bank contention modelled: one
            # prebuilt flush covers the whole request/access/response
            # increment set.
            if is_store:
                line.dirty = True
                line.state = "M"
                self._flush_store_hit()
            else:
                self._flush_load_hit()
            return self._base_latency + SWITCH_LATENCY
        send(self.axc_link, Msg.GETX if is_store else Msg.GETS,
             self.stats, "req")
        latency = self._base_latency
        if self.banks is not None:
            latency += self.banks.access(
                (pblock >> self._set_shift) & self._set_mask, now)
        self._add_accesses()
        self._add_energy(self._write_energy if is_store else
                         self._read_energy)
        if line is None:
            self._add_misses()
            fill_latency, line = self._fill(pblock, now + latency)
            latency += fill_latency
        else:
            self._add_hits()
        if is_store:
            line.dirty = True
            line.state = "M"
            send(self.axc_link, Msg.WT_DATA, self.stats, "store_data")
        else:
            send(self.axc_link, Msg.DATA_WORD, self.stats, "resp")
        return latency + SWITCH_LATENCY

    def access_run(self, op, count, now, horizon, interval):
        """Serve a whole same-line access run in one protocol step.

        Guard: bank contention not modelled (the contention model
        observes every access) and line resident.  Nothing else can
        change mid-run — the run itself is the only activity in the
        tile — so residency alone guarantees the per-op expansion would
        be ``count`` identical hits.  Returns the constant per-op
        latency, or ``None`` to decline.
        """
        if self.banks is not None:
            return None
        pblock = self.page_table.translate(op.addr) & _BLOCK_MASK
        line = self.cache.lookup(pblock, touch=False)
        if line is None:
            return None
        self.cache.touch_run(line, count)
        if op.is_store:
            line.dirty = True
            line.state = "M"
            self._flush_store_hit(count)
        else:
            self._flush_load_hit(count)
        return self._base_latency + SWITCH_LATENCY

    def phase_quote(self, phase, now, horizon, interval):
        """Serve a whole steady-state phase in one protocol step.

        Guard: bank contention not modelled and every (physical) line
        of the phase resident — residency alone guarantees the per-op
        expansion would be all hits, exactly as in :meth:`access_run`
        (there are no leases to expire here, and the phase is the only
        tile activity during its span).  On success the per-phase
        sequence flusher charges the program-ordered counter deltas,
        the LRU clock advances exactly, and stored lines are marked
        dirty/modified.  Latency is the same constant for loads and
        stores.  Returns ``None`` to decline.
        """
        if self.banks is not None:
            return None
        info = self._phase_info.get(phase)
        if info is None:
            info = self._compile_phase(phase)
        pblocks, ledger = info
        lines = self.cache._lines
        touched = []
        dirty = []
        for pblock, stores, last_pos in pblocks:
            line = lines.get(pblock)
            if line is None:
                return None
            touched.append((line, last_pos))
            if stores:
                dirty.append(line)
        self.cache.touch_phase(touched, phase.mem_ops)
        for line in dirty:
            line.dirty = True
            line.state = "M"
        ledger()
        latency = self._base_latency + SWITCH_LATENCY
        return latency, latency

    def _compile_phase(self, phase):
        """Translate a phase's lines and prebuild its ledger.

        The page table is a fixed deterministic mapping of ``(pid,
        vpn)`` — in this model an affine one: physical = virtual plus a
        per-pid constant.  A two-point probe (cached per controller)
        confirms that, after which the phase's translated projection is
        just its ``block_info`` shifted by the line-aligned delta — no
        per-op walk.  Should the probe ever fail, the exact walk is the
        fallback.  The compiled ledger program depends only on the op
        counts, so phases share a small per-controller memo; each
        phase still binds its own sequence flusher.
        """
        delta = self._phys_delta
        if delta is None:
            translate = self.page_table.translate
            delta = translate(0)
            probe = (1 << 29) | 0x5ec
            if translate(probe) != probe + delta or \
                    delta & (LINE_SIZE - 1):
                delta = False
            self._phys_delta = delta
        if delta is not False:
            pblocks = tuple((info[0] + delta, info[2], info[4])
                            for info in phase.block_info)
        else:
            translate = self.page_table.translate
            info = {}
            order = []
            position = 0
            for op, arg, count in phase.steps:
                if op is None:
                    continue
                pblock = translate(op.addr) & _BLOCK_MASK
                record = info.get(pblock)
                if record is None:
                    info[pblock] = record = [0, 0]
                    order.append(pblock)
                if op.is_store:
                    record[0] = 1
                position += count
                record[1] = position
            pblocks = tuple((pblock, info[pblock][0], info[pblock][1])
                            for pblock in order)
        key = (phase.num_loads, phase.num_stores)
        program = self._programs.get(key)
        if program is None:
            program = self._programs[key] = compile_phase_ledger(
                self._flush_load_hit.pairs, self._flush_store_hit.pairs,
                *key)
        ledger = self.stats.registry.phase_flusher(phase.event_seq,
                                                   program)
        compiled = (pblocks, ledger)
        self._phase_info[phase] = compiled
        return compiled

    def phase_quote_batch(self, window, now, horizon, interval):
        """Serve the longest resident prefix of a phase *window* in one
        pass (the vector rung's batched quote API).

        The SHARED guard has no leases, so the batched form is a single
        residency scan over the window's flattened ``(phase, line)``
        rows — the first absent line caps the accepted prefix at its
        phase, exactly the per-phase :meth:`phase_quote` guard applied
        phase by phase (residency cannot change mid-window: the window
        is the only tile activity during its span).  Application
        mirrors the per-phase quote — per-phase LRU advance and
        dirty/modified marks in phase order, then one bulk window
        ledger for a full accept (or the per-phase sequence ledgers for
        a partial prefix / while a ``PjTrace`` records).

        The L1X hit latency here exceeds the SHARED issue interval, so
        the core never takes the bulk *timeline* for these windows —
        the win is the batched guard and the collapsed ledger.
        Declines (``None``) when bank contention is modelled or the
        page table is not affine (the per-phase quote's exact-walk
        fallback still serves those).
        """
        if self.banks is not None:
            return None
        info = self._window_info.get(window)
        if info is None:
            info = self._compile_window(window)
        if info is False:       # non-affine page table, cached decline
            return None
        pblocks, store_rows, ledger = info
        lines = self.cache._lines
        num_rows = len(pblocks)
        line_scratch = [None] * num_rows
        accepted = window.span
        for i, pblock in enumerate(pblocks):
            line = lines.get(pblock)
            if line is None:
                accepted = window.row_phase_ids[i]
                break
            line_scratch[i] = line
        if accepted == 0:
            return None
        row_start = window.row_start
        last_pos = window.row_last_pos_list
        mem_ops = window.mem_ops
        touch_phase = self.cache.touch_phase
        for j in range(accepted):
            touch_phase(
                [(line_scratch[i], last_pos[i])
                 for i in range(row_start[j], row_start[j + 1])],
                mem_ops[j])
        limit = row_start[accepted]
        for i in store_rows:
            if i >= limit:
                break
            line = line_scratch[i]
            line.dirty = True
            line.state = "M"
        if accepted == window.span \
                and not self.stats.registry.pj_trace_active:
            ledger()
        else:
            phases = window.phases
            for j in range(accepted):
                info = self._phase_info.get(phases[j])
                if info is None:
                    info = self._compile_phase(phases[j])
                info[1]()
        latency = self._base_latency + SWITCH_LATENCY
        return accepted, latency, latency

    def _compile_window(self, window):
        """Precompile one window's batched-quote state, or ``False``
        when the page table is not the affine fast case (probed exactly
        as in :meth:`_compile_phase`).

        The pure pieces — translated blocks, store rows, the ledger
        program — are memoised on the window across controller
        instances (:meth:`VectorWindow.cached`); only the registry
        binding happens per controller.
        """
        delta = self._phys_delta
        if delta is None:
            translate = self.page_table.translate
            delta = translate(0)
            probe = (1 << 29) | 0x5ec
            if translate(probe) != probe + delta or \
                    delta & (LINE_SIZE - 1):
                delta = False
            self._phys_delta = delta
        if delta is False:
            self._window_info[window] = False
            return False
        pblocks = window.cached(
            ("shared-pblocks", delta),
            lambda: tuple(block + delta for block in window.row_blocks))
        store_rows = window.cached("store-rows", lambda: tuple(
            i for i, (_, stores) in enumerate(window.rows) if stores))
        load_pairs = self._flush_load_hit.pairs
        store_pairs = self._flush_store_hit.pairs
        program = window.cached(
            ("ledger", tuple(load_pairs), tuple(store_pairs)),
            lambda: vector_windows.compile_window_ledger(
                load_pairs, store_pairs, window))
        ledger = self.stats.registry.window_flusher(program)
        compiled = (pblocks, store_rows, ledger)
        self._window_info[window] = compiled
        return compiled

    def _fill(self, pblock, now):
        """Fill ``pblock`` from the host; returns ``(latency, line)``."""
        latency = self.host.fetch_for_tile(pblock, now,
                                           tile=self.agent_name)
        line, victim = self.cache.install(pblock, state="E", paddr=pblock)
        if victim is not None:
            self._charge(is_store=False)
            latency += self.host.tile_writeback(victim.paddr, victim.dirty,
                                                now, tile=self.agent_name)
            self.stats.add("evictions")
        return latency, line

    def handle_forwarded_request(self, pblock, now, is_store):
        """Tile-agent interface: a directory forward probes the L1X
        directly (physically indexed — no RMAP or GTIME needed)."""
        line = self.cache.lookup(pblock, touch=False)
        if line is None:
            self.stats.add("fwd_misses")
            return 0, False
        self._charge(is_store=False)
        self.cache.invalidate(pblock)
        self.stats.add("fwd_evictions")
        return 0, line.dirty

    def flush(self, now):
        """Drain every dirty line back to the host (end of workload).

        The writeback is a PUTX: the directory drops the tile as a
        sharer, so the line must leave the cache too — keeping it
        resident would let a later access hit a copy the host no longer
        knows to invalidate (found by ``repro.check``'s mei-directory
        invariant)."""
        latency = 0
        for line in list(self.cache.dirty_lines()):
            self._charge(is_store=False)
            latency += self.host.tile_writeback(line.paddr, dirty=True,
                                                now=now,
                                                tile=self.agent_name)
            self.cache.invalidate(line.block)
            self.stats.add("flush_writebacks")
        return latency

    # -- invocation replay surface (repro.accel.replay) ----------------------

    def state_signature(self, set_indices=None):
        """Raw replay-state capture of the shared L1X array."""
        return self.cache.capture_sets(set_indices)

    def apply_transform(self, transform, t0):
        """Apply a recorded invocation end-state transform at ``t0``."""
        from ..accel.replay import apply_cache_transform
        apply_cache_transform(self.cache, transform, t0)
