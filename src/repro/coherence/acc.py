"""The ACC (ACcelerator Coherence) protocol — FUSION's tile coherence.

ACC is a timestamp/lease-based self-invalidation protocol (Section 3.2):

* Every L0X line carries a local timestamp (LTIME): the line is valid
  only while the tile clock is below its lease.  Expiry *is* the
  invalidation — no invalidation messages ever cross the tile.
* The shared L1X records, per line, the global timestamp (GTIME): the
  time by which every L0X will have self-invalidated the line.  GTIME is
  what lets the L1X answer host MESI forwards without probing any L0X.
* Stores acquire *write epochs*: the L1X locks the line until the epoch
  expires and the writeback arrives; other readers/writers stall at the
  L1X until then.
* Self-downgrade: dirty L0X lines are written back when their write
  lease expires (the hardware filters the sweep with per-set writeback
  timestamps; this model tracks dirty lines directly and charges the
  same events).
* Strict 2-hop: an L0X miss costs one request up and one data response
  down; there are no forwarded probes inside the tile.

The L1X doubles as the tile's MESI agent: it caches every block
exclusively (MEI states), translates on its miss path through the AX-TLB,
and answers directory forwards via the AX-RMAP.

FUSION-Dx extends ACC with write forwarding: a producer L0X pushes a
dirty line straight into the consumer's L0X (0.1 pJ/byte link), carrying
the existing lease — legal precisely because the L1X tracks only the
lease epoch, not which L0X holds it.
"""

from ..common.config import WritePolicy
from ..common.errors import ProtocolError
from ..common.stats import compile_phase_ledger
from ..common.types import AccessType, block_address
from ..common.units import LINE_SIZE
from ..energy import cacti
from ..mem.banking import BankContention
from ..mem.cache import SetAssocCache
from ..mem.rmap import AxRmap
from ..mem.tlb import AxTlb
from ..workloads import vector as vector_windows
from .lease_policy import FixedLeasePolicy
from .messages import Msg, counter_pairs as msg_counter_pairs, send, sender

#: L0X -> L1X one-way wire latency inside the tile, cycles.
TILE_LINK_LATENCY = 1

#: Hot-path constants: line alignment matches ``MemOp.block`` exactly.
_BLOCK_MASK = ~(LINE_SIZE - 1)
_STORE = AccessType.STORE

#: Invalid guard rows encode as an un-coverable lease in the batched
#: quote's vectorised compare.
_NEG_INF = float("-inf")


class _WindowQuote:
    """Precompiled batched-quote state for one (window, interval)."""

    __slots__ = ("load_lat", "store_lat", "bounds", "lease_buf",
                 "line_scratch", "wt_scratch", "store_rows", "ledger")

    def __init__(self, load_lat, store_lat, bounds, lease_buf,
                 line_scratch, wt_scratch, store_rows, ledger):
        self.load_lat = load_lat
        self.store_lat = store_lat
        #: Per-row lease cover requirement relative to the horizon.
        self.bounds = bounds
        #: Scratch arrays reused across calls (single-threaded model):
        #: gathered leases, line objects, write-through L1X lines.
        self.lease_buf = lease_buf
        self.line_scratch = line_scratch
        self.wt_scratch = wt_scratch
        #: Row indices with stores, ascending (dirty-mark walk).
        self.store_rows = store_rows
        #: Whole-window bulk ledger (full accepts, no active PjTrace).
        self.ledger = ledger


class AccL1XController:
    """The shared L1X under ACC, integrated with host MESI as an MEI agent.

    This object is the ``tile_agent`` registered with
    :class:`repro.coherence.mesi.HostMemorySystem`.
    """

    def __init__(self, config, host_mem, page_table, stats,
                 agent_name="tile"):
        self.config = config.tile.l1x
        self.tile_config = config.tile
        self.host = host_mem
        self.agent_name = agent_name
        self.stats = stats.scope("l1x")
        self._tlb_stats = stats
        self.cache = SetAssocCache(self.config, name="l1x")
        # Section 3.2: PID tags let accelerators from different
        # processes co-exist on one tile.  Each process brings its own
        # page table; the AX-TLB entries are PID-tagged (modelled as one
        # AxTlb per process sharing the lookup counters).
        self.tlbs = {page_table.pid: AxTlb(
            page_table, config.tile.tlb_entries, stats)}
        self.rmap = AxRmap(stats)
        self.banks = (BankContention(self.config.banks, occupancy=1,
                                     stats=self.stats)
                      if config.tile.model_bank_conflicts else None)
        self._read_energy = cacti.cache_access_energy_pj(self.config)
        self._write_energy = cacti.cache_access_energy_pj(
            self.config, is_store=True)
        self._add_accesses = self.stats.counter("accesses")
        self._add_energy = self.stats.counter("energy_pj")
        self._add_hits = self.stats.counter("hits")
        self._add_misses = self.stats.counter("misses")
        # Bulk flusher for run-coalesced write-through updates: the
        # exact per-event increments of ``write_through``, applied
        # ``count`` at a time (energy replayed term-by-term, so the
        # result is bit-identical to ``count`` sequential calls).
        self._flush_write_through = self.stats.registry.flusher([
            (self.stats.qualified("accesses"), 1),
            (self.stats.qualified("energy_pj"), self._write_energy),
            (self.stats.qualified("write_through_updates"), 1),
        ])

    @property
    def tlb(self):
        """The default (single-process) AX-TLB."""
        return next(iter(self.tlbs.values()))

    def register_process(self, page_table):
        """Attach another process's page table (multi-tenant tiles)."""
        self.tlbs[page_table.pid] = AxTlb(
            page_table, self.tile_config.tlb_entries, self._tlb_stats)

    # -- energy helpers ----------------------------------------------------

    def _charge(self, is_store=False):
        self._add_accesses()
        self._add_energy(self._write_energy if is_store
                         else self._read_energy)

    # -- the ACC epoch interface (L0X side) --------------------------------

    def acquire(self, vblock, now, lease, is_write, pid=0):
        """Grant a read or write epoch on ``vblock``.

        Returns ``(latency, epoch_end)`` — the absolute time-stamp the
        data response carries; the L0X must not use the line beyond it
        (Figure 4's "T=10" annotation).  The caller (L0X controller) has
        already sent the epoch-request message; this method charges the
        L1X access, any write-epoch stall, and the miss path (AX-TLB,
        host MESI fetch).  The line-sized data response is charged by the
        caller so that the link direction split stays in one place.

        The caches are virtually indexed and PID-tagged: a resident line
        with another process's tag is a miss (and is retired first) —
        cross-process sharing is not supported (Appendix).
        """
        vblock = vblock & _BLOCK_MASK
        self._charge(is_store=is_write)
        latency = self.config.hit_latency
        if self.banks is not None:
            latency += self.banks.access(self.config.set_index(vblock),
                                         now)
        line = self.cache.lookup(vblock)
        if line is not None and line.pid != pid:
            self.stats.add("pid_conflicts")
            self.cache.invalidate(vblock)
            latency += self._retire(line, now)
            line = None
        if line is not None:
            stall = self._write_epoch_stall(line, now)
            latency += stall
            epoch_end = self._grant(line, now + stall, lease, is_write)
            self._add_hits()
            return latency, epoch_end
        self._add_misses()
        latency += self._fill(vblock, now + latency, pid)
        line = self.cache.lookup(vblock)
        epoch_end = self._grant(line, now + latency, lease, is_write)
        return latency, epoch_end

    def _write_epoch_stall(self, line, now):
        """Readers and writers stall while another AXC holds a write
        epoch whose writeback has not yet completed."""
        if line.write_epoch_end is not None and line.write_epoch_end > now:
            stall = line.write_epoch_end - now
            self.stats.add("write_epoch_stalls")
            self.stats.add("write_epoch_stall_cycles", stall)
            return stall
        return 0

    def _grant(self, line, grant_time, lease, is_write):
        """Record an epoch; returns its absolute end time-stamp."""
        epoch_end = grant_time + lease
        line.gtime = max(line.gtime or 0, epoch_end)
        if is_write:
            # Implicit lock: held until the writeback arrives.
            line.write_epoch_end = epoch_end
            self.stats.add("write_epochs")
        else:
            self.stats.add("read_epochs")
        return epoch_end

    def _fill(self, vblock, now, pid=0):
        """Bring ``vblock`` into the L1X from the host side."""
        paddr, tlb_latency = self.tlbs[pid].translate(vblock)
        pblock = block_address(paddr)
        latency = tlb_latency
        latency += self.host.fetch_for_tile(pblock, now,
                                            tile=self.agent_name)
        victim = self.cache.insert(vblock, state="E", paddr=pblock,
                                   pid=pid)
        if victim is not None:
            latency += self._retire(victim, now)
        synonym = self.rmap.record_fill(pblock, vblock)
        if synonym is not None:
            # Appendix rule: only one virtual synonym per physical block
            # may live in the tile; evict the duplicate.
            stale = self.cache.invalidate(synonym)
            if stale is not None and stale.dirty:
                latency += self.host.tile_writeback(pblock, dirty=True,
                                                    now=now,
                                                    tile=self.agent_name)
        return latency

    def _retire(self, victim, now):
        """Evict one L1X line back to the host's coherence space."""
        latency = 0
        if victim.gtime is not None and victim.gtime > now:
            # An L0X may still hold a live lease: the eviction notice is
            # stalled until GTIME guarantees self-invalidation.
            latency += victim.gtime - now
            self.stats.add("gtime_eviction_stalls")
        if victim.paddr is None:
            raise ProtocolError("L1X line without a physical address",
                                agent=self.agent_name, block=victim.block,
                                invariant="rmap-bijection")
        self.rmap.remove(victim.paddr)
        self._charge(is_store=False)  # read the line out
        latency += self.host.tile_writeback(victim.paddr, victim.dirty,
                                            now, tile=self.agent_name)
        self.stats.add("evictions")
        return latency

    def writeback_from_l0x(self, vblock, now, pid=0, epoch_end=None):
        """A self-downgrading L0X wrote a dirty line back; releases the
        write-epoch lock.  Returns the L1X-side latency.

        ``epoch_end`` identifies the epoch the data was written under
        (the writing line's lease).  The lock is only released when that
        is the epoch currently holding it: a *stale* writeback — dirty
        data from an expired epoch arriving after a newer write epoch
        was granted to another L0X — must not unlock the newer epoch,
        or two live write epochs could coexist (found by
        ``repro.check``'s swmr invariant).  ``None`` means the caller
        does not track epochs and keeps the historical always-release
        behaviour.

        If the L1X already evicted the line (in hardware the eviction
        notice stalls until this writeback; the lazy model can observe
        the writeback after the eviction — also the case when another
        process's fill displaced it), the data continues straight to
        the host — counted as a ``late_writeback``.
        """
        vblock = block_address(vblock)
        line = self.cache.lookup(vblock, touch=False)
        if line is not None and line.pid != pid:
            line = None
        if line is None:
            paddr, latency = self.tlbs[pid].translate(vblock)
            self.stats.add("late_writebacks")
            return latency + self.host.tile_writeback(
                block_address(paddr), dirty=True, now=now,
                tile=self.agent_name)
        self._charge(is_store=True)
        line.dirty = True
        if epoch_end is None or line.write_epoch_end == epoch_end:
            line.write_epoch_end = None
        else:
            self.stats.add("stale_epoch_writebacks")
        self.stats.add("l0x_writebacks")
        return self.config.hit_latency

    def write_through(self, vblock, now):
        """A write-through L0X store updates the L1X word directly."""
        return self.write_through_run(vblock, 1)

    def write_through_run(self, vblock, count):
        """``count`` write-through store words update the L1X line.

        Bit-identical to ``count`` :meth:`write_through` calls: the line
        is marked dirty (idempotent) and the counters are flushed in
        bulk.  Returns the constant per-store latency.
        """
        line = self.cache.lookup(block_address(vblock), touch=False)
        if line is None:
            raise ProtocolError(
                "write-through to a block the L1X does not hold",
                agent=self.agent_name, block=block_address(vblock),
                invariant="write-through-residency")
        line.dirty = True
        self._flush_write_through(count)
        return self.config.hit_latency

    # -- host MESI integration (tile agent interface) -----------------------

    def handle_forwarded_request(self, pblock, now, is_store):
        """A directory forward (Fwd-GetS/GetX or inclusion recall) arrived.

        The AX-RMAP translates the physical block; the GTIME timestamp
        tells the L1X when every L0X lease has expired, so it responds
        without ever probing an L0X.  Returns ``(stall_cycles, dirty)``.
        """
        vblock = self.rmap.lookup(pblock)
        if vblock is None:
            # The directory filter should prevent this; tolerate the race
            # (e.g. a forward crossing our own eviction notice).
            self.stats.add("fwd_misses")
            return 0, False
        line = self.cache.lookup(vblock, touch=False)
        if line is None:
            self.stats.add("fwd_misses")
            self.rmap.remove(pblock)
            return 0, False
        stall = 0
        if line.gtime is not None and line.gtime > now:
            stall = line.gtime - now
            self.stats.add("fwd_gtime_stalls")
            self.stats.add("fwd_gtime_stall_cycles", stall)
        self._charge(is_store=False)
        self.cache.invalidate(vblock)
        self.rmap.remove(pblock)
        self.stats.add("fwd_evictions")
        return stall, line.dirty

    # -- invocation replay surface (repro.accel.replay) ----------------------

    def state_signature(self, set_indices=None):
        """Raw replay-state capture of the L1X array (whole cache when
        ``set_indices`` is ``None``, else just those sets)."""
        return self.cache.capture_sets(set_indices)

    def apply_transform(self, transform, t0):
        """Apply a recorded invocation end-state transform at ``t0``."""
        from ..accel.replay import apply_cache_transform
        apply_cache_transform(self.cache, transform, t0)


class AccL0XController:
    """One accelerator's private L0X under ACC."""

    def __init__(self, axc_id, config, l1x, axc_link, fwd_link, stats,
                 lease_policy=None):
        self.axc_id = axc_id
        self.config = config.tile.l0x
        self.l1x = l1x
        self.axc_link = axc_link
        self.fwd_link = fwd_link
        self.stats = stats.scope("l0x.axc{}".format(axc_id))
        self.shared_stats = stats.scope("l0x")
        self.cache = SetAssocCache(self.config,
                                   name="l0x{}".format(axc_id))
        self.lease_policy = lease_policy or FixedLeasePolicy()
        #: Owning process: every L0X serves one process (the paper's
        #: PID tags live in the shared structures; a private L0X is
        #: flushed across context switches anyway).
        self.pid = 0
        self._read_energy = cacti.cache_access_energy_pj(self.config)
        self._write_energy = cacti.cache_access_energy_pj(
            self.config, is_store=True)
        self._write_through = (
            self.config.write_policy is WritePolicy.WRITE_THROUGH)
        # Hot-path constants: bound counter handles, the set-index
        # shift/mask (line size and set count are powers of two) and a
        # flag that lets the access path skip the lease-policy call
        # entirely for the paper's fixed policy (``lease_for`` is the
        # identity there and ignores the set index).
        self._add_accesses = self.stats.counter("accesses")
        self._add_hits = self.stats.counter("hits")
        self._add_misses = self.stats.counter("misses")
        self._add_energy = self.shared_stats.counter("energy_pj")
        self._set_shift = self.config.line_size.bit_length() - 1
        self._set_mask = self.config.num_sets - 1
        self._fixed_lease = type(self.lease_policy) is FixedLeasePolicy
        self._hit_latency = self.config.hit_latency
        # Per-event bulk flushers (StatsRegistry.flusher): the full set
        # of increments one hit makes, applied once per hit or ``count``
        # at a time on the run-coalesced fast path — bit-identical to
        # the unbundled handle calls by the flusher contract.
        registry = self.stats.registry
        qualify = self.stats.qualified
        energy_name = self.shared_stats.qualified("energy_pj")
        hit_pairs = [(qualify("accesses"), 1),
                     (energy_name, self._read_energy),
                     (qualify("hits"), 1)]
        store_hit_pairs = [(qualify("accesses"), 1),
                           (energy_name, self._write_energy),
                           (qualify("hits"), 1)]
        self._flush_load_hit = registry.flusher(hit_pairs)
        self._flush_store_hit = registry.flusher(store_hit_pairs)
        # Write-through store hit additionally ships one WT_DATA word
        # over the tile link per store (the L1X-side counters are
        # flushed by ``write_through_run``).
        self._flush_store_hit_wt = registry.flusher(
            store_hit_pairs
            + msg_counter_pairs(axc_link, Msg.WT_DATA,
                                self.shared_stats, "sent")
            + [(axc_link.stats.qualified("write_flits"), 1)])
        # Bound senders for the fixed messages of the miss/writeback
        # paths (one prebuilt flusher per (link, message) call site).
        self._send_epoch_read = sender(axc_link, Msg.EPOCH_READ,
                                       self.shared_stats, "sent")
        self._send_epoch_write = sender(axc_link, Msg.EPOCH_WRITE,
                                        self.shared_stats, "sent")
        self._recv_data_line = sender(axc_link, Msg.DATA_LINE,
                                      self.shared_stats, "recv")
        self._flush_writeback = registry.flusher(
            msg_counter_pairs(axc_link, Msg.WB_DATA,
                              self.shared_stats, "sent")
            + [(axc_link.stats.qualified("write_flits"),
                self.config.line_size // 8),
               (qualify("writebacks"), 1)])
        #: Per-phase sequence flushers for the steady-state fast path,
        #: keyed by the (immutable, trace-memoised) Phase object, the
        #: lazily-built pair lists they bind, and the compiled ledger
        #: programs memoised per (num_loads, num_stores).
        self._phase_ledgers = {}
        self._ledger_pairs = None
        self._programs = {}
        #: Compiled batched-quote state for the vector rung, keyed by
        #: ``(VectorWindow, issue_interval)``.
        self._window_quotes = {}
        #: Default lease for :meth:`access` calls that omit the ``lease``
        #: argument; bound by the tile before each invocation.
        self.invocation_lease = None
        #: FUSION-Dx: ``(l0x, line, now) -> bool`` called on every dirty
        #: self-downgrade; returning True means the line was forwarded to
        #: a consumer L0X instead of written back.  ``None`` disables
        #: forwarding (plain FUSION).
        self.forward_hook = None
        #: FUSION-Dx: blocks forwarded *to* this L0X that the consumer
        #: has not touched yet.  In the paper the consumer accelerator
        #: runs concurrently and drains forwards as they arrive; the
        #: sequential trace-driven model time-shifts the delivery — the
        #: first access to a pending block is an L0X hit, exactly the
        #: L1X round trip Figure 5 elides.
        self._incoming_forwards = {}

    # -- energy helpers ----------------------------------------------------

    def _charge(self, is_store=False):
        self._add_accesses()
        self._add_energy(self._write_energy if is_store
                         else self._read_energy)

    def _valid(self, line, now):
        """ACC validity check: the lease is the invalidation."""
        return line is not None and line.lease is not None and \
            line.lease > now

    # -- the accelerator-facing access path ---------------------------------

    def access(self, op, now, lease=None):
        """Serve one accelerator memory operation; returns latency.

        ``lease`` is the function's configured lease; the controller's
        lease policy (fixed by default, adaptive as an extension) may
        scale it per cache set.  When omitted it defaults to
        :attr:`invocation_lease`, which the tile binds before each
        invocation so the core can call this method directly (no
        per-op closure frame).

        This is the single hottest method of a FUSION simulation (one
        call per accelerator memory op), so the hit path is written
        against the precomputed constants and prebuilt flushers from
        ``__init__``.
        """
        vblock = op.block
        is_store = op.is_store
        if lease is None:
            lease = self.invocation_lease
        if not self._fixed_lease:
            lease = self.lease_policy.lease_for(
                (vblock >> self._set_shift) & self._set_mask, lease)
        latency = self._hit_latency
        # Inlined touching lookup (SetAssocCache.lookup): one dict probe
        # plus the LRU tick, without the method-call frame — this is the
        # per-op bottleneck of every FUSION run.
        cache = self.cache
        line = cache._lines.get(vblock)
        if line is not None:
            cache._use_clock = clock = cache._use_clock + 1
            line.last_use = clock
        if line is not None and line.lease is not None and \
                line.lease > now:
            if not is_store:
                self._flush_load_hit()
                return latency
            if line.state == "W":
                if not self._write_through:
                    line.dirty = True
                    self._flush_store_hit()
                    return latency
                self._flush_store_hit_wt()
                return latency + TILE_LINK_LATENCY + \
                    self.l1x.write_through_run(vblock, 1)
            # Upgrade: a read lease does not permit writes.
            self._add_accesses()
            self._add_energy(self._write_energy)
            latency += self._upgrade(line, now + latency, lease)
            latency += self._record_store(line, now + latency)
            self._add_hits()
            return latency
        self._add_accesses()
        self._add_energy(self._write_energy if is_store
                         else self._read_energy)
        if vblock in self._incoming_forwards:
            fwd_latency, line = self._accept_forward(
                vblock, now + latency, lease)
            latency += fwd_latency
            self._add_hits()
            self.stats.add("forward_hits")
            if is_store:
                # LRU tick the legacy post-install probe made.
                self.cache.touch_run(line, 1)
                latency += self._record_store(line, now + latency)
            return latency
        self._add_misses()
        miss_latency, line = self._miss(vblock, now + latency, lease,
                                        is_store)
        latency += miss_latency
        if is_store:
            # LRU tick the legacy post-install probe made.
            self.cache.touch_run(line, 1)
            latency += self._record_store(line, now + latency)
        return latency

    def access_run(self, op, count, now, horizon, interval, lease):
        """Serve a whole same-line access run in one protocol step.

        Returns the constant per-op latency when the steady-state guard
        holds, or ``None`` to make the core expand the run op-by-op.
        The guard admits exactly the runs whose per-op expansion would
        be ``count`` identical hits:

        * fixed lease policy (an adaptive policy observes every access);
        * line resident with a lease covering every instant the run can
          reach — ``horizon + count * (latency + interval)`` bounds all
          per-op clocks, so each per-op ``lease > now`` check passes;
        * stores: line already in write state (no upgrade inside the
          run), and under write-through an L1X-resident copy.

        Accounting is flushed in bulk through the prebuilt flushers and
        the LRU clock advances by ``count`` — bit-identical to the
        per-op path by construction (``tests/test_property_coalesce.py``
        and the golden gate are the proof).
        """
        if not self._fixed_lease:
            return None
        vblock = op.block
        line = self.cache.lookup(vblock, touch=False)
        if line is None or line.lease is None:
            return None
        latency = self._hit_latency
        is_store = op.is_store
        write_through = False
        if is_store:
            if line.state != "W":
                return None
            if self._write_through:
                if self.l1x.cache.lookup(vblock, touch=False) is None:
                    return None
                latency += TILE_LINK_LATENCY + self.l1x.config.hit_latency
                write_through = True
        if line.lease <= horizon + count * (latency + interval):
            return None
        self.cache.touch_run(line, count)
        if not is_store:
            self._flush_load_hit(count)
        elif write_through:
            self._flush_store_hit_wt(count)
            self.l1x.write_through_run(vblock, count)
        else:
            line.dirty = True
            self._flush_store_hit(count)
        return latency

    def phase_quote(self, phase, now, horizon, interval):
        """Serve a whole steady-state phase in one protocol step.

        The phase-engine analogue of :meth:`access_run`: the compiler
        already proved the window's structure (no first touches, no
        upgrades — see :mod:`repro.workloads.phases`), and this guard
        proves the run-time conditions that make the per-op expansion
        ``phase.mem_ops`` identical hits:

        * fixed lease policy (an adaptive policy observes every access);
        * every line resident, its lease covering every instant at
          which the phase can still touch it — ``horizon + last_pos *
          (latency + interval) + compute_cycles`` bounds all per-op
          clocks up to the line's last access (same induction as the
          run guard, with the phase's fused compute included), so
          lines retired early in the window need proportionally less
          lease cover;
        * stored lines already in write state, and under write-through
          an L1X-resident copy of each.

        On success every op is accounted here — the per-phase sequence
        flusher replays the program-ordered counter/energy deltas
        bit-identically, the LRU clock advances exactly
        (:meth:`~repro.mem.cache.SetAssocCache.touch_phase`), dirty
        marks are applied — and the returned ``(load_lat, store_lat)``
        lets the core replay or bulk-apply the issue timeline.
        Returns ``None`` to decline (the window drops to the
        coalesced-run path).
        """
        if not self._fixed_lease:
            return None
        load_lat = self._hit_latency
        store_lat = load_lat
        write_through = self._write_through
        if write_through and phase.num_stores:
            store_lat += TILE_LINK_LATENCY + self.l1x.config.hit_latency
        max_lat = store_lat if phase.num_stores else load_lat
        per_op = max_lat + interval
        base = horizon + phase.compute_cycles
        lines = self.cache._lines
        l1x_lines = self.l1x.cache._lines if write_through else None
        touched = []
        dirty_lines = []
        wt_lines = []
        for block, loads, stores, first_is_store, last_pos, \
                first_mem, first_comp in phase.block_info:
            line = lines.get(block)
            if line is None or line.lease is None \
                    or line.lease <= base + last_pos * per_op:
                return None
            if stores:
                if line.state != "W":
                    return None
                if write_through:
                    wt_line = l1x_lines.get(block)
                    if wt_line is None:
                        return None
                    wt_lines.append(wt_line)
                else:
                    dirty_lines.append(line)
            touched.append((line, last_pos))
        self.cache.touch_phase(touched, phase.mem_ops)
        for line in dirty_lines:
            line.dirty = True
        for wt_line in wt_lines:
            wt_line.dirty = True
        self._phase_ledger(phase)()
        return load_lat, store_lat

    def _phase_ledger(self, phase):
        """The phase's prebuilt counter ledger (cached per phase).

        Built from the *same* pair lists the per-op flushers bind — a
        write-through store event additionally carries the L1X-side
        ``write_through`` increments that :meth:`AccL1XController.
        write_through_run` would flush — so the bulk path charges
        exactly what the per-op path charges, by construction.
        """
        ledger = self._phase_ledgers.get(phase)
        if ledger is None:
            pairs = self._phase_pairs()
            # Given the controller's fixed pair lists, the compiled
            # program depends only on the phase's op counts — memoise
            # per (loads, stores) so ten thousand phases share a few
            # hundred programs.
            key = (phase.num_loads, phase.num_stores)
            program = self._programs.get(key)
            if program is None:
                program = self._programs[key] = compile_phase_ledger(
                    pairs[0], pairs[1], *key)
            ledger = self.stats.registry.phase_flusher(phase.event_seq,
                                                       program)
            self._phase_ledgers[phase] = ledger
        return ledger

    def _phase_pairs(self):
        """The controller's (load, store) hit pair lists, built lazily
        (the L1X write-through flusher may not exist at construction)."""
        pairs = self._ledger_pairs
        if pairs is None:
            load_pairs = self._flush_load_hit.pairs
            if self._write_through:
                store_pairs = self._flush_store_hit_wt.pairs \
                    + self.l1x._flush_write_through.pairs
            else:
                store_pairs = self._flush_store_hit.pairs
            pairs = self._ledger_pairs = (load_pairs, store_pairs)
        return pairs

    def phase_quote_batch(self, window, now, horizon, interval):
        """Serve the longest guardable prefix of a phase *window* in
        one vectorised pass (the vector rung's batched quote API).

        The guard is :meth:`phase_quote`'s cover check evaluated for
        every phase of the window at once: one Python gather over the
        window's flattened ``(phase, line)`` rows — invalid rows
        (absent line, no lease, store without write state or, under
        write-through, without an L1X copy) encode as ``-inf`` — and a
        single vectorised compare against precompiled conservative
        horizon offsets (see :meth:`_compile_window`; a larger base
        than the live per-phase horizon is sound — it can only add
        declines, and any accept/decline pattern is bit-identical by
        the fallback-ladder contract).  The first failing row caps the
        accepted prefix at its phase.

        Application mirrors the per-phase quote exactly: per-phase LRU
        advance and dirty marks in phase order, then *one* bulk window
        ledger for a full accept (exact amounts pre-summed over the
        window, energy counters folded serially with
        ``numpy.add.accumulate`` — the same float rounding sequence as
        the per-phase flushers) — or the per-phase sequence ledgers
        for a partial prefix or while a ``PjTrace`` is recording, so
        replay-rung recordings stay bit-identical.

        Returns ``(accepted_phases, load_lat, store_lat)`` or ``None``
        when nothing is guardable.
        """
        if not self._fixed_lease:
            return None
        key = (window, interval)
        info = self._window_quotes.get(key)
        if info is None:
            info = self._window_quotes[key] = self._compile_window(
                window, interval)
        np = vector_windows.np
        leases = info.lease_buf
        lines_of = self.cache._lines.get
        write_through = self._write_through
        l1x_lines_of = self.l1x.cache._lines.get if write_through \
            else None
        line_scratch = info.line_scratch
        wt_scratch = info.wt_scratch
        for i, (block, needs_store) in enumerate(window.rows):
            line = lines_of(block)
            if line is None or line.lease is None \
                    or (needs_store and line.state != "W"):
                leases[i] = _NEG_INF
                continue
            if needs_store and write_through:
                wt_line = l1x_lines_of(block)
                if wt_line is None:
                    leases[i] = _NEG_INF
                    continue
                wt_scratch[i] = wt_line
            leases[i] = line.lease
            line_scratch[i] = line
        ok = leases > info.bounds + horizon
        if ok.all():
            accepted = window.span
        else:
            accepted = window.row_phase_ids[int(np.argmax(~ok))]
            if accepted == 0:
                return None
        row_start = window.row_start
        last_pos = window.row_last_pos_list
        mem_ops = window.mem_ops
        touch_phase = self.cache.touch_phase
        for j in range(accepted):
            touch_phase(
                [(line_scratch[i], last_pos[i])
                 for i in range(row_start[j], row_start[j + 1])],
                mem_ops[j])
        limit = row_start[accepted]
        marks = wt_scratch if write_through else line_scratch
        for i in info.store_rows:
            if i >= limit:
                break
            marks[i].dirty = True
        if accepted == window.span \
                and not self.stats.registry.pj_trace_active:
            info.ledger()
        else:
            phases = window.phases
            for j in range(accepted):
                self._phase_ledger(phases[j])()
        return accepted, info.load_lat, info.store_lat

    def _compile_window(self, window, interval):
        """Precompile one window's batched-quote state.

        The guard bounds chain the run guard's induction across phases:
        with ``C_0 = 0`` and ``C_{j+1} = C_j + compute_j + mem_ops_j *
        (max_lat_j + interval)``, every per-op clock (and fill
        completion) reachable by the end of phase ``j`` is at most
        ``horizon + C_{j+1}``, so ``lease > horizon + C_j + compute_j
        + last_pos * per_op_j`` implies the per-op expansion of phase
        ``j`` would be all hits.  For the window's first phase this is
        exactly the per-phase guard; later phases use the carried bound
        instead of the live horizon — conservative, hence sound.

        The registry-independent pieces — the bound array, the store
        row indices, the whole-window ledger *program* and the gather
        scratch buffers — are memoised on the window itself
        (:meth:`VectorWindow.cached`), so controller instances across
        simulation runs share one compile; only the registry binding
        is built here.  Sharing the scratch buffers across controllers
        is sound because the model is single-threaded and a batched
        quote never re-enters another controller's batched quote: the
        buffers are dead the moment :meth:`phase_quote_batch` returns.
        """
        load_lat = self._hit_latency
        store_lat = load_lat
        if self._write_through and window.total_stores:
            store_lat += TILE_LINK_LATENCY + self.l1x.config.hit_latency
        pairs = self._phase_pairs()
        bounds, lease_buf, line_scratch, wt_scratch, store_rows, \
            program = window.cached(
                ("acc-quote", load_lat, store_lat, interval,
                 tuple(pairs[0]), tuple(pairs[1])),
                lambda: self._compile_window_shared(
                    window, load_lat, store_lat, interval, pairs))
        ledger = self.stats.registry.window_flusher(program)
        return _WindowQuote(
            load_lat, store_lat, bounds, lease_buf, line_scratch,
            wt_scratch, store_rows, ledger)

    @classmethod
    def _compile_window_shared(cls, window, load_lat, store_lat,
                               interval, pairs):
        """The registry-independent batched-quote state (pure compile,
        shared by every controller quoting this window)."""
        np = vector_windows.np
        bounds = cls._guard_bounds(window, load_lat, store_lat,
                                   interval)
        store_rows = tuple(
            i for i, (_, stores) in enumerate(window.rows) if stores)
        program = vector_windows.compile_window_ledger(
            pairs[0], pairs[1], window)
        num_rows = len(window.rows)
        return (bounds, np.empty(num_rows, dtype=np.float64),
                [None] * num_rows, [None] * num_rows, store_rows,
                program)

    @staticmethod
    def _guard_bounds(window, load_lat, store_lat, interval):
        """The conservative per-row lease bounds (pure compile)."""
        np = vector_windows.np
        mem_ops = np.array(window.mem_ops, dtype=np.float64)
        compute = np.array(window.compute, dtype=np.float64)
        num_stores = np.array(window.num_stores, dtype=np.int64)
        per_op = np.where(num_stores > 0, store_lat,
                          load_lat) + interval
        carry = np.concatenate(
            ([0.0], np.cumsum(compute + mem_ops * per_op)))
        row_phase = window.row_phase
        return carry[:-1][row_phase] + compute[row_phase] \
            + window.row_last_pos * per_op[row_phase]

    def _accept_forward(self, vblock, now, lease):
        """Install a pending forwarded line; returns ``(latency, line)``.

        The lease travelled with the data — the epoch the producer
        already requested at the L1X, so GTIME still bounds it and no
        message is needed (the paper's "forwarding without informing the
        shared L1X").  When that epoch has already expired (in hardware
        the consumer overlaps the producer; the sequential trace-driven
        timeline delays it), the consumer *renews* the epoch with a
        single control message — the three data transfers forwarding
        elides (producer writeback, L1X read, line response) stay
        elided, which is where Table 5's savings come from.
        """
        lease_end = self._incoming_forwards.pop(vblock)
        latency = 0
        stale = self.cache.lookup(vblock, touch=False)
        if stale is not None:
            # An expired copy of our own may still hold dirty data from
            # an earlier epoch; it must self-downgrade like any other
            # stale line (``_miss`` does the same) — and before any
            # renewal below, because the writeback releases the L1X's
            # write-epoch lock.  Found by ``repro.check``: dropping it
            # here silently lost the dirty value.
            latency += self._self_downgrade(stale, now)
            self.cache.invalidate(vblock)
        if lease_end <= now:
            self._send_epoch_write()
            acquire_latency, lease_end = self.l1x.acquire(
                vblock, now, lease, is_write=True, pid=self.pid)
            latency += acquire_latency + 2 * TILE_LINK_LATENCY
            self.stats.add("forward_renewals")
        line, victim = self.cache.install(vblock, state="W", dirty=True,
                                          lease=lease_end, pid=self.pid)
        if victim is not None:
            latency += self._self_downgrade(victim, now)
        return latency, line

    def _drain_forward(self, vblock, now):
        """Write an unconsumed forwarded line's dirty data to the L1X."""
        lease_end = self._incoming_forwards.pop(vblock)
        send(self.axc_link, Msg.WB_DATA, self.shared_stats, "sent")
        self.axc_link.stats.add("write_flits",
                                self.config.line_size // 8)
        self.stats.add("writebacks")
        self.stats.add("unclaimed_forwards")
        return TILE_LINK_LATENCY + self.l1x.writeback_from_l0x(
            vblock, now, pid=self.pid, epoch_end=lease_end)

    def _record_store(self, line, now):
        if self._write_through:
            # Every store word travels to the L1X (Lesson 5's expensive
            # alternative, quantified in Table 4).
            send(self.axc_link, Msg.WT_DATA, self.shared_stats, "sent")
            self.axc_link.stats.add("write_flits", 1)
            return TILE_LINK_LATENCY + self.l1x.write_through(
                line.block, now)
        line.dirty = True
        return 0

    def _upgrade(self, line, now, lease):
        """Acquire a write epoch for a line held under a read lease."""
        self._send_epoch_write()
        latency, epoch_end = self.l1x.acquire(line.block, now, lease,
                                              is_write=True, pid=self.pid)
        line.state = "W"
        line.lease = epoch_end
        self.stats.add("upgrades")
        return 2 * TILE_LINK_LATENCY + latency

    def _miss(self, vblock, now, lease, is_store):
        """Fetch ``vblock`` with a fresh epoch from the shared L1X.

        Returns ``(latency, line)`` — the installed line, so the caller
        records stores into it without a redundant probe.
        """
        latency = TILE_LINK_LATENCY
        stale = self.cache.lookup(vblock, touch=False)
        if stale is not None:
            # Lease expired: self-downgrade dirty data before renewing.
            # Re-requesting an expired line is the signal that its lease
            # was too short.
            self.lease_policy.on_renewal_miss(
                self.config.set_index(vblock))
            latency += self._self_downgrade(stale, now)
            self.cache.invalidate(vblock)
        if is_store:
            self._send_epoch_write()
        else:
            self._send_epoch_read()
        acquire_latency, epoch_end = self.l1x.acquire(
            vblock, now + latency, lease, is_write=is_store, pid=self.pid)
        latency += acquire_latency
        self._recv_data_line()
        latency += TILE_LINK_LATENCY
        # The response carries the absolute epoch end granted by the
        # L1X — never a locally recomputed one, so GTIME always bounds it.
        line, victim = self.cache.install(
            vblock, state="W" if is_store else "R", lease=epoch_end,
            pid=self.pid)
        if victim is not None:
            if victim.lease is not None and victim.lease > now + latency:
                # Evicting a live-leased line: the lease over-committed.
                self.lease_policy.on_wasted_lease(
                    self.config.set_index(victim.block))
            latency += self._self_downgrade(victim, now + latency)
        return latency, line

    def _self_downgrade(self, line, now):
        """Write a dirty line back to the L1X (clean lines drop silently —
        the L1X's GTIME already bounds their lifetime).

        Under FUSION-Dx, marked producer-consumer lines are pushed to the
        consumer's L0X instead — eliding the writeback, the consumer's
        epoch request and the L1X read (Table 5's accounting).
        """
        if not line.dirty:
            return 0
        if self.forward_hook is not None and \
                self.forward_hook(self, line, now):
            return TILE_LINK_LATENCY
        self._flush_writeback()
        line.dirty = False
        return TILE_LINK_LATENCY + self.l1x.writeback_from_l0x(
            line.block, now, pid=self.pid, epoch_end=line.lease)

    # -- invocation boundaries ----------------------------------------------

    def flush_dirty(self, now):
        """Self-downgrade every dirty line (invocation end).

        The hardware does this incrementally as write leases expire,
        filtered by the per-set writeback timestamps; the aggregate event
        count and energy are identical.  Lines stay resident (clean) and
        remain usable until their leases expire.  Returns the latency of
        draining the writebacks.
        """
        latency = 0
        for line in list(self.cache.dirty_lines()):
            latency += self._self_downgrade(line, now)
        # Safety net: forwarded lines this consumer never touched still
        # carry dirty data that must reach the L1X.  The forwarding plan
        # only marks read-before-write blocks, so this is normally empty.
        for vblock in sorted(self._incoming_forwards):
            latency += self._drain_forward(vblock, now)
        return latency

    def dirty_blocks(self):
        return [line.block for line in self.cache.dirty_lines()]

    # -- FUSION-Dx write forwarding ------------------------------------------

    def forward_line(self, vblock, consumer, now, lease=None):
        """Push a resident dirty line directly into ``consumer``'s L0X.

        Returns False when the line is absent or clean.  ``lease`` is
        accepted for API symmetry but ignored: the forward carries the
        line's *already requested* epoch (see :meth:`forward_line_obj`).
        """
        line = self.cache.lookup(vblock, touch=False)
        if line is None or not line.dirty:
            return False
        self.forward_line_obj(line, consumer, now)
        return True

    def forward_line_obj(self, line, consumer, now):
        """Forward ``line`` (possibly already evicted here) to ``consumer``.

        Saves the writeback to the L1X, the consumer's epoch request and
        the L1X data response; costs one line on the cheap L0X<->L0X
        link.  The data travels with "the already requested lease
        lifetime" (Section 3.2): the producer's epoch end, which the
        L1X's GTIME already bounds — which is exactly why ACC permits
        forwarding without telling the L1X.
        """
        send(self.fwd_link, Msg.FWD_LINE, self.shared_stats, "fwd")
        self.cache.invalidate(line.block)  # at most one writer per block
        line.dirty = False
        consumer._incoming_forwards[line.block] = line.lease or now
        self.stats.add("lines_forwarded")

    # -- invocation replay surface (repro.accel.replay) ----------------------

    def state_signature(self, set_indices=None):
        """Raw replay-state capture of the L0X array (whole cache when
        ``set_indices`` is ``None``, else just those sets)."""
        return self.cache.capture_sets(set_indices)

    def apply_transform(self, transform, t0):
        """Apply a recorded invocation end-state transform at ``t0``."""
        from ..accel.replay import apply_cache_transform
        apply_cache_transform(self.cache, transform, t0)
