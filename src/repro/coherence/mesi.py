"""Directory MESI host memory system.

This is the substrate below every evaluated design: the host core's L1,
the 4 MB NUCA L2 with its directory, DRAM, and the long L1X<->L2 link.
The accelerator tile (whatever its internal organisation) appears to this
engine as a single coherence agent — exactly the paper's integration
model, where the shared L1X "appears as just another L1 agent" and
"exclusivity is maintained between the host processor tile and
accelerator tile".

Responsibilities:

* host core loads/stores (3-hop MESI, forwarded requests into the tile);
* line fetches on behalf of the tile (always granted exclusively — the
  L1X caches every block in E, mapping its states to MEI);
* tile writebacks / eviction notices (PUTX / PUTS);
* coherent oracle-DMA reads and writes at the LLC (the SCRATCH baseline);
* inclusion between the L2 and the tile (recalls on L2 evictions).

All traffic crossing the tile boundary is charged to the 6 pJ/byte
``l1x_l2`` link here, in one place, so no caller can double-count it.
"""

from ..common.config import CacheConfig
from ..common.errors import ProtocolError
from ..common.types import block_address
from ..energy import cacti
from ..interconnect.link import Link
from ..interconnect.ring import NucaRing
from ..mem.cache import SetAssocCache
from ..mem.dram import MainMemory
from .directory import HOST, TILE, Directory
from .messages import Msg, sender


class HostMemorySystem:
    """Host L1 + directory L2 + DRAM, with one accelerator-tile agent."""

    def __init__(self, config, stats):
        self.config = config
        self.stats = stats
        self.mesi_stats = stats.scope("mesi")
        host = config.host
        self.l1 = SetAssocCache(host.l1, name="host_l1")
        self.l1_stats = stats.scope("host_l1")
        l2_config = CacheConfig(
            host.l2_size_bytes, host.l2_ways, banks=host.l2_banks,
            hit_latency=host.l2_avg_latency)
        self.l2 = SetAssocCache(l2_config, name="l2")
        self.l2_stats = stats.scope("l2")
        self.directory = Directory(stats)
        self.ring = NucaRing(host.l2_banks, stats)
        self.dram = MainMemory(config.dram, stats)
        self.tile_link = Link("l1x_l2", config.link.l1x_l2_pj_per_byte,
                              stats)
        self._l1_energy = cacti.cache_access_energy_pj(host.l1)
        self._l2_energy = cacti.llc_bank_access_energy_pj(host)
        # Bound counter handles for the per-access paths (fetch_for_tile
        # and tile_writeback run once per L1X miss/eviction in every
        # cache-based design, so the L2 counters are genuinely hot).
        self._l1_hit_latency = host.l1.hit_latency
        self._add_l1_accesses = self.l1_stats.counter("accesses")
        self._add_l1_energy = self.l1_stats.counter("energy_pj")
        self._add_l1_hits = self.l1_stats.counter("hits")
        self._add_l1_misses = self.l1_stats.counter("misses")
        self._add_l2_accesses = self.l2_stats.counter("accesses")
        self._add_l2_writes = self.l2_stats.counter("writes")
        self._add_l2_energy = self.l2_stats.counter("energy_pj")
        self._add_l2_hits = self.l2_stats.counter("hits")
        self._add_l2_misses = self.l2_stats.counter("misses")
        # Prebuilt senders for the fixed tile-link messages (one per
        # call site): these fire once per L1X miss/eviction and once
        # per DMA block, where the generic send() dispatch is
        # measurable.  Bit-identical to send() by construction.
        mesi = self.mesi_stats
        link = self.tile_link
        self._send_recall = sender(link, Msg.RECALL, mesi, "sent")
        self._recv_putx = sender(link, Msg.PUTX, mesi, "recv")
        self._recv_puts = sender(link, Msg.PUTS, mesi, "recv")
        self._send_fwd_getx = sender(link, Msg.FWD_GETX, mesi, "sent")
        self._send_fwd_gets = sender(link, Msg.FWD_GETS, mesi, "sent")
        self._send_data_line = sender(link, Msg.DATA_LINE, mesi, "sent")
        self._send_dma_data_line = sender(link, Msg.DATA_LINE, mesi, "dma")
        self._send_dma_wb_data = sender(link, Msg.WB_DATA, mesi, "dma")
        #: Registered tile agents by name; the common single-tile case
        #: uses the ``tile_agent`` property (name "tile").
        self.tile_agents = {}
        #: Monotonic structural version for the invocation replay cache
        #: (``repro.accel.replay``): bumped by every entry point that can
        #: mutate host-side coherence state (L1/L2 contents or LRU,
        #: directory ownership, DRAM row state via a fill).  Equal
        #: version values therefore prove the host hierarchy is in the
        #: exact state a recording captured.  The one deliberate
        #: exception is the quiet DMA path (L2 hits with no host copy),
        #: which only sets L2 dirty bits / creates idle directory
        #: entries — SCRATCH recordings pin those per-block instead.
        self.struct_version = 0

    @property
    def tile_agent(self):
        """The default single tile's agent (back-compat accessor)."""
        return self.tile_agents.get(TILE)

    @tile_agent.setter
    def tile_agent(self, agent):
        self.tile_agents[TILE] = agent

    def register_tile(self, name, agent):
        """Attach an additional accelerator tile as a coherence agent."""
        self.tile_agents[name] = agent

    # ------------------------------------------------------------------
    # raw array accesses (latency + energy, no coherence)
    # ------------------------------------------------------------------

    def _l1_access(self, is_store):
        self._add_l1_accesses()
        self._add_l1_energy(self._l1_energy)
        return self._l1_hit_latency

    def _l2_access(self, block, is_store=False):
        """One L2 bank access including the NUCA ring traversal."""
        self._add_l2_accesses()
        if is_store:
            self._add_l2_writes()
        self._add_l2_energy(self._l2_energy)
        return self.ring.traverse(block)

    # ------------------------------------------------------------------
    # L2 fills and inclusion
    # ------------------------------------------------------------------

    def _ensure_l2(self, block, now):
        """Make ``block`` resident in the L2; returns added latency."""
        if self.l2.contains(block):
            self._add_l2_hits()
            return 0
        self.struct_version += 1
        self._add_l2_misses()
        latency = self.dram.access(block)
        victim = self.l2.insert(block)
        if victim is not None:
            latency += self._handle_l2_eviction(victim, now)
        return latency

    def _handle_l2_eviction(self, victim, now):
        """Evict an L2 line, recalling it from the tile if inclusion
        demands it and writing dirty data back to DRAM."""
        latency = 0
        entry = self.directory.lookup(victim.block)
        for name in sorted(self.directory.tile_sharers(victim.block)):
            # Inclusion recall: the L1X must give the line up.
            self._send_recall()
            stall, dirty = self._forward_to_tile(victim.block, now,
                                                 is_store=True,
                                                 tile=name)
            latency += stall
            victim.dirty = victim.dirty or dirty
        if entry is not None and entry.cached_by(HOST):
            host_line = self.l1.invalidate(victim.block)
            if host_line is not None and host_line.dirty:
                victim.dirty = True
            self.mesi_stats.add("inclusion_l1_invalidations")
        self.directory.drop(victim.block)
        if victim.dirty:
            latency += self.dram.access(victim.block, is_store=True)
            self.l2_stats.add("dirty_evictions")
        return latency

    def _forward_to_tile(self, block, now, is_store, tile=TILE):
        """Forward a request into one tile; returns (latency, dirty)."""
        agent = self.tile_agents.get(tile)
        if agent is None:
            raise ProtocolError(
                "directory names {!r} as a sharer but no such tile "
                "agent is registered".format(tile),
                agent=tile, block=block, invariant="registered-agent")
        self.mesi_stats.add("fwd_to_tile")
        stall, dirty = agent.handle_forwarded_request(block, now, is_store)
        # The tile answers with an eviction notice (+ data when dirty).
        if dirty:
            self._recv_putx()
        else:
            self._recv_puts()
        entry = self.directory.entry(block)
        entry.remove(tile)
        if dirty:
            stall += self._l2_access(block, is_store=True)
        return stall, dirty

    def _forward_to_all_tiles(self, block, now, is_store, exclude=None):
        """Forward to every tile caching ``block``; returns latency."""
        latency = 0
        for name in sorted(self.directory.tile_sharers(block)):
            if name == exclude:
                continue
            if is_store:
                self._send_fwd_getx()
            else:
                self._send_fwd_gets()
            stall, _ = self._forward_to_tile(block, now, is_store,
                                             tile=name)
            latency += stall
        return latency

    # ------------------------------------------------------------------
    # host core side
    # ------------------------------------------------------------------

    def host_load(self, paddr, now=0):
        """Host core load; returns latency in cycles."""
        block = block_address(paddr)
        latency = self._l1_access(is_store=False)
        if self.l1.contains(block):
            self._add_l1_hits()
            return latency
        self.struct_version += 1
        self._add_l1_misses()
        latency += self._l2_access(block)
        latency += self._ensure_l2(block, now)
        latency += self._forward_to_all_tiles(block, now, is_store=False)
        entry = self.directory.entry(block)
        entry.add_sharer(HOST)
        self._l1_fill(block, dirty=False, now=now)
        return latency

    def host_store(self, paddr, now=0):
        """Host core store; returns latency in cycles."""
        block = block_address(paddr)
        self.struct_version += 1
        latency = self._l1_access(is_store=True)
        line = self.l1.lookup(block)
        if line is not None and line.state in ("M", "E"):
            line.dirty = True
            line.state = "M"
            self._add_l1_hits()
            return latency
        self._add_l1_misses()
        latency += self._l2_access(block)
        latency += self._ensure_l2(block, now)
        latency += self._forward_to_all_tiles(block, now, is_store=True)
        entry = self.directory.entry(block)
        if line is None:
            self._l1_fill(block, dirty=True, now=now)
        else:
            # Upgrade (e.g. an S copy left behind by a DMA downgrade).
            line.dirty = True
            line.state = "M"
        entry.set_owner(HOST)
        return latency

    def _l1_fill(self, block, dirty, now):
        """Install a new line in the host L1 (caller guarantees absence)."""
        victim = self.l1.insert(block, dirty=dirty,
                                state="M" if dirty else "E")
        if victim is not None:
            self._retire_host_line(victim, now)

    def _retire_host_line(self, victim, now):
        """Handle a host L1 eviction (writeback dirty data to the L2)."""
        self.directory.entry(victim.block).remove(HOST)
        if victim.dirty:
            self._l2_access(victim.block, is_store=True)
            l2_line = self.l2.lookup(victim.block, touch=False)
            if l2_line is not None:
                l2_line.dirty = True
            self.l1_stats.add("dirty_evictions")

    # ------------------------------------------------------------------
    # accelerator tile side
    # ------------------------------------------------------------------

    def fetch_for_tile(self, pblock, now=0, tile=TILE):
        """Fetch one line exclusively for a tile's L1X.

        The request message itself is charged by the caller's epoch/GETS
        send; this method charges the L2/DRAM work and the line-sized data
        response over the tile link.  Returns latency.
        """
        block = block_address(pblock)
        self.struct_version += 1
        latency = self._l2_access(block)
        latency += self._ensure_l2(block, now)
        # Exclusivity between tiles: recall any other tile's copy.
        latency += self._forward_to_all_tiles(block, now, is_store=True,
                                              exclude=tile)
        entry = self.directory.entry(block)
        if entry.cached_by(HOST):
            # 3-hop: invalidate/downgrade the host copy first.
            host_line = self.l1.invalidate(block)
            self.mesi_stats.add("host_invalidations_for_tile")
            if host_line is not None and host_line.dirty:
                self._l2_access(block, is_store=True)
                l2_line = self.l2.lookup(block, touch=False)
                if l2_line is not None:
                    l2_line.dirty = True
            entry.remove(HOST)
        entry.set_owner(tile)
        self._send_data_line()
        return latency

    def tile_writeback(self, pblock, dirty, now=0, tile=TILE):
        """A tile evicts a line (self-downgrade, capacity, or GTIME
        expiry after a forward).  Returns latency."""
        block = block_address(pblock)
        self.struct_version += 1
        if dirty:
            self._recv_putx()
        else:
            self._recv_puts()
        entry = self.directory.entry(block)
        entry.remove(tile)
        latency = 0
        if dirty:
            latency += self._l2_access(block, is_store=True)
            l2_line = self.l2.lookup(block, touch=False)
            if l2_line is not None:
                l2_line.dirty = True
            else:
                # Non-inclusive corner: line left the L2 meanwhile.
                latency += self._ensure_l2(block, now)
                refetched = self.l2.lookup(block, touch=False)
                if refetched is not None:
                    refetched.dirty = True
        return latency

    # ------------------------------------------------------------------
    # oracle DMA side (SCRATCH)
    # ------------------------------------------------------------------

    def dma_read(self, pblock, now=0):
        """Coherent DMA read of one line from the LLC into a scratchpad.

        Reads the most-up-to-date copy (pulling it from the host L1 when
        dirty there) but does not install the DMA engine as a sharer.
        Returns the L2-side latency; the caller models the streaming
        transfer itself.
        """
        block = block_address(pblock)
        latency = self._l2_access(block)
        latency += self._ensure_l2(block, now)
        # Recall copies cached by accelerator tile agents so the DMA
        # stream observes their dirty data.  Legacy SCRATCH runs never
        # register a tile agent, so this is a no-op there; it matters
        # when a policy run mixes scratchpad-DMA invocations with
        # cache-based strategies on the same footprint.
        latency += self._forward_to_all_tiles(block, now, is_store=False)
        entry = self.directory.entry(block)
        if entry.cached_by(HOST):
            host_line = self.l1.lookup(block, touch=False)
            if host_line is not None and host_line.dirty:
                self.struct_version += 1
                host_line.dirty = False
                host_line.state = "S"
                self._l2_access(block, is_store=True)
                l2_line = self.l2.lookup(block, touch=False)
                if l2_line is not None:
                    l2_line.dirty = True
                self.mesi_stats.add("dma_host_writebacks")
        self._send_dma_data_line()
        return latency

    def dma_write(self, pblock, now=0):
        """Coherent DMA write of one dirty scratchpad line into the LLC."""
        block = block_address(pblock)
        self._send_dma_wb_data()
        latency = self._l2_access(block, is_store=True)
        latency += self._ensure_l2(block, now)
        # Invalidate tile-agent copies before the DMA store lands (see
        # dma_read; a no-op unless cache strategies share the run).
        latency += self._forward_to_all_tiles(block, now, is_store=True)
        entry = self.directory.entry(block)
        if entry.cached_by(HOST):
            self.struct_version += 1
            self.l1.invalidate(block)
            entry.remove(HOST)
            self.mesi_stats.add("dma_host_invalidations")
        l2_line = self.l2.lookup(block, touch=False)
        if l2_line is not None:
            l2_line.dirty = True
        return latency
