"""Coherence message vocabulary shared by the MESI and ACC engines.

Messages are not materialised as objects in the hot path — the simulator
only needs their *counts* and *sizes* — but every protocol transition
names the message it sends so that traffic statistics (Figure 6c,
Table 4) use one consistent vocabulary.
"""

import zlib
from enum import Enum, auto

from ..common.units import CONTROL_MSG_SIZE, LINE_SIZE


class Msg(Enum):
    """Every message type exchanged in the system.

    Message identity is *stable*: ``repr``, equality and ``hash`` depend
    only on the message name, never on ``auto()`` ordering or the
    process's hash seed.  The model checker (:mod:`repro.check`) folds
    messages into state hashes that must be reproducible across runs and
    processes, and counterexample traces print messages — both need
    identity that survives reordering this enum or restarting Python.
    """

    def __repr__(self):
        return "Msg.{}".format(self.name)

    def __hash__(self):
        return self._stable_hash

    # Requests (control, one flit)
    GETS = auto()          # read request
    GETX = auto()          # write/exclusive request
    EPOCH_READ = auto()    # ACC read-epoch request (L0X -> L1X)
    EPOCH_WRITE = auto()   # ACC write-epoch request (L0X -> L1X)
    # Responses
    DATA_LINE = auto()     # whole-line data response
    DATA_WORD = auto()     # word-granularity response (SHARED loads)
    ACK = auto()
    # Writebacks / evictions
    PUTX = auto()          # eviction notice with data (dirty)
    PUTS = auto()          # eviction notice, clean
    WB_DATA = auto()       # writeback data payload
    WT_DATA = auto()       # write-through word payload
    # Directory-forwarded requests
    FWD_GETS = auto()
    FWD_GETX = auto()
    INV = auto()
    RECALL = auto()        # inclusion-victim recall (L2 -> L1X)
    # FUSION-Dx
    FWD_LINE = auto()      # direct L0X -> L0X forwarded line


# Assigned after the class body: inside it, auto() needs the default
# Enum machinery, and a name-derived hash must not depend on definition
# order anyway.  crc32 (unlike str.__hash__) ignores PYTHONHASHSEED.
for _msg in Msg:
    _msg._stable_hash = zlib.crc32(_msg.name.encode("ascii"))
del _msg


#: Payload size of each message in bytes.
MSG_SIZE = {
    Msg.GETS: CONTROL_MSG_SIZE,
    Msg.GETX: CONTROL_MSG_SIZE,
    Msg.EPOCH_READ: CONTROL_MSG_SIZE,
    Msg.EPOCH_WRITE: CONTROL_MSG_SIZE,
    Msg.DATA_LINE: LINE_SIZE,
    Msg.DATA_WORD: 8,
    Msg.ACK: CONTROL_MSG_SIZE,
    Msg.PUTX: CONTROL_MSG_SIZE + LINE_SIZE,
    Msg.PUTS: CONTROL_MSG_SIZE,
    Msg.WB_DATA: LINE_SIZE,
    Msg.WT_DATA: 8,
    Msg.INV: CONTROL_MSG_SIZE,
    Msg.FWD_GETS: CONTROL_MSG_SIZE,
    Msg.FWD_GETX: CONTROL_MSG_SIZE,
    Msg.RECALL: CONTROL_MSG_SIZE,
    Msg.FWD_LINE: LINE_SIZE,
}

#: Message types that carry data payloads (the rest are control traffic).
DATA_MESSAGES = frozenset({
    Msg.DATA_LINE, Msg.DATA_WORD, Msg.PUTX, Msg.WB_DATA, Msg.WT_DATA,
    Msg.FWD_LINE,
})


#: Per-message lowercase counter suffix, precomputed once — ``send`` is
#: called for every coherence transition in the system.
_COUNTER_SUFFIX = {msg: msg.name.lower() for msg in Msg}


def size_of(msg):
    """Return the size in bytes of one message of type ``msg``."""
    return MSG_SIZE[msg]


def is_data(msg):
    """Return whether ``msg`` carries a data payload."""
    return msg in DATA_MESSAGES


def send(link, msg, stats=None, counter_prefix=None):
    """Send one message over ``link`` with correct msg/data accounting."""
    if msg in DATA_MESSAGES:
        link.send_data(MSG_SIZE[msg])
    else:
        link.send_msg(MSG_SIZE[msg])
    if stats is not None and counter_prefix is not None:
        stats.add(counter_prefix + "." + _COUNTER_SUFFIX[msg])


def counter_pairs(link, msg, stats=None, counter_prefix=None):
    """The ``(qualified_name, amount)`` increments one :func:`send` makes.

    Building blocks for prebuilt senders and run flushers — every pair
    carries the same amount the per-call path would add, so bulk
    application is bit-identical.
    """
    pairs = link.counter_pairs(MSG_SIZE[msg], msg in DATA_MESSAGES)
    if stats is not None and counter_prefix is not None:
        pairs.append((stats.qualified(
            counter_prefix + "." + _COUNTER_SUFFIX[msg]), 1))
    return pairs


def sender(link, msg, stats=None, counter_prefix=None):
    """Return a bound ``send_n(count=1)`` equivalent to ``count`` calls
    of ``send(link, msg, stats, counter_prefix)``.

    Hot protocol transitions (epoch requests, data responses, DMA
    traffic) send the *same* message on the *same* link every time; a
    prebuilt sender skips the enum hashing, size lookup and per-counter
    handle dispatch of the generic path.
    """
    return link.registry.flusher(
        counter_pairs(link, msg, stats, counter_prefix))
