"""Per-invocation coherence strategies.

The paper's four evaluated designs differ only in how act 2 of the run
script (the accelerated region) touches memory: oracle-DMA scratchpads
(SCRATCH), one MESI-participating shared cache (SHARED), or the ACC
lease hierarchy (FUSION / FUSION-Dx).  This module extracts that choice
into first-class :class:`CoherenceStrategy` objects so it can be made
*per invocation* instead of per system class:

* a **strategy** is a small frozen spec (family + tunables such as the
  FUSION lease length) that is cheap to build, hashable, and printable
  (``strategy.key`` round-trips through :func:`make_strategy`);
* **binding** a strategy to a simulation context constructs the actual
  machinery (scratchpads + DMA engine, shared L1X, accelerator tile)
  exactly as the legacy system classes did — the systems in
  ``repro.systems`` are now thin presets over one bound strategy, and
  the golden grids pin that the extraction is bit-identical;
* a :class:`StrategyBinder` lazily binds at most one machinery instance
  per *family*, so a policy run that mixes ``fusion:lease=250`` and
  ``fusion:lease=1000`` shares a single tile (the lease is applied at
  the invocation boundary, as the hardware would), and a run that never
  selects a family never pays for its construction.

Mixing families in one run is coherent by construction: every cache
family registers as a named agent with the host directory, host-side
fetches recall other agents' copies, and the oracle-DMA paths recall
registered tile agents before streaming (see ``HostMemorySystem``).
"""

import abc
from dataclasses import dataclass, field, replace

from ..accel.core import AxcCore
from ..accel.replay import (AccTileReplayAdapter, ScratchReplayAdapter,
                            SharedL1XReplayAdapter)
from ..accel.tile import AcceleratorTile
from ..common.config import WritePolicy
from ..common.errors import ConfigError
from ..host.dma import OracleDmaController, ScratchpadAccessModel, \
    windows_for
from ..interconnect.link import Link
from ..mem.scratchpad import Scratchpad
from ..workloads.forwarding import forwarding_plan
from .directory import TILE
from .shared_l1 import ISSUE_INTERVAL, SharedL1XController


@dataclass
class BindContext:
    """Everything a strategy needs to build its machinery.

    ``workload`` may be ``None`` when no strategy in play derives
    per-workload structure (only FUSION-Dx forwarding plans need it).
    ``agent_name`` is the host-directory agent name for cache-based
    families; the default is the legacy single-tile name, which the
    :class:`StrategyBinder` overrides when several families coexist.
    """

    config: object
    host_mem: object
    page_table: object
    stats: object
    num_axcs: int
    workload: object = None
    agent_name: str = TILE


def bind_context(system):
    """The :class:`BindContext` of a single-workload system."""
    return BindContext(config=system.config, host_mem=system.host_mem,
                       page_table=system.page_table, stats=system.stats,
                       num_axcs=system.workload.num_axcs,
                       workload=system.workload)


class CoherenceStrategy(abc.ABC):
    """One coherence mode an invocation can run under."""

    #: Machinery family ("scratch" | "shared" | "fusion").  Strategies
    #: of one family share a single bound instance per run.
    family = None
    #: Whether binding registers a coherence agent with the host
    #: directory (cache families do; the DMA engine is not an agent).
    needs_agent = False

    @property
    @abc.abstractmethod
    def key(self):
        """Canonical spelling; ``make_strategy(key)`` round-trips."""

    @abc.abstractmethod
    def bind(self, ctx):
        """Construct this family's machinery; returns a bound strategy."""


@dataclass(frozen=True)
class ScratchpadDmaStrategy(CoherenceStrategy):
    """Oracle-DMA scratchpads (the paper's SCRATCH integration)."""

    family = "scratch"
    needs_agent = False

    @property
    def key(self):
        return "scratch"

    def bind(self, ctx):
        return BoundScratchpadDma(ctx)


@dataclass(frozen=True)
class SharedL1XStrategy(CoherenceStrategy):
    """One shared MESI L1X, no private caches (the SHARED design)."""

    family = "shared"
    needs_agent = True

    @property
    def key(self):
        return "shared"

    def bind(self, ctx):
        return BoundSharedL1X(ctx)


@dataclass(frozen=True)
class FusionLeaseStrategy(CoherenceStrategy):
    """The ACC lease hierarchy (FUSION), with a tunable lease length.

    ``lease=None`` reproduces the legacy resolution (the config's
    ``lease_override`` or the function's assigned lease time);
    an explicit ``lease`` pins every invocation-boundary epoch request
    to that length — the per-invocation knob the lease ablation sweeps
    per *system*.  ``forwarding`` enables the FUSION-Dx L0X-to-L0X
    write forwarding pass.
    """

    family = "fusion"
    needs_agent = True

    lease: int = None
    forwarding: bool = False

    def __post_init__(self):
        if self.lease is not None and self.lease < 0:
            raise ConfigError("negative lease {!r}".format(self.lease))

    @property
    def key(self):
        base = "fusion-dx" if self.forwarding else "fusion"
        if self.lease is None:
            return base
        return "{}:lease={}".format(base, self.lease)

    def bind(self, ctx):
        return BoundFusionTile(ctx)


def make_strategy(key):
    """Parse a strategy key into a :class:`CoherenceStrategy`.

    Accepted spellings: ``scratch``, ``shared``, ``fusion``,
    ``fusion-dx``, each optionally suffixed with ``:lease=N`` for the
    fusion family (``fusion:lease=250``).  Strategy instances pass
    through unchanged.
    """
    if isinstance(key, CoherenceStrategy):
        return key
    name, _, rest = str(key).partition(":")
    lease = None
    if rest:
        for part in rest.split(":"):
            option, _, value = part.partition("=")
            if option != "lease" or not value:
                raise ConfigError(
                    "unknown strategy option {!r} in {!r}".format(
                        part, key))
            try:
                lease = int(value)
            except ValueError:
                raise ConfigError(
                    "non-integer lease {!r} in {!r}".format(value, key)) \
                    from None
    if name == "scratch" or name == "shared":
        if lease is not None:
            raise ConfigError(
                "strategy {!r} takes no lease (leases are a fusion-"
                "family tunable)".format(name))
        return (ScratchpadDmaStrategy() if name == "scratch"
                else SharedL1XStrategy())
    if name == "fusion":
        return FusionLeaseStrategy(lease=lease)
    if name == "fusion-dx":
        return FusionLeaseStrategy(lease=lease, forwarding=True)
    raise ConfigError(
        "unknown coherence strategy {!r}; expected scratch, shared, "
        "fusion or fusion-dx (optionally :lease=N)".format(key))


# ---------------------------------------------------------------------------
# Bound strategies: the machinery, extracted verbatim from the systems
# ---------------------------------------------------------------------------

class BoundScratchpadDma:
    """Per-accelerator scratchpads + oracle coherent DMA engine."""

    family = "scratch"

    def __init__(self, ctx):
        config = ctx.config
        stats = ctx.stats
        self.stats = stats
        self.scratchpads = [
            Scratchpad(config.tile.scratchpad, name="sp{}".format(i))
            for i in range(ctx.num_axcs)
        ]
        self.access_models = [
            ScratchpadAccessModel(config, sp, stats)
            for sp in self.scratchpads
        ]
        self.cores = [AxcCore(i, stats) for i in range(ctx.num_axcs)]
        self.dma = OracleDmaController(config, ctx.host_mem,
                                       ctx.page_table, stats)
        # Push-based DMA double-buffers: half the scratchpad holds the
        # live window while the other half stages the next transfer, so
        # a window may only pin half the blocks.
        blocks = config.tile.scratchpad.num_blocks
        if config.dma.double_buffered:
            blocks //= 2
        self.capacity = max(1, blocks)

    def run(self, strategy, index, trace, now, axc, mlp):
        scratchpad = self.scratchpads[axc]
        model = self.access_models[axc]
        core = self.cores[axc]
        windows = windows_for(trace, self.capacity)
        self.stats.add("dma.windows", len(windows))
        for window_index, window in enumerate(windows):
            now += self.dma.transfer_in(window.in_blocks, scratchpad,
                                        now)
            now = core.run(window.trace, now, model.access, mlp,
                           charge_invocation=(window_index == 0),
                           access_run=model.access_run,
                           phase_quote=model.phase_quote,
                           phase_quote_batch=model.phase_quote_batch,
                           leased_phases=False)
            dirty = scratchpad.drain()
            now += self.dma.transfer_out(dirty, now)
        return now

    def replay_adapter(self, system, strategy):
        return ScratchReplayAdapter(system)


class BoundSharedL1X:
    """One shared L1X participating in host MESI, plus the AXC cores."""

    family = "shared"

    def __init__(self, ctx):
        config = ctx.config
        self.config = config
        self.l1x = SharedL1XController(config, ctx.host_mem,
                                       ctx.page_table, ctx.stats,
                                       agent_name=ctx.agent_name)
        self.l1x.axc_link = Link(
            "axc_l1x", config.link.axc_l1x_pj_per_byte, ctx.stats)
        ctx.host_mem.register_tile(ctx.agent_name, self.l1x)
        self.cores = [AxcCore(i, ctx.stats) for i in range(ctx.num_axcs)]

    def run(self, strategy, index, trace, now, axc, mlp):
        return self.cores[axc].run(
            trace, now, self.l1x.access, mlp,
            issue_interval=ISSUE_INTERVAL,
            access_run=self.l1x.access_run,
            phase_quote=self.l1x.phase_quote,
            phase_quote_batch=self.l1x.phase_quote_batch,
            leased_phases=False)

    def replay_adapter(self, system, strategy):
        if self.config.tile.model_bank_conflicts:
            # Bank busy-until times are absolute; not replayable.
            return None
        return SharedL1XReplayAdapter(system)


class BoundFusionTile:
    """The FUSION accelerator tile (L0Xs + L1X under ACC)."""

    family = "fusion"

    def __init__(self, ctx):
        self.config = ctx.config
        self.workload = ctx.workload
        self.tile = AcceleratorTile(ctx.config, ctx.host_mem,
                                    ctx.page_table, ctx.num_axcs,
                                    ctx.stats, name=ctx.agent_name)
        #: Forwarding plan, built lazily on the first forwarding
        #: invocation (a pure function of the workload trace).
        self._plan = None

    def forward_plan_for(self, strategy, index):
        if not strategy.forwarding:
            return None
        plan = self._plan
        if plan is None:
            if self.workload is None:
                raise ConfigError(
                    "forwarding strategy bound without a workload "
                    "(no trace to derive the forwarding plan from)")
            plan = self._plan = forwarding_plan(self.workload)
        return plan.get(index)

    def effective_lease(self, strategy, trace):
        if strategy.lease is not None:
            return strategy.lease
        return self.config.tile.lease_override or trace.lease_time

    def run(self, strategy, index, trace, now, axc, mlp):
        return self.tile.run_invocation(
            axc, trace, now, mlp,
            lease=self.effective_lease(strategy, trace),
            forward_plan=self.forward_plan_for(strategy, index))

    def replay_adapter(self, system, strategy):
        tile = self.config.tile
        if (strategy.lease is not None
                or tile.model_bank_conflicts
                or tile.lease_policy != "fixed"
                or tile.l0x.write_policy is not WritePolicy.WRITE_BACK):
            # Bank busy-until times are absolute (not translation
            # invariant), adaptive leases carry cross-invocation policy
            # state, write-through L0X reads L1X write epochs with no
            # state diff to sign, and a strategy-pinned lease is not
            # what the recording adapter keys on — decline the rung.
            return None
        return AccTileReplayAdapter(system)


class StrategyBinder:
    """Lazily bind strategies, sharing one machinery instance per family.

    The first cache family bound gets the legacy directory agent name
    (``"tile"``) so a single-family run — e.g. the static selector —
    is bit-identical to the corresponding legacy system; later cache
    families get fresh names, keeping host-directory exclusivity exact
    when families mix within one run.
    """

    def __init__(self, ctx):
        self._ctx = ctx
        self._bound = {}
        self._agents = 0

    def bind(self, strategy):
        bound = self._bound.get(strategy.family)
        if bound is None:
            ctx = self._ctx
            if strategy.needs_agent:
                self._agents += 1
                name = TILE if self._agents == 1 \
                    else "{}{}".format(TILE, self._agents)
                ctx = replace(ctx, agent_name=name)
            bound = self._bound[strategy.family] = strategy.bind(ctx)
        return bound

    @property
    def bound_families(self):
        """{family: bound strategy} for everything bound so far."""
        return dict(self._bound)
