"""Structure-of-arrays compilation of phase plans (the vector rung).

The steady-state phase engine (:mod:`repro.workloads.phases`) already
collapses per-op protocol traversal into one ``phase_quote`` call per
compiled phase, but long traces still pay one Python round trip — quote,
guard walk, ledger flush, timeline apply — *per phase*.  This module
compiles each :class:`~repro.workloads.phases.PhasePlan` one level
further: maximal runs of consecutive phase entries become
:class:`VectorWindow` objects holding the plan in structure-of-arrays
form — parallel numpy arrays of op kind, block, run length, fused
latency and phase id — plus the per-phase aggregates and flattened
guard rows a controller's ``phase_quote_batch`` needs to evaluate a
whole sequence of lease-stable phases in one pass:

* the guard becomes one gather over the window's distinct lines and a
  single vectorised lease compare against precomputed conservative
  horizon offsets (a longer bound is sound — it can only produce extra
  declines, never an unsound accept, and the fallback ladder makes any
  accept/decline pattern bit-identical);
* the counter ledger becomes one bulk apply: exact (non-``_pj``)
  amounts collapse to ``amount * occurrences`` over the whole window,
  and each energy counter folds its program-ordered per-op amounts
  array with ``numpy.add.accumulate`` — a *serial* left fold, so the
  float rounding sequence is bit-identical to the per-phase sequence
  flushers it replaces (``tests/test_vector.py`` pins this);
* the cycle timeline becomes one array reduction when every accepted
  phase is in the stall-free closed-form regime (see
  :meth:`repro.accel.core.AxcCore._run_window`).

numpy is an *optional* dependency: this module imports it behind a
guard and every consumer checks :data:`HAVE_NUMPY` first, falling back
to the per-phase rung (``repro.accel.core`` warns once) on a
numpy-less install.

Vector plans are memoised on the trace object (``_vector_plans``, same
pattern as ``_phase_plans``) so they ride the engine's prepared-workload
pickles and are evicted by
:func:`repro.workloads.lowering.invalidate_lowered`.
"""

try:
    import numpy as np
except ImportError:                 # pragma: no cover - numpy-less install
    np = None

from .phases import phase_plan

#: True when numpy imported; every entry point below requires it.
HAVE_NUMPY = np is not None

#: Attribute used to memoise compiled vector plans on a trace object.
_VECTOR_ATTR = "_vector_plans"

#: ``step_kind`` codes of the SoA step stream.
KIND_LOAD = 0
KIND_STORE = 1
KIND_COMPUTE = 2

#: A window needs at least this many consecutive phase entries — a
#: single phase gains nothing over the per-phase quote it replaces.
MIN_WINDOW_PHASES = 2


def accumulate(start, amounts):
    """Serially fold ``amounts`` onto ``start``; returns a Python float.

    ``numpy.add.accumulate`` computes ``out[i] = out[i-1] + in[i]`` —
    a strict left fold, *not* the pairwise tree ``numpy.sum`` uses — so
    the result is bit-identical to ``for a in amounts: start += a``.
    This is what lets the window ledger replace the per-phase energy
    replay loops without perturbing ``*_pj`` float rounding.
    """
    buf = np.empty(len(amounts) + 1, dtype=np.float64)
    buf[0] = start
    buf[1:] = amounts
    return float(np.add.accumulate(buf)[-1])


class VectorWindow:
    """One maximal run of consecutive plan phases, in SoA form."""

    __slots__ = (
        "phases", "start", "span",
        # The ISSUE-level SoA step stream: parallel arrays over every
        # lowered step the window covers (mem runs and fused compute).
        "step_kind", "step_block", "step_count", "step_latency",
        "step_phase",
        # Per-phase aggregates (Python tuples: values flow into the
        # core's clock arithmetic, which must stay native int/float).
        "mem_ops", "compute", "num_loads", "num_stores",
        # Prefix sums, length span + 1 (index by accepted-phase count).
        "cum_mem_ops", "cum_compute", "cum_loads", "cum_stores",
        "total_loads", "total_stores",
        # Flattened guard rows: one per (phase, distinct line), in
        # phase order then first-touch order — ``rows[i] = (block,
        # needs_store)`` with parallel numpy ``row_phase`` /
        # ``row_last_pos`` arrays and ``row_start[j]`` slicing phase
        # ``j``'s rows.
        "rows", "row_blocks", "row_last_pos_list", "row_start",
        "row_phase_ids", "row_phase", "row_last_pos",
        # Cross-run memo for registry-independent compiled artifacts
        # (guard bound arrays, ledger programs) — see :meth:`cached`.
        "_cache",
    )

    def __init__(self, start, segment):
        phases = tuple(phase for phase, _ in segment)
        self.phases = phases
        self.start = start
        self.span = len(phases)
        s_kind, s_block, s_count, s_lat, s_phase = [], [], [], [], []
        for pid, (phase, _steps) in enumerate(segment):
            for op, arg, count in phase.steps:
                if op is None:
                    s_kind.append(KIND_COMPUTE)
                    s_block.append(-1)
                    s_count.append(count)
                    s_lat.append(arg)
                else:
                    s_kind.append(KIND_STORE if op.is_store
                                  else KIND_LOAD)
                    s_block.append(arg)
                    s_count.append(count)
                    s_lat.append(0)
                s_phase.append(pid)
        self.step_kind = np.array(s_kind, dtype=np.int8)
        self.step_block = np.array(s_block, dtype=np.int64)
        self.step_count = np.array(s_count, dtype=np.int64)
        self.step_latency = np.array(s_lat, dtype=np.int64)
        self.step_phase = np.array(s_phase, dtype=np.int32)
        self.mem_ops = tuple(p.mem_ops for p in phases)
        self.compute = tuple(p.compute_cycles for p in phases)
        self.num_loads = tuple(p.num_loads for p in phases)
        self.num_stores = tuple(p.num_stores for p in phases)
        self.cum_mem_ops = _prefix(self.mem_ops)
        self.cum_compute = _prefix(self.compute)
        self.cum_loads = _prefix(self.num_loads)
        self.cum_stores = _prefix(self.num_stores)
        self.total_loads = self.cum_loads[-1]
        self.total_stores = self.cum_stores[-1]
        rows = []
        row_phase, row_last_pos, row_start = [], [], [0]
        for pid, phase in enumerate(phases):
            for block, loads, stores, first_is_store, last_pos, \
                    first_mem, first_comp in phase.block_info:
                rows.append((block, stores > 0))
                row_phase.append(pid)
                row_last_pos.append(last_pos)
            row_start.append(len(rows))
        self.rows = tuple(rows)
        self.row_blocks = tuple(block for block, _ in rows)
        self.row_last_pos_list = tuple(row_last_pos)
        self.row_start = tuple(row_start)
        self.row_phase_ids = tuple(row_phase)
        self.row_phase = np.array(row_phase, dtype=np.int32)
        self.row_last_pos = np.array(row_last_pos, dtype=np.int64)
        self._cache = {}

    def cached(self, key, builder):
        """Memoise a registry-independent compiled artifact here.

        Controllers bind their registry handles (flushers, scratch
        buffers) per instance, but the *expensive* pure compilation —
        guard bound arrays, whole-window ledger programs — depends only
        on config-derived scalars, so it lives on the window, shared
        across every controller instance and simulation run touching
        this trace (the same long-lived placement as
        ``Phase._timelines``).  Without this, each system construction
        recompiled every window it quoted, which cost more than the
        batched evaluation saved on real Figure-6 workloads.
        """
        value = self._cache.get(key)
        if value is None:
            value = self._cache[key] = builder()
        return value

    def __getstate__(self):
        # The memo holds fold closures over numpy arrays — not
        # picklable, and cheap to rebuild — so it never rides the
        # prepared-workload pickles.
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_cache"}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self._cache = {}

    def op_kinds(self):
        """Per-mem-op kind codes in program order (an ``np.repeat``
        expansion of the SoA step stream; used by the window ledger)."""
        mem = self.step_kind != KIND_COMPUTE
        return np.repeat(self.step_kind[mem],
                         self.step_count[mem]).astype(np.uint8)

    def prefix_cycles(self, accepted, interval):
        """Stall-free closed-form cycles of the accepted prefix."""
        return self.cum_mem_ops[accepted] * interval \
            + self.cum_compute[accepted]

    def __repr__(self):
        return "VectorWindow(entry {}, {} phases, {} mem ops)".format(
            self.start, self.span, self.cum_mem_ops[-1])


def _prefix(values):
    out = [0]
    total = 0
    for value in values:
        total += value
        out.append(total)
    return tuple(out)


class VectorPlan:
    """A phase plan's windows, indexed by plan-entry position."""

    __slots__ = ("windows", "window_at", "num_phases")

    def __init__(self, windows):
        self.windows = windows
        #: plan-entry index of a window's first phase -> window.
        self.window_at = {window.start: window for window in windows}
        self.num_phases = sum(window.span for window in windows)

    def __repr__(self):
        return "VectorPlan({} windows, {} phases)".format(
            len(self.windows), self.num_phases)


def build_window(segment, start=0):
    """Compile one window from ``(phase, steps)`` rows (checker entry
    point; the plan compiler uses it for every maximal phase run)."""
    return VectorWindow(start, tuple(segment))


def compile_vector_plan(plan):
    """Windows over a :class:`~repro.workloads.phases.PhasePlan`:
    every maximal run of >= :data:`MIN_WINDOW_PHASES` consecutive
    phase entries."""
    windows = []
    segment = []
    seg_start = 0
    for index, entry in enumerate(plan.entries):
        if entry[0] is not None:
            if not segment:
                seg_start = index
            segment.append(entry)
            continue
        if len(segment) >= MIN_WINDOW_PHASES:
            windows.append(VectorWindow(seg_start, tuple(segment)))
        del segment[:]
    if len(segment) >= MIN_WINDOW_PHASES:
        windows.append(VectorWindow(seg_start, tuple(segment)))
    return VectorPlan(tuple(windows))


def vector_plan(trace, issue_width, leased=True):
    """Return the memoised :class:`VectorPlan` of ``trace``.

    Mirrors :func:`repro.workloads.phases.phase_plan`: one variant per
    ``(issue_width, leased)`` key, cached in the trace's ``__dict__``
    so compiled windows ride the engine's prepared-workload pickles.
    Returns ``None`` on a numpy-less install.
    """
    if np is None:
        return None
    cache = trace.__dict__.get(_VECTOR_ATTR)
    if cache is None:
        cache = trace.__dict__[_VECTOR_ATTR] = {}
    key = (issue_width, leased)
    plan = cache.get(key)
    if plan is None:
        source = phase_plan(trace, issue_width, leased)
        # Leased and unleased variants share one PhasePlan when the
        # trace has no lease time; share the vector plan the same way
        # (the source plans are pinned by the trace's phase-plan memo,
        # so identity keys are stable).
        by_source = cache.setdefault("_by_plan", {})
        plan = by_source.get(id(source))
        if plan is None:
            plan = by_source[id(source)] = compile_vector_plan(source)
        cache[key] = plan
    return plan


def compile_window_ledger(load_pairs, store_pairs, window):
    """Compile a window's whole-span bulk ledger program.

    The window analogue of
    :func:`repro.common.stats.compile_phase_ledger`: exact (non-``_pj``)
    amounts collapse to ``amount * occurrences`` over the *whole*
    window, and each energy name gets a fold closure over its
    program-ordered per-op amounts array (:func:`accumulate` keeps the
    serial rounding order).  The result binds to a registry via
    :meth:`repro.common.stats.StatsRegistry.window_flusher` and is
    bit-identical to flushing every phase's sequence ledger in order —
    callers may only use it for a *full-window* accept with no active
    ``PjTrace`` (partial prefixes and recordings fall back to the
    per-phase ledgers).
    """
    collapsed = {}
    pj = {}
    order = []
    sides = []
    if window.total_loads:
        sides.append((load_pairs, 0, window.total_loads))
    if window.total_stores:
        sides.append((store_pairs, 1, window.total_stores))
    for pairs, side, occurrences in sides:
        for name, amount in pairs:
            if name.endswith("_pj"):
                record = pj.get(name)
                if record is None:
                    pj[name] = record = [[], []]
                    order.append(name)
                record[side].append(amount)
            else:
                collapsed[name] = collapsed.get(name,
                                                0) + amount * occurrences
    pj_folds = []
    if order:
        kinds = window.op_kinds()
        for name in order:
            load_amounts, store_amounts = pj[name]
            arr = _amounts_array(kinds, load_amounts, store_amounts)
            pj_folds.append((name, _make_fold(arr)))
    return tuple(collapsed.items()), tuple(pj_folds)


def _amounts_array(kinds, load_amounts, store_amounts):
    """The program-ordered per-op amounts of one energy counter."""
    n_load, n_store = len(load_amounts), len(store_amounts)
    if n_load <= 1 and n_store <= 1:
        if n_load and n_store:
            return np.where(kinds == KIND_STORE, store_amounts[0],
                            load_amounts[0]).astype(np.float64)
        if n_load:
            count = int(np.count_nonzero(kinds != KIND_STORE))
            return np.full(count, load_amounts[0], dtype=np.float64)
        count = int(np.count_nonzero(kinds == KIND_STORE))
        return np.full(count, store_amounts[0], dtype=np.float64)
    out = []
    for kind in kinds:
        out.extend(store_amounts if kind == KIND_STORE else load_amounts)
    return np.array(out, dtype=np.float64)


def _make_fold(arr):
    def fold(start, _arr=arr):
        return accumulate(start, _arr)
    return fold


def compiled_vector_count(trace):
    """Number of compiled vector plan variants memoised on ``trace``."""
    cache = trace.__dict__.get(_VECTOR_ATTR)
    if not cache:
        return 0
    return sum(1 for key in cache if isinstance(key, tuple))


def vector_summary(trace):
    """Return ``(plan_entries, windows)`` memoised on ``trace``.

    Mirrors :func:`repro.workloads.phases.plan_summary`: plan variants
    share compiled objects when a trace has no lease time, so shared
    plans tally once.
    """
    cache = trace.__dict__.get(_VECTOR_ATTR)
    if not cache:
        return 0, 0
    entries = 0
    windows = 0
    seen = set()
    for key, plan in cache.items():
        if not isinstance(key, tuple):
            continue
        entries += 1
        if id(plan) not in seen:
            seen.add(id(plan))
            windows += len(plan.windows)
    return entries, windows
