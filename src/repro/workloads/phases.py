"""Steady-state phase compiler: the layer between lowering and the core.

The Fig-6 kernels spend almost all of their accelerator time in *steady
state*: the same small set of lines is hit over and over under live
leases, with no expiry, no upgrade, no conflict miss and no sharer
activity.  The run-coalescing fast path (``docs/simulator.md`` §9)
already collapses each same-line run into one protocol step, but it
still pays one Python-level protocol call per run plus a per-op heap
replay in :class:`repro.accel.core.AxcCore`.

This module compiles a :class:`~repro.workloads.lowering.LoweredTrace`
one level further, into a :class:`PhasePlan`: the run stream is
partitioned into *phases* — maximal windows of steps that are
steady-state **candidates** (every line was already touched earlier in
the trace, every store goes to a line already in write state, no
subclassed op types) — plus fallback gaps covering everything else
(first touches, upgrades, odd op types).  A phase carries closed-form
per-phase aggregates:

* ``event_seq`` — the program-ordered ``(is_store, count)`` event runs,
  from which a controller builds one bulk *sequence flusher*
  (:meth:`repro.common.stats.StatsRegistry.sequence_flusher`) charging
  the phase's whole counter/energy delta bit-identically to the per-op
  path;
* ``block_info`` — per distinct line: load/store counts, the kind of
  its first access, and the ordinal of its *last* access, from which a
  controller validates the guard and applies the exact LRU advance
  (:meth:`repro.mem.cache.SetAssocCache.touch_phase`);
* cached :class:`PhaseTimeline` objects — the core's issue timeline
  (cycle advance, MLP stalls, MSHR merges, exit-heap residue) for a
  given ``(load latency, store latency, mlp, issue interval)``,
  computed once per quoted latency signature and then applied in O(1).

Whether a phase actually *is* steady state is decided at run time by the
controller's ``phase_quote`` hook — residency, live leases covering the
phase's whole span, write states, write-through copies — so the compiler
stays protocol-agnostic, and a declined quote only costs speed: the core
falls back to the per-run coalesced path, and below that the per-op
path, for exactly that window (the fallback ladder, §10 of the docs).

Plans are memoised on the trace object (keyed by issue width, like
lowered forms) and therefore ride along when the execution engine
pickles prepared workloads; :func:`repro.workloads.lowering.
invalidate_lowered` evicts them together with the lowered stream.
"""

import heapq

from ..common.types import MemOp
from .lowering import lowered_trace

#: Attribute used to memoise compiled plans on a trace object.
_PLAN_ATTR = "_phase_plans"

#: A *leased* phase never spans more memory ops than this: the longer
#: the window, the harder ACC's lease-cover guard is to satisfy, so
#: past this point extra length only costs declines.
MAX_PHASE_MEM_OPS = 128

#: An *unleased* phase (SHARED / SCRATCH / IDEAL — no lease to expire)
#: can be much longer: the only risk is that a single evicted line
#: declines the whole window, so this caps the blast radius of one
#: fallback rather than any guard's acceptance.
MAX_UNLEASED_PHASE_MEM_OPS = 1024

#: Candidate windows with fewer memory ops than this stay on the
#: coalesced-run path: a quote costs a guard scan plus a ledger flush,
#: which only pays for itself across several runs.
MIN_PHASE_MEM_OPS = 4


class PhaseTimeline:
    """The core-side issue timeline of one phase, relative to its entry.

    Computed by replaying the phase's steps against the *relative* entry
    state the core observed — the outstanding-fill completions and the
    phase lines' pending fills, each expressed as an offset from the
    entry clock (see :meth:`Phase.timeline`).  Because every simulator
    time is a dyadic rational (integer latencies, issue intervals of 1
    or 1.5), relative replay plus an absolute rebase is bit-identical to
    replaying in absolute time, so one cached timeline serves every
    phase entry that presents the same relative state.

    ``cycles`` is the issue-clock advance (the per-op path bumps ``now``
    to the last completion only at invocation end, never mid-trace, so
    the timeline must not either).  ``exit_heap`` and ``fill_residue``
    carry only completions strictly beyond the exit clock: entries at or
    below it would be drained before their values could ever matter.
    """

    __slots__ = ("cycles", "mlp_stall", "mshr_merges", "exit_heap",
                 "fill_residue")

    def __init__(self, cycles, mlp_stall, mshr_merges, exit_heap,
                 fill_residue):
        self.cycles = cycles
        self.mlp_stall = mlp_stall
        self.mshr_merges = mshr_merges
        self.exit_heap = exit_heap
        self.fill_residue = fill_residue

    def __repr__(self):
        return ("PhaseTimeline(cycles={}, stall={}, merges={}, "
                "residue={})".format(self.cycles, self.mlp_stall,
                                     self.mshr_merges,
                                     len(self.fill_residue)))


#: A phase's timeline cache never outgrows this; pathological entry
#: states (never-repeating relative heaps) fall back to uncached replay
#: instead of accumulating unbounded memory.
MAX_TIMELINE_CACHE = 256


class Phase:
    """One steady-state candidate window of a lowered trace."""

    __slots__ = ("steps", "mem_ops", "compute_cycles", "num_loads",
                 "num_stores", "event_seq", "block_info", "_timelines")

    def __init__(self, steps, mem_ops, compute_cycles, num_loads,
                 num_stores, event_seq, block_info):
        #: The lowered steps this phase covers (the fallback ladder
        #: re-interprets exactly these on a declined quote).
        self.steps = steps
        self.mem_ops = mem_ops
        self.compute_cycles = compute_cycles
        self.num_loads = num_loads
        self.num_stores = num_stores
        #: Program-ordered ``(is_store, count)`` event runs — the input
        #: to a controller's per-phase sequence flusher.
        self.event_seq = event_seq
        #: Per distinct line, in first-touch order:
        #: ``(block, loads, stores, first_is_store, last_pos,
        #: first_mem, first_comp)`` where ``last_pos`` is the 1-based
        #: ordinal of the line's last access among the phase's
        #: ``mem_ops`` and ``first_mem`` / ``first_comp`` count the
        #: memory ops and fused compute cycles *preceding* its first
        #: access — ``first_mem * interval + first_comp`` is the exact
        #: stall-free issue offset of that access, which is what lets
        #: the timeline's transparency test bound a pending entry fill
        #: against the first completion that could merge with it.
        self.block_info = block_info
        #: ``(load_lat, store_lat, mlp, interval, rel_heap, rel_fills)
        #: -> PhaseTimeline``.
        self._timelines = {}

    def timeline(self, load_lat, store_lat, mlp, interval, rel_heap=(),
                 rel_fills=()):
        """Return the cached issue timeline for one entry signature.

        ``rel_heap`` is the core's outstanding-completion heap at phase
        entry and ``rel_fills`` the pending fills of this phase's lines,
        both as sorted offsets from the entry clock (only values > 0 can
        affect the replay; the caller prunes the rest).  The replay
        materialises that state, so the cached result is exact for
        *every* entry presenting the same relative signature — in steady
        state, each phase sees one or two signatures per configuration.
        """
        key = (load_lat, store_lat, mlp, interval, rel_heap, rel_fills)
        cached = self._timelines.get(key)
        if cached is None:
            min_lat = load_lat if self.num_loads else store_lat
            if self.num_loads and self.num_stores and store_lat < min_lat:
                min_lat = store_lat
            # A pending entry fill can only merge with the *first*
            # completion of its own line — later completions are even
            # larger — and in every stall-free regime that completion
            # lands exactly at ``first_mem * interval + first_comp``
            # plus the op's latency (at least ``min_lat``).  A fill at
            # or below that instant can therefore never merge: it is
            # timing-transparent and simply gets overwritten by the
            # phase's own completions, which the residue walk tracks.
            fills_transparent = all(
                offset <= first_mem * interval + first_comp + min_lat
                for _, offset, first_mem, first_comp in rel_fills)
            if (fills_transparent and len(rel_heap) < mlp
                    and (not self.num_loads or load_lat <= interval)
                    and (not self.num_stores or store_lat <= interval)):
                # Closed form: with every per-op latency at most the
                # issue interval, each phase completion retires before
                # the next issue, so the heap never holds more than the
                # (shrinking) entry residue plus one live fill — below
                # the MLP limit throughout (the entry residue starts
                # below it), hence no stalls; a block's pending fill is
                # always its previous completion, already in the past,
                # hence no merges; and every phase completion is at or
                # below the exit clock, so only entry-heap stragglers
                # can survive it.
                cycles = self.mem_ops * interval + self.compute_cycles
                cached = PhaseTimeline(
                    cycles, 0, 0,
                    tuple(entry for entry in rel_heap
                          if entry > cycles), ())
            elif fills_transparent and interval > 0:
                # Transparent fills are bounded by their line's first
                # completion, which the phase then overwrites — and the
                # residue walk reports exactly the lines whose *last*
                # completion outlives the exit clock, so the stale
                # entry values the closed form leaves behind match the
                # replay's prune bit for bit.
                cached = self._uniform_closed_form(
                    load_lat, store_lat, mlp, interval, rel_heap)
            if cached is None:
                outstanding = list(rel_heap)
                fill_time_of = {block: offset
                                for block, offset, _, _ in rel_fills}
                exit_now, stall, merges = replay_steps(
                    self.steps, load_lat, store_lat, 0, outstanding,
                    fill_time_of, mlp, interval)
                exit_heap = tuple(sorted(
                    completion for completion in outstanding
                    if completion > exit_now))
                residue = tuple(
                    (block, completion)
                    for block, completion in fill_time_of.items()
                    if completion > exit_now)
                cached = PhaseTimeline(exit_now, stall, merges,
                                       exit_heap, residue)
            if len(self._timelines) < MAX_TIMELINE_CACHE:
                self._timelines[key] = cached
        return cached

    def _uniform_closed_form(self, load_lat, store_lat, mlp, interval,
                             rel_heap):
        """Closed form for a uniform per-op latency above the interval.

        The SHARED L1X regime (and write-through store-only phases):
        every op costs the same latency ``lat > interval``.  Issue times
        then rise by at least ``interval`` per op, so completions are
        strictly monotone — a line's pending fill is always below the
        next completion, hence no MSHR merges.  At most ``K`` phase
        completions are live at any issue (``K`` = number of spacings
        strictly inside ``lat``), so if the entry residue still live at
        each op's earliest possible issue time plus that bound stays
        below the MLP limit, no stalls either: the clock advances by
        exactly ``interval`` per op plus the compute.  Only the last few
        completions outlive the exit clock; a backward walk over the
        tail reconstructs the exit heap and fill residue exactly.
        Returns ``None`` when mixed latencies or the stall guard demand
        the exact replay.
        """
        lat = load_lat if self.num_loads else store_lat
        if self.num_loads and self.num_stores and store_lat != load_lat:
            return None
        live_spacings = 0
        while (live_spacings + 1) * interval < lat:
            live_spacings += 1
        for j in range(len(rel_heap) + live_spacings + 2):
            earliest_issue = j * interval
            occupancy = min(j, live_spacings)
            for entry in rel_heap:
                if entry > earliest_issue:
                    occupancy += 1
            if occupancy >= mlp:
                return None
        cycles = self.mem_ops * interval + self.compute_cycles
        tail = [entry for entry in rel_heap if entry > cycles]
        residue = []
        seen = set()
        after = 0
        for op, arg, count in reversed(self.steps):
            if op is None:
                after += arg
                if after + interval >= lat:
                    break
                continue
            room = lat - after
            if room <= interval:
                break
            if arg not in seen:
                seen.add(arg)
                residue.append((arg, cycles + room - interval))
            m = 1
            while m <= count and m * interval < room:
                tail.append(cycles + room - m * interval)
                m += 1
            after += count * interval
            if after + interval >= lat:
                break
        return PhaseTimeline(cycles, 0, 0, tuple(sorted(tail)),
                             tuple(residue))

    def __repr__(self):
        return "Phase({} steps, {} mem ops, {} blocks)".format(
            len(self.steps), self.mem_ops, len(self.block_info))


class PhasePlan:
    """A lowered trace partitioned into phases and fallback gaps."""

    __slots__ = ("entries", "num_phases", "phase_ops")

    def __init__(self, entries, num_phases, phase_ops):
        #: ``(Phase | None, steps)`` in program order: a phase to quote,
        #: or a fallback gap the core interprets step by step.
        self.entries = entries
        self.num_phases = num_phases
        #: Memory ops inside phases (coverage; the rest is fallback).
        self.phase_ops = phase_ops

    def __repr__(self):
        return "PhasePlan({} entries, {} phases, {} phase ops)".format(
            len(self.entries), self.num_phases, self.phase_ops)


def replay_steps(steps, load_lat, store_lat, now, outstanding,
                 fill_time_of, mlp, interval):
    """Replay ``steps`` against the core's live timeline state.

    The exact per-op issue loop of ``AxcCore.run`` — drains, MLP pops,
    MSHR merges — with the protocol call replaced by the two constant
    latencies a quote established.  Mutates ``outstanding`` and
    ``fill_time_of`` in place; returns ``(now, mlp_stall, merges)``.
    Used both to precompute a :class:`PhaseTimeline` (fresh state) and
    as the exact fallback apply when fills are still outstanding at
    phase entry (live state).
    """
    heappush = heapq.heappush
    heappop = heapq.heappop
    pending_fill = fill_time_of.get
    stall = 0
    merges = 0
    for op, arg, count in steps:
        if op is None:
            now += arg
            continue
        latency = store_lat if op.is_store else load_lat
        for _ in range(count):
            while outstanding and outstanding[0] <= now:
                heappop(outstanding)
            if len(outstanding) >= mlp:
                earliest = heappop(outstanding)
                if earliest > now:
                    stall += earliest - now
                    now = earliest
            completion = now + latency
            pending = pending_fill(arg)
            if pending is not None and pending > completion:
                completion = pending
                merges += 1
            fill_time_of[arg] = completion
            heappush(outstanding, completion)
            now += interval
    return now, stall, merges


def build_phase(steps):
    """Aggregate a window of phase-eligible steps into a :class:`Phase`."""
    mem_ops = 0
    compute_cycles = 0
    num_loads = 0
    num_stores = 0
    event_seq = []
    info = {}
    order = []
    for op, arg, count in steps:
        if op is None:
            compute_cycles += arg
            continue
        is_store = op.is_store
        if is_store:
            num_stores += count
        else:
            num_loads += count
        if event_seq and event_seq[-1][0] == is_store:
            event_seq[-1][1] += count
        else:
            event_seq.append([is_store, count])
        record = info.get(arg)
        if record is None:
            info[arg] = record = [0, 0, is_store, 0, mem_ops,
                                  compute_cycles]
            order.append(arg)
        record[1 if is_store else 0] += count
        mem_ops += count
        record[3] = mem_ops
    block_info = tuple(
        (block, info[block][0], info[block][1], info[block][2],
         info[block][3], info[block][4], info[block][5])
        for block in order)
    return Phase(tuple(steps), mem_ops, compute_cycles, num_loads,
                 num_stores,
                 tuple((is_store, count) for is_store, count in event_seq),
                 block_info)


def single_run_phase(op, count):
    """A one-run phase (used by the model checker's litmus harness)."""
    return build_phase([(op, op.block, count)])


def compile_plan(lowered, lease_time=None):
    """Partition a lowered step stream into a :class:`PhasePlan`.

    Compile-time eligibility is *structural* (what can be proven from
    the trace alone); the run-time guard in each controller's
    ``phase_quote`` proves the rest:

    * a line's **first** touch in the trace is a fallback step — on a
      cold cache it must miss, and its run-tail still coalesces through
      ``access_run``;
    * the first **store** to a line so far only loaded is a fallback
      step — it must upgrade (acquire a write epoch) under ACC;
    * subclassed op types always take the per-op path (unknown
      side effects), exactly as lowering never coalesces them;
    * phases are capped at :data:`MAX_UNLEASED_PHASE_MEM_OPS` ops, and
      — when ``lease_time`` is given — at :data:`MAX_PHASE_MEM_OPS`
      plus an estimated span of an eighth of the lease: the shorter
      the window, the larger the fraction of a line's lease period
      during which ACC's cover guard can say yes (:func:`phase_plan`
      derives that variant from the structural one via
      :func:`_slice_leased` instead of re-scanning);
    * candidate windows shorter than :data:`MIN_PHASE_MEM_OPS` mem ops
      are folded back into the surrounding fallback gap.
    """
    span_cap = None
    max_ops = MAX_UNLEASED_PHASE_MEM_OPS
    if lease_time:
        span_cap = max(MIN_PHASE_MEM_OPS * 4, lease_time // 8)
        max_ops = MAX_PHASE_MEM_OPS
    entries = []
    num_phases = 0
    phase_ops = 0
    fallback = []
    # Open-window accumulators: the same aggregates ``build_phase``
    # derives, filled in the one pass that decides eligibility so a
    # closing window constructs its Phase without re-walking its steps.
    current = []
    current_span = 0
    cur_mem_ops = 0
    cur_compute = 0
    cur_loads = 0
    cur_stores = 0
    cur_events = []
    cur_info = {}
    cur_order = []
    touched = set()
    written = set()

    def close_current():
        nonlocal current, current_span, cur_mem_ops, cur_compute, \
            cur_loads, cur_stores, cur_events, cur_info, cur_order, \
            num_phases, phase_ops
        if cur_mem_ops >= MIN_PHASE_MEM_OPS:
            if fallback:
                entries.append((None, tuple(fallback)))
                del fallback[:]
            phase = Phase(
                tuple(current), cur_mem_ops, cur_compute, cur_loads,
                cur_stores,
                tuple((is_store, count)
                      for is_store, count in cur_events),
                tuple((block, record[0], record[1], record[2],
                       record[3], record[4], record[5])
                      for block, record in
                      ((block, cur_info[block]) for block in cur_order)))
            entries.append((phase, phase.steps))
            num_phases += 1
            phase_ops += cur_mem_ops
        elif current:
            fallback.extend(current)
        current = []
        current_span = 0
        cur_mem_ops = 0
        cur_compute = 0
        cur_loads = 0
        cur_stores = 0
        cur_events = []
        cur_info = {}
        cur_order = []

    for step in lowered.steps:
        op, arg, count = step
        if op is None:
            # Fused compute: always eligible; only its span can close
            # the window.
            if cur_mem_ops and span_cap is not None \
                    and current_span + arg > span_cap:
                close_current()
            current.append(step)
            cur_compute += arg
            current_span += arg
            continue
        if type(op) is MemOp:
            block = arg
            is_store = op.is_store
            if block not in touched:
                touched.add(block)
                if is_store:
                    written.add(block)
                eligible = False
            elif is_store and block not in written:
                written.add(block)
                eligible = False
            else:
                eligible = True
        else:
            touched.add(arg)
            if op.is_store:
                written.add(arg)
            eligible = False
        if not eligible:
            close_current()
            fallback.append(step)
            continue
        span = 2 * count
        if cur_mem_ops and (
                cur_mem_ops + count > max_ops
                or (span_cap is not None
                    and current_span + span > span_cap)):
            close_current()
        current.append(step)
        cur_mem_ops += count
        current_span += span
        if is_store:
            cur_stores += count
        else:
            cur_loads += count
        if cur_events and cur_events[-1][0] == is_store:
            cur_events[-1][1] += count
        else:
            cur_events.append([is_store, count])
        record = cur_info.get(block)
        if record is None:
            cur_info[block] = record = [0, 0, is_store, 0,
                                        cur_mem_ops - count, cur_compute]
            cur_order.append(block)
        record[1 if is_store else 0] += count
        record[3] = cur_mem_ops
    close_current()
    if fallback:
        entries.append((None, tuple(fallback)))
    return PhasePlan(tuple(entries), num_phases, phase_ops)


def _slice_leased(base, lease_time):
    """Derive the lease-capped plan variant from the structural one.

    Eligibility is cap-independent, so the unleased plan's fallback
    gaps transfer verbatim and each unleased phase — whose steps are
    all proven eligible — is merely re-cut under the lease span cap.
    Phases already inside both caps are shared between the variants
    outright (no re-aggregation, no duplicate timeline caches).
    """
    span_cap = max(MIN_PHASE_MEM_OPS * 4, lease_time // 8)
    entries = []
    num_phases = 0
    phase_ops = 0
    fallback = []
    current = []
    current_span = 0
    cur_mem_ops = 0
    cur_compute = 0
    cur_loads = 0
    cur_stores = 0
    cur_events = []
    cur_info = {}
    cur_order = []

    def close_current():
        nonlocal current, current_span, cur_mem_ops, cur_compute, \
            cur_loads, cur_stores, cur_events, cur_info, cur_order, \
            num_phases, phase_ops
        if cur_mem_ops >= MIN_PHASE_MEM_OPS:
            if fallback:
                entries.append((None, tuple(fallback)))
                del fallback[:]
            phase = Phase(
                tuple(current), cur_mem_ops, cur_compute, cur_loads,
                cur_stores,
                tuple((is_store, count)
                      for is_store, count in cur_events),
                tuple((block, record[0], record[1], record[2],
                       record[3], record[4], record[5])
                      for block, record in
                      ((block, cur_info[block]) for block in cur_order)))
            entries.append((phase, phase.steps))
            num_phases += 1
            phase_ops += cur_mem_ops
        elif current:
            fallback.extend(current)
        current = []
        current_span = 0
        cur_mem_ops = 0
        cur_compute = 0
        cur_loads = 0
        cur_stores = 0
        cur_events = []
        cur_info = {}
        cur_order = []

    for phase, steps in base.entries:
        if phase is None:
            fallback.extend(steps)
            continue
        if phase.mem_ops <= MAX_PHASE_MEM_OPS and \
                2 * phase.mem_ops + phase.compute_cycles <= span_cap:
            if fallback:
                entries.append((None, tuple(fallback)))
                del fallback[:]
            entries.append((phase, steps))
            num_phases += 1
            phase_ops += phase.mem_ops
            continue
        for step in steps:
            op, arg, count = step
            if op is None:
                if cur_mem_ops and current_span + arg > span_cap:
                    close_current()
                current.append(step)
                cur_compute += arg
                current_span += arg
                continue
            is_store = op.is_store
            span = 2 * count
            if cur_mem_ops and (
                    cur_mem_ops + count > MAX_PHASE_MEM_OPS
                    or current_span + span > span_cap):
                close_current()
            current.append(step)
            cur_mem_ops += count
            current_span += span
            if is_store:
                cur_stores += count
            else:
                cur_loads += count
            if cur_events and cur_events[-1][0] == is_store:
                cur_events[-1][1] += count
            else:
                cur_events.append([is_store, count])
            record = cur_info.get(arg)
            if record is None:
                cur_info[arg] = record = [0, 0, is_store, 0,
                                          cur_mem_ops - count,
                                          cur_compute]
                cur_order.append(arg)
            record[1 if is_store else 0] += count
            record[3] = cur_mem_ops
        close_current()
    close_current()
    if fallback:
        entries.append((None, tuple(fallback)))
    return PhasePlan(tuple(entries), num_phases, phase_ops)


def phase_plan(trace, issue_width, leased=True):
    """Return the memoised :class:`PhasePlan` of ``trace``.

    Two variants exist per issue width: ``leased`` plans honour the
    trace's lease span cap (ACC's cover guard needs short windows),
    unleased plans use the large structural cap only (SHARED / SCRATCH /
    IDEAL controllers have nothing that expires, so longer windows just
    amortise the per-phase machinery further).  The structural plan is
    compiled from the lowered stream; the leased variant is sliced out
    of it.  Plans are cached in the trace's ``__dict__`` keyed by
    ``(issue_width, leased)`` — the same memo pattern as lowered forms,
    so compiled phases ride the engine's prepared-workload pickles and
    are evicted together by
    :func:`repro.workloads.lowering.invalidate_lowered`.
    """
    cache = trace.__dict__.get(_PLAN_ATTR)
    if cache is None:
        cache = trace.__dict__[_PLAN_ATTR] = {}
    key = (issue_width, leased)
    plan = cache.get(key)
    if plan is None:
        base = cache.get((issue_width, False))
        if base is None:
            base = compile_plan(lowered_trace(trace, issue_width))
            cache[(issue_width, False)] = base
        if leased:
            lease_time = getattr(trace, "lease_time", None)
            plan = _slice_leased(base, lease_time) if lease_time else base
            cache[key] = plan
        else:
            plan = base
    return plan


def compiled_plan_count(trace):
    """Number of compiled phase plans memoised on ``trace``."""
    cache = trace.__dict__.get(_PLAN_ATTR)
    return len(cache) if cache else 0


def plan_summary(trace):
    """Return ``(plan_entries, phases)`` memoised on ``trace``.

    ``plan_entries`` counts the cached plan variants (the memo keys);
    ``phases`` counts distinct compiled :class:`Phase` windows across
    them — variants share plan objects when a trace has no lease time,
    so shared plans are tallied once.
    """
    cache = trace.__dict__.get(_PLAN_ATTR)
    if not cache:
        return 0, 0
    phases = 0
    seen = set()
    for plan in cache.values():
        if id(plan) not in seen:
            seen.add(id(plan))
            phases += plan.num_phases
    return len(cache), phases
