"""Workloads: kernels, traces, characterisation and the benchmark registry."""

from .builder import AddressSpace, Array, TraceBuilder
from .characterize import (
    FunctionProfile,
    characterize,
    function_mlp,
    sharing_degree,
    working_set_kb,
)
from . import trace_io
from .dependence import invocation_dependences, parallelism_profile
from .forwarding import forwarding_plan, total_forwarded
from .registry import BENCHMARKS, LABELS, build_workload, \
    build_workload_with_outputs

__all__ = [
    "trace_io",
    "AddressSpace", "Array", "TraceBuilder",
    "FunctionProfile", "characterize", "function_mlp", "sharing_degree",
    "working_set_kb",
    "forwarding_plan", "total_forwarded",
    "invocation_dependences", "parallelism_profile",
    "BENCHMARKS", "LABELS", "build_workload", "build_workload_with_outputs",
]
