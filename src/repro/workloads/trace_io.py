"""Trace persistence: save and load workload traces as JSON-lines.

The paper's toolchain captures dynamic traces once (instrumented runs of
the C benchmarks) and replays them through many simulator configs.  This
module gives the reproduction the same workflow: kernels are slow-ish to
re-execute, so traces can be serialised to disk and replayed.

Format: one JSON object per line.

* line 1: workload header (benchmark, array ranges, host arrays);
* one ``{"fn": ...}`` header per invocation, followed by its ops in a
  compact array encoding:
  ``["L"|"S", addr, size, array]`` for memory ops,
  ``["C", int_ops, fp_ops]`` for compute chunks,
  ``["P", label]`` for phase markers.

The format is line-diffable, streams (no whole-file parse needed to
inspect), and round-trips exactly — property-tested.
"""

import json

from ..common.errors import TraceError
from ..common.types import (
    AccessType,
    ComputeOp,
    FunctionTrace,
    MemOp,
    PhaseMarker,
    WorkloadTrace,
)

FORMAT_VERSION = 1


def _encode_op(op):
    if isinstance(op, MemOp):
        tag = "S" if op.is_store else "L"
        return [tag, op.addr, op.size, op.array]
    if isinstance(op, ComputeOp):
        return ["C", op.int_ops, op.fp_ops]
    if isinstance(op, PhaseMarker):
        return ["P", op.label]
    raise TraceError("unknown op type {!r}".format(type(op).__name__))


def _decode_op(record):
    tag = record[0]
    if tag in ("L", "S"):
        kind = AccessType.STORE if tag == "S" else AccessType.LOAD
        return MemOp(kind, record[1], record[2], record[3])
    if tag == "C":
        return ComputeOp(int_ops=record[1], fp_ops=record[2])
    if tag == "P":
        return PhaseMarker(record[1])
    raise TraceError("unknown op tag {!r}".format(tag))


def dump(workload, fileobj):
    """Serialise ``workload`` to an open text file object."""
    header = {
        "version": FORMAT_VERSION,
        "benchmark": workload.benchmark,
        "host_inputs": [list(r) for r in workload.host_input_arrays],
        "host_outputs": [list(r) for r in workload.host_output_arrays],
        "arrays": {name: list(r)
                   for name, r in workload.array_ranges.items()},
    }
    fileobj.write(json.dumps(header) + "\n")
    for trace in workload.invocations:
        fileobj.write(json.dumps(
            {"fn": trace.name, "lease": trace.lease_time,
             "ops": len(trace.ops)}) + "\n")
        for op in trace.ops:
            fileobj.write(json.dumps(_encode_op(op)) + "\n")


def load(fileobj):
    """Deserialise a workload from an open text file object."""
    header_line = fileobj.readline()
    if not header_line:
        raise TraceError("empty trace file")
    header = json.loads(header_line)
    if header.get("version") != FORMAT_VERSION:
        raise TraceError("unsupported trace format version {!r}".format(
            header.get("version")))
    invocations = []
    for line in fileobj:
        record = json.loads(line)
        if isinstance(record, dict):
            invocations.append(FunctionTrace(
                name=record["fn"], benchmark=header["benchmark"],
                lease_time=record["lease"]))
        else:
            if not invocations:
                raise TraceError("op record before any function header")
            invocations[-1].ops.append(_decode_op(record))
    return WorkloadTrace(
        benchmark=header["benchmark"],
        invocations=invocations,
        host_input_arrays=[tuple(r) for r in header["host_inputs"]],
        host_output_arrays=[tuple(r) for r in header["host_outputs"]],
        array_ranges={name: tuple(r)
                      for name, r in header["arrays"].items()},
    )


def save_path(workload, path):
    """Serialise ``workload`` to ``path``."""
    with open(path, "w") as fileobj:
        dump(workload, fileobj)


def load_path(path):
    """Load a workload trace from ``path``."""
    with open(path) as fileobj:
        return load(fileobj)
