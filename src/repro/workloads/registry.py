"""Benchmark registry: one place that knows every workload and its sizes.

``build_workload(name, size)`` returns the (cached) trace for a
benchmark at one of three sizes:

* ``"full"``  — the evaluation size; working sets preserve the paper's
  relationships to the cache capacities (ADPCM/SUSAN/FILT < 30 kB,
  DISP fits a 256 kB L1X but not 64 kB, TRACK and HIST overflow both).
* ``"small"`` — quick runs (examples, smoke benches).
* ``"tiny"``  — unit tests.
"""

from functools import lru_cache

from ..common.errors import TraceError
from .builder import AddressSpace, TraceBuilder
from .kernels import adpcm, disparity, fft, filters, histogram, susan, \
    tracking

#: Display order used by every table and figure (matches the paper).
BENCHMARKS = ("fft", "disparity", "tracking", "adpcm", "susan", "filter",
              "histogram")

#: Short labels used in the paper's figures.
LABELS = {"fft": "FFT", "disparity": "DISP.", "tracking": "TRACK.",
          "adpcm": "ADPCM", "susan": "SUSAN", "filter": "FILT.",
          "histogram": "HIST."}

_SIZES = {
    "fft": {
        "full": {"n": 1024, "iterations": 4},
        "small": {"n": 256, "iterations": 2},
        "tiny": {"n": 64, "iterations": 1},
    },
    "disparity": {
        "full": {"width": 80, "height": 60, "shifts": 4},
        "small": {"width": 48, "height": 32, "shifts": 2},
        "tiny": {"width": 16, "height": 12, "shifts": 2},
    },
    "tracking": {
        "full": {"width": 176, "height": 132},
        "small": {"width": 64, "height": 48},
        "tiny": {"width": 24, "height": 16},
    },
    "adpcm": {
        "full": {"num_samples": 8192},
        "small": {"num_samples": 2048},
        "tiny": {"num_samples": 256},
    },
    "susan": {"full": {"dim": 56}, "small": {"dim": 32}, "tiny": {"dim": 16}},
    "filter": {"full": {"dim": 64}, "small": {"dim": 32}, "tiny": {"dim": 12}},
    "histogram": {
        "full": {"num_pixels": 32768},
        "small": {"num_pixels": 4096},
        "tiny": {"num_pixels": 512},
    },
}

_BUILDERS = {
    "fft": fft.build_workload,
    "disparity": disparity.build_workload,
    "tracking": tracking.build_workload,
    "adpcm": adpcm.build_workload,
    "susan": susan.build_workload,
    "filter": filters.build_workload,
    "histogram": histogram.build_workload,
}


def _factory(benchmark):
    """The ``builder_factory`` kernels expect: a fresh space + builder."""
    space = AddressSpace()
    return space, TraceBuilder(benchmark, space)


@lru_cache(maxsize=None)
def build_workload(name, size="full"):
    """Build (and cache) one benchmark's workload trace.

    Returns the :class:`repro.common.types.WorkloadTrace`.  The trace is
    deterministic for a given (name, size), so callers may share it —
    traces are read-only to the simulator.
    """
    workload, _ = build_workload_with_outputs(name, size)
    return workload


@lru_cache(maxsize=None)
def build_workload_with_outputs(name, size="full"):
    """Build one benchmark, returning ``(workload, outputs)``.

    ``outputs`` carries the kernel's computed results for functional
    verification.
    """
    if name not in _BUILDERS:
        raise TraceError("unknown benchmark {!r}; expected one of {}".format(
            name, ", ".join(BENCHMARKS)))
    if size not in _SIZES[name]:
        raise TraceError("unknown size {!r} for {}".format(size, name))
    build = _BUILDERS[name]
    return build(_factory, **_SIZES[name][size])


def clear_caches():
    """Drop the memoised workload builds.

    Called by :func:`repro.sim.simulator.clear_cache` so tests that
    mutate global models (kernels, builders) get fresh traces too.
    """
    build_workload.cache_clear()
    build_workload_with_outputs.cache_clear()
