"""Workload characterisation — regenerates the paper's Table 1.

For every accelerated function we report: the share of dynamic work
(%Time proxy), the operation mix (%INT, %FP, %LD, %ST), the memory-level
parallelism from the dependence graph, the sharing degree %SHR (fraction
of this function's cache blocks also touched by another accelerator —
the paper's inter-accelerator communication metric) and the assigned
lease time LT.
"""

from dataclasses import dataclass

from ..accel.ddg import analyze, light_metrics
from ..common.units import to_kb


@dataclass
class FunctionProfile:
    """One row of Table 1."""

    benchmark: str
    name: str
    time_pct: float
    int_pct: float
    fp_pct: float
    ld_pct: float
    st_pct: float
    mlp: float
    pipe_mlp: float
    shr_pct: float
    lease: int


def sharing_degree(workload):
    """Return {function_name: %SHR}.

    A block counts as shared when at least two distinct *accelerators*
    (not invocations) touch it.
    """
    blocks_of = {}
    for trace in workload.invocations:
        blocks_of.setdefault(trace.name, set()).update(
            trace.touched_blocks())
    shared = set()
    names = list(blocks_of)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            shared |= blocks_of[a] & blocks_of[b]
    return {
        name: (100.0 * len(blocks & shared) / len(blocks)) if blocks else 0.0
        for name, blocks in blocks_of.items()
    }


def characterize(workload):
    """Return the list of :class:`FunctionProfile` rows for a workload."""
    # Merge repeat invocations of the same function.
    merged_metrics = {}
    leases = {}
    order = []
    for trace in workload.invocations:
        metrics = analyze(trace)
        if trace.name not in merged_metrics:
            merged_metrics[trace.name] = metrics
            leases[trace.name] = trace.lease_time
            order.append(trace.name)
        else:
            prior = merged_metrics[trace.name]
            total = prior.total_ops + metrics.total_ops
            if total:
                prior.mlp = (prior.mlp * prior.total_ops
                             + metrics.mlp * metrics.total_ops) / total
                prior.pipe_mlp = (
                    prior.pipe_mlp * prior.total_ops
                    + metrics.pipe_mlp * metrics.total_ops) / total
            prior.int_ops += metrics.int_ops
            prior.fp_ops += metrics.fp_ops
            prior.loads += metrics.loads
            prior.stores += metrics.stores
    shr = sharing_degree(workload)
    grand_total = sum(m.total_ops for m in merged_metrics.values())
    profiles = []
    for name in order:
        metrics = merged_metrics[name]
        int_pct, fp_pct, ld_pct, st_pct = metrics.mix_percent()
        profiles.append(FunctionProfile(
            benchmark=workload.benchmark,
            name=name,
            time_pct=(100.0 * metrics.total_ops / grand_total
                      if grand_total else 0.0),
            int_pct=int_pct, fp_pct=fp_pct, ld_pct=ld_pct, st_pct=st_pct,
            mlp=metrics.mlp,
            pipe_mlp=metrics.pipe_mlp,
            shr_pct=shr.get(name, 0.0),
            lease=leases[name],
        ))
    return profiles


def function_mlp(workload):
    """Return {function_name: pipelined MLP} for the AXC cycle model.

    The cycle model uses the *pipelined* MLP (iterations overlap in a
    fixed-function datapath); Table 1 reports the dependence-limited MLP.

    The result is a pure function of the (read-only) workload trace and
    every system construction needs it, so it is memoised on the
    workload object.  It is computed by :func:`~repro.accel.ddg.
    light_metrics` — a linear scan producing exactly the ``pipe_mlp``
    :func:`characterize` would (same counts, same float arithmetic,
    including the total-ops-weighted merge of repeat invocations) —
    because building the full DDG just to read the pipelined MLP was
    the single largest fixed cost of every simulation.
    """
    cached = workload.__dict__.get("_function_mlp")
    if cached is None:
        merged = {}             # name -> [pipe_mlp, total_ops]
        for trace in workload.invocations:
            pipe_mlp, total_ops = light_metrics(trace)
            entry = merged.get(trace.name)
            if entry is None:
                merged[trace.name] = [pipe_mlp, total_ops]
                continue
            # Mirror characterize()'s merge expression exactly so the
            # floats are bit-identical to the Table 1 path.
            total = entry[1] + total_ops
            if total:
                entry[0] = (entry[0] * entry[1]
                            + pipe_mlp * total_ops) / total
            entry[1] = total
        cached = workload.__dict__["_function_mlp"] = {
            name: entry[0] for name, entry in merged.items()}
    return cached


def invocation_features(workload):
    """Per-invocation (reuse_distance, footprint_blocks) feature tuples.

    ``reuse_distance`` is the distance, in invocations, back to the most
    recent invocation that touched any of this invocation's blocks
    (1 = the immediately preceding invocation; -1 = first touch — no
    earlier invocation shares a block).  ``footprint_blocks`` is the
    invocation's touched-block count.  These are the cheap reuse/
    footprint signals the policy engine's bandit contexts bucket on
    (HyDRA-style cacheability hints): tight reuse favours cache-based
    strategies, first-touch streaming favours scratchpad DMA.

    A pure function of the read-only workload trace, memoised on the
    workload object like :func:`function_mlp`.
    """
    cached = workload.__dict__.get("_invocation_features")
    if cached is None:
        last_touch = {}
        features = []
        for index, trace in enumerate(workload.invocations):
            blocks = trace.touched_blocks()
            newest = -1
            for block in blocks:
                prior = last_touch.get(block, -1)
                if prior > newest:
                    newest = prior
            reuse = index - newest if newest >= 0 else -1
            features.append((reuse, len(blocks)))
            for block in blocks:
                last_touch[block] = index
        cached = workload.__dict__["_invocation_features"] = \
            tuple(features)
    return cached


def working_set_kb(workload):
    """Whole-application working set in kB (Figure 6d's WSet column)."""
    from ..common.units import LINE_SIZE
    return to_kb(len(workload.working_set_blocks()) * LINE_SIZE)
