"""Address-space layout and trace construction for workload kernels.

Kernels compute real results (testable against reference implementations)
while recording every load, store and arithmetic operation through a
:class:`TraceBuilder`.  The recorded trace is what the paper's toolchain
would have captured by instrumenting the original C program — addresses
in a shared virtual address space, operation mix, and the inter-function
sharing that drives the whole study.
"""

from ..common.errors import TraceError
from ..common.types import (
    AccessType,
    ComputeOp,
    FunctionTrace,
    MemOp,
    PhaseMarker,
    WorkloadTrace,
)


class Array:
    """A named array in the workload's virtual address space."""

    def __init__(self, name, base, length, elem_size):
        self.name = name
        self.base = base
        self.length = length
        self.elem_size = elem_size

    @property
    def size_bytes(self):
        return self.length * self.elem_size

    def addr(self, index):
        """Virtual byte address of element ``index``."""
        if not 0 <= index < self.length:
            raise TraceError(
                "{}[{}] out of bounds (length {})".format(
                    self.name, index, self.length))
        return self.base + index * self.elem_size

    def __len__(self):
        return self.length

    def __repr__(self):
        return "Array({}, {} x {}B @ {:#x})".format(
            self.name, self.length, self.elem_size, self.base)


class AddressSpace:
    """Allocates heap-like arrays in a process's virtual memory.

    Allocations are line-aligned with a one-line gap between arrays, the
    way a real allocator lays out consecutive mallocs.  Deliberately NOT
    page-aligned: page-aligning every array makes equal-stride streams
    collide in the same cache set (page size is a multiple of
    sets x line for every cache here), a pathology real heaps avoid by
    construction.
    """

    #: First allocation address (clear of the null page).
    BASE = 0x10000

    #: Alignment and inter-array gap.
    _ALIGN = 64

    def __init__(self):
        self._next = self.BASE
        self.arrays = {}

    def alloc(self, name, length, elem_size=4):
        """Allocate ``length`` elements of ``elem_size`` bytes."""
        if name in self.arrays:
            raise TraceError("array {!r} allocated twice".format(name))
        array = Array(name, self._next, length, elem_size)
        size = array.size_bytes
        aligned = -(-size // self._ALIGN) * self._ALIGN
        self._next += aligned + self._ALIGN  # one-line allocator gap
        self.arrays[name] = array
        return array

    def range_of(self, name):
        array = self.arrays[name]
        return (array.base, array.size_bytes)


class TraceBuilder:
    """Records one application's execution as a :class:`WorkloadTrace`."""

    def __init__(self, benchmark, space):
        self.benchmark = benchmark
        self.space = space
        self._invocations = []
        self._current = None
        self._pending_int = 0
        self._pending_fp = 0

    # -- function scoping ---------------------------------------------------

    def begin_function(self, name, lease=500):
        """Open a new accelerated-function invocation."""
        if self._current is not None:
            raise TraceError("begin_function inside an open function")
        self._current = FunctionTrace(
            name=name, benchmark=self.benchmark, lease_time=lease)
        return self._current

    def end_function(self):
        """Close the open invocation and append it to the workload."""
        if self._current is None:
            raise TraceError("end_function without begin_function")
        self._flush_compute()
        self._invocations.append(self._current)
        trace = self._current
        self._current = None
        return trace

    def function(self, name, lease=500):
        """Context manager sugar: ``with builder.function("step1"): ...``"""
        return _FunctionScope(self, name, lease)

    # -- op emission ----------------------------------------------------------

    def _require_open(self):
        if self._current is None:
            raise TraceError("memory op emitted outside a function")

    def _flush_compute(self):
        if self._pending_int or self._pending_fp:
            self._current.ops.append(
                ComputeOp(int_ops=self._pending_int,
                          fp_ops=self._pending_fp))
            self._pending_int = 0
            self._pending_fp = 0

    def load(self, array, index):
        """Record a load of ``array[index]``."""
        self._require_open()
        self._current.ops.append(MemOp(
            AccessType.LOAD, array.addr(index), array.elem_size,
            array.name))

    def store(self, array, index):
        """Record a store to ``array[index]``.

        Any accumulated compute flushes first: a store consumes the
        computed value, so the dependence chain is load* -> compute ->
        store.
        """
        self._require_open()
        self._flush_compute()
        self._current.ops.append(MemOp(
            AccessType.STORE, array.addr(index), array.elem_size,
            array.name))

    def compute(self, int_ops=0, fp_ops=0):
        """Accumulate arithmetic activity into the current dataflow chunk.

        Chunks flush before the next *store* (and at :meth:`barrier` /
        function end) but not before loads — so a kernel's natural
        ``load, load, compute, store`` shape keeps its loads in one
        dependence level, which is what gives each function its MLP.
        """
        self._require_open()
        self._pending_int += int_ops
        self._pending_fp += fp_ops

    def barrier(self):
        """Flush accumulated compute as one dataflow chunk."""
        self._require_open()
        self._flush_compute()

    def phase(self, label=""):
        """Emit a phase marker (a DMA window hint for SCRATCH)."""
        self._require_open()
        self._flush_compute()
        self._current.ops.append(PhaseMarker(label))

    # -- workload assembly -----------------------------------------------------

    def workload(self, host_inputs=(), host_outputs=()):
        """Assemble the final :class:`WorkloadTrace`.

        ``host_inputs`` / ``host_outputs`` name the arrays the host
        produces before and consumes after the accelerated region.
        """
        if self._current is not None:
            raise TraceError("workload() with an open function")
        return WorkloadTrace(
            benchmark=self.benchmark,
            invocations=list(self._invocations),
            host_input_arrays=[self.space.range_of(n) for n in host_inputs],
            host_output_arrays=[self.space.range_of(n)
                                for n in host_outputs],
            array_ranges={name: self.space.range_of(name)
                          for name in self.space.arrays},
        )


class _FunctionScope:
    def __init__(self, builder, name, lease):
        self.builder = builder
        self.name = name
        self.lease = lease

    def __enter__(self):
        return self.builder.begin_function(self.name, self.lease)

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.builder.end_function()
        else:
            self.builder._current = None
        return False
