"""Trace lowering: compile a :class:`FunctionTrace` for the hot path.

The per-access inner loop dominates a simulation's wall time, and the
legacy interpreter paid per-op costs that never change between runs:
``isinstance`` dispatch over the heterogeneous ``trace.ops`` list,
``op.block`` property calls (re-aligning the same address every run) and
``math.ceil`` latency arithmetic for every individual
:class:`~repro.common.types.ComputeOp`.  Lowering performs that work
*once* per (trace, issue width) and emits a flat, pre-resolved stream
that :class:`repro.accel.core.AxcCore` interprets with no type dispatch
at all — the same separation of trace construction from evaluation that
Aladdin's pre-lowered DDG traces and LoopTree use.

Lowered form: ``LoweredTrace.steps`` is a list of 2-tuples,

* ``(mem_op, block)`` — one memory operation with its line-aligned
  address precomputed (``mem_op`` is the original
  :class:`~repro.common.types.MemOp`, so ``access_fn`` closures are
  untouched);
* ``(None, latency)`` — a *fused chunk* of adjacent compute ops whose
  dataflow latencies are pre-summed for the core's issue width.

Fusion sums the per-op latencies (``max(1, ceil(total / issue_width))``
each) rather than re-deriving a latency from the summed activity, so the
lowered timeline is bit-identical to the legacy interpreter's — the
golden-stability gate (``tests/test_golden_full.py``) is the proof.
Phase markers carry no cost in the core model and are dropped from the
stream (SCRATCH consumes them during window partitioning, before
lowering).

Lowered traces are memoised on the trace object itself (keyed by issue
width), so they ride along when the execution engine pickles prepared
workloads into its disk cache and pool workers skip both the kernel
re-execution *and* the lowering pass.
"""

import math

from ..common.types import ComputeOp, MemOp, block_address

#: Bump when the lowered format changes incompatibly; part of the
#: engine's prepared-workload cache key.
LOWERING_VERSION = 1

#: Attribute used to memoise lowered forms on a trace object.
_CACHE_ATTR = "_lowered_by_width"


class LoweredTrace:
    """The compiled form of one :class:`FunctionTrace` invocation."""

    __slots__ = ("name", "issue_width", "steps", "mem_ops", "int_ops",
                 "fp_ops", "compute_chunks")

    def __init__(self, name, issue_width, steps, mem_ops, int_ops,
                 fp_ops, compute_chunks):
        self.name = name
        self.issue_width = issue_width
        self.steps = steps
        self.mem_ops = mem_ops
        self.int_ops = int_ops
        self.fp_ops = fp_ops
        self.compute_chunks = compute_chunks

    def __repr__(self):
        return ("LoweredTrace({}, iw={}, {} steps: {} mem + {} chunks)"
                .format(self.name, self.issue_width, len(self.steps),
                        self.mem_ops, self.compute_chunks))


def lower_trace(trace, issue_width):
    """Compile ``trace`` for ``issue_width``; one pass, no memoisation.

    Semantics-preserving by construction: every MemOp appears in program
    order with its precomputed line address; every run of adjacent
    ComputeOps becomes one chunk whose latency is the *sum* of the
    per-op ``max(1, ceil(total / issue_width))`` latencies the legacy
    interpreter would have charged; every other op kind (phase markers)
    advances nothing and is dropped, exactly as the legacy loop skipped
    it.
    """
    steps = []
    append = steps.append
    ceil = math.ceil
    pending_latency = 0
    mem_ops = 0
    int_ops = 0
    fp_ops = 0
    compute_chunks = 0
    for op in trace.ops:
        if type(op) is MemOp:
            if pending_latency:
                append((None, pending_latency))
                pending_latency = 0
                compute_chunks += 1
            mem_ops += 1
            append((op, block_address(op.addr)))
        elif type(op) is ComputeOp:
            int_ops += op.int_ops
            fp_ops += op.fp_ops
            pending_latency += max(1, ceil(op.total / issue_width))
        elif isinstance(op, MemOp):
            # Subclassed op types take the slow (but equivalent) path.
            if pending_latency:
                append((None, pending_latency))
                pending_latency = 0
                compute_chunks += 1
            mem_ops += 1
            append((op, block_address(op.addr)))
        elif isinstance(op, ComputeOp):
            int_ops += op.int_ops
            fp_ops += op.fp_ops
            pending_latency += max(1, ceil(op.total / issue_width))
        # Anything else (PhaseMarker, foreign op types) costs nothing in
        # the core model — dropped, as the legacy interpreter skipped it.
    if pending_latency:
        append((None, pending_latency))
        compute_chunks += 1
    return LoweredTrace(trace.name, issue_width, steps, mem_ops,
                        int_ops, fp_ops, compute_chunks)


def lowered_trace(trace, issue_width):
    """Return the memoised lowered form of ``trace`` for ``issue_width``.

    The compiled stream is cached in the trace object's ``__dict__``
    (traces are read-only to the simulator once built), so repeat
    invocations — and pickles of the owning workload — reuse it.
    """
    cache = trace.__dict__.get(_CACHE_ATTR)
    if cache is None:
        cache = {}
        trace.__dict__[_CACHE_ATTR] = cache
    lowered = cache.get(issue_width)
    if lowered is None:
        lowered = lower_trace(trace, issue_width)
        cache[issue_width] = lowered
    return lowered


def invalidate_lowered(trace):
    """Drop a trace's memoised lowered forms (after mutating its ops)."""
    trace.__dict__.pop(_CACHE_ATTR, None)


def lower_workload(workload, issue_width=4):
    """Pre-lower every invocation of ``workload`` (default issue width).

    Used by the execution engine before pickling a prepared workload
    into its disk cache, so pool workers load ready-to-run streams
    instead of re-executing kernels and re-lowering.  Returns the
    workload for chaining.
    """
    for trace in workload.invocations:
        lowered_trace(trace, issue_width)
    return workload
