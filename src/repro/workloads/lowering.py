"""Trace lowering: compile a :class:`FunctionTrace` for the hot path.

The per-access inner loop dominates a simulation's wall time, and the
legacy interpreter paid per-op costs that never change between runs:
``isinstance`` dispatch over the heterogeneous ``trace.ops`` list,
``op.block`` property calls (re-aligning the same address every run) and
``math.ceil`` latency arithmetic for every individual
:class:`~repro.common.types.ComputeOp`.  Lowering performs that work
*once* per (trace, issue width) and emits a flat, pre-resolved stream
that :class:`repro.accel.core.AxcCore` interprets with no type dispatch
at all — the same separation of trace construction from evaluation that
Aladdin's pre-lowered DDG traces and LoopTree use.

Lowered form: ``LoweredTrace.steps`` is a list of 3-tuples,

* ``(mem_op, block, count)`` — an *access run*: ``count`` consecutive
  memory operations to the same line with the same kind, with the
  line-aligned address precomputed.  ``mem_op`` is the first original
  :class:`~repro.common.types.MemOp` of the run (every op in a run is
  interchangeable to the memory system: same kind, same line — so
  ``access_fn`` closures are untouched).  Runs are *maximal*: a run
  breaks on a different line, a different kind, or an intervening
  compute chunk (whose latency would interleave with the run's
  timeline); cost-free phase markers do not break runs, exactly as they
  never advanced the legacy timeline.  Only plain ``MemOp`` instances
  coalesce — subclassed op types always form single-op runs and take
  the per-op path.
* ``(None, latency, 1)`` — a *fused chunk* of adjacent compute ops
  whose dataflow latencies are pre-summed for the core's issue width.

Runs are what the run-coalescing fast path consumes: the core hands a
whole run to a controller's ``access_run`` entry point and serves it in
one protocol step when the steady-state guard holds (see
``docs/simulator.md`` §9).  Fusion sums the per-op latencies
(``max(1, ceil(total / issue_width))`` each) rather than re-deriving a
latency from the summed activity, so the lowered timeline is
bit-identical to the legacy interpreter's — the golden-stability gate
(``tests/test_golden_full.py``) is the proof.  Phase markers carry no
cost in the core model and are dropped from the stream (SCRATCH
consumes them during window partitioning, before lowering).

Lowered traces are memoised on the trace object itself (keyed by issue
width), so they ride along when the execution engine pickles prepared
workloads into its disk cache and pool workers skip both the kernel
re-execution *and* the lowering pass.
"""

import math

from ..common.types import ComputeOp, MemOp

#: Bump when the lowered format changes incompatibly; part of the
#: engine's prepared-workload cache key.  Version 3 adds compiled
#: steady-state phase plans riding along with the lowered stream;
#: version 4 adds structure-of-arrays vector plans (the vector rung).
LOWERING_VERSION = 4

#: Attribute used to memoise lowered forms on a trace object.
_CACHE_ATTR = "_lowered_by_width"


class LoweredTrace:
    """The compiled form of one :class:`FunctionTrace` invocation."""

    __slots__ = ("name", "issue_width", "steps", "mem_ops", "int_ops",
                 "fp_ops", "compute_chunks", "mem_runs", "coalesced_ops")

    def __init__(self, name, issue_width, steps, mem_ops, int_ops,
                 fp_ops, compute_chunks, mem_runs=0, coalesced_ops=0):
        self.name = name
        self.issue_width = issue_width
        self.steps = steps
        self.mem_ops = mem_ops
        self.int_ops = int_ops
        self.fp_ops = fp_ops
        self.compute_chunks = compute_chunks
        #: Number of mem steps (access runs, singletons included).
        self.mem_runs = mem_runs
        #: Memory ops inside runs of length >= 2 (the coalescable ops).
        self.coalesced_ops = coalesced_ops

    def __repr__(self):
        return ("LoweredTrace({}, iw={}, {} steps: {} mem in {} runs "
                "+ {} chunks)".format(
                    self.name, self.issue_width, len(self.steps),
                    self.mem_ops, self.mem_runs, self.compute_chunks))


def lower_trace(trace, issue_width):
    """Compile ``trace`` for ``issue_width``; one pass, no memoisation.

    Semantics-preserving by construction: every MemOp appears in program
    order inside a maximal same-line same-kind access run with its
    precomputed line address; every run of adjacent ComputeOps becomes
    one chunk whose latency is the *sum* of the per-op
    ``max(1, ceil(total / issue_width))`` latencies the legacy
    interpreter would have charged; every other op kind (phase markers)
    advances nothing and is dropped, exactly as the legacy loop skipped
    it.
    """
    steps = []
    append = steps.append
    ceil = math.ceil
    pending_latency = 0
    run_op = None           # first MemOp of the open access run
    run_block = 0
    run_kind = None
    run_count = 0
    mem_ops = 0
    int_ops = 0
    fp_ops = 0
    compute_chunks = 0
    mem_runs = 0
    coalesced_ops = 0
    for op in trace.ops:
        if type(op) is MemOp:
            if pending_latency:
                append((None, pending_latency, 1))
                pending_latency = 0
                compute_chunks += 1
            mem_ops += 1
            block = op.block
            if run_op is not None:
                if block == run_block and op.kind is run_kind:
                    run_count += 1
                    continue
                append((run_op, run_block, run_count))
                mem_runs += 1
                if run_count > 1:
                    coalesced_ops += run_count
            run_op = op
            run_block = block
            run_kind = op.kind
            run_count = 1
        elif type(op) is ComputeOp:
            if run_op is not None:
                # A compute chunk's latency interleaves with the run's
                # timeline, so it terminates the run.
                append((run_op, run_block, run_count))
                mem_runs += 1
                if run_count > 1:
                    coalesced_ops += run_count
                run_op = None
            int_ops += op.int_ops
            fp_ops += op.fp_ops
            pending_latency += max(1, ceil(op.total / issue_width))
        elif isinstance(op, MemOp):
            # Subclassed op types take the slow (but equivalent) path:
            # always a single-op run, never merged with neighbours.
            if pending_latency:
                append((None, pending_latency, 1))
                pending_latency = 0
                compute_chunks += 1
            if run_op is not None:
                append((run_op, run_block, run_count))
                mem_runs += 1
                if run_count > 1:
                    coalesced_ops += run_count
                run_op = None
            mem_ops += 1
            append((op, op.block, 1))
            mem_runs += 1
        elif isinstance(op, ComputeOp):
            if run_op is not None:
                append((run_op, run_block, run_count))
                mem_runs += 1
                if run_count > 1:
                    coalesced_ops += run_count
                run_op = None
            int_ops += op.int_ops
            fp_ops += op.fp_ops
            pending_latency += max(1, ceil(op.total / issue_width))
        # Anything else (PhaseMarker, foreign op types) costs nothing in
        # the core model — dropped, as the legacy interpreter skipped
        # it, and (costing nothing) it does not break an open run.
    if run_op is not None:
        append((run_op, run_block, run_count))
        mem_runs += 1
        if run_count > 1:
            coalesced_ops += run_count
    if pending_latency:
        append((None, pending_latency, 1))
        compute_chunks += 1
    return LoweredTrace(trace.name, issue_width, steps, mem_ops,
                        int_ops, fp_ops, compute_chunks, mem_runs,
                        coalesced_ops)


def lowered_trace(trace, issue_width):
    """Return the memoised lowered form of ``trace`` for ``issue_width``.

    The compiled stream is cached in the trace object's ``__dict__``
    (traces are read-only to the simulator once built), so repeat
    invocations — and pickles of the owning workload — reuse it.
    """
    cache = trace.__dict__.get(_CACHE_ATTR)
    if cache is None:
        cache = {}
        trace.__dict__[_CACHE_ATTR] = cache
    lowered = cache.get(issue_width)
    if lowered is None:
        lowered = lower_trace(trace, issue_width)
        cache[issue_width] = lowered
    return lowered


def invalidate_lowered(trace):
    """Drop a trace's memoised derived forms (after mutating its ops).

    Clears the lowered streams, the compiled steady-state phase plans
    (which are derived from the lowered streams) and the block-set
    caches (:meth:`~repro.common.types.FunctionTrace.touched_blocks` /
    ``dirty_blocks``) — everything derived from ``trace.ops``.
    """
    trace.__dict__.pop(_CACHE_ATTR, None)
    trace.__dict__.pop("_phase_plans", None)
    trace.__dict__.pop("_vector_plans", None)
    trace.__dict__.pop("_touched_blocks", None)
    trace.__dict__.pop("_dirty_blocks", None)


def lower_workload(workload, issue_width=4):
    """Pre-lower every invocation of ``workload`` (default issue width).

    Used by the execution engine before pickling a prepared workload
    into its disk cache, so pool workers load ready-to-run streams
    instead of re-executing kernels and re-lowering.  Compiled phase
    plans (the steady-state fast path's unit of work) are built here
    too, so they ride along in the same pickle — and, when numpy is
    available, the structure-of-arrays vector plans above them (the
    vector rung; skipped cleanly on a numpy-less install).  Returns
    the workload for chaining.
    """
    from . import vector
    from .phases import phase_plan

    for trace in workload.invocations:
        lowered_trace(trace, issue_width)
        phase_plan(trace, issue_width, leased=True)
        phase_plan(trace, issue_width, leased=False)
        if vector.HAVE_NUMPY:
            vector.vector_plan(trace, issue_width, leased=True)
            vector.vector_plan(trace, issue_width, leased=False)
    return workload
