"""Inter-invocation dependence analysis for pipelined execution.

The sequential program's invocations are totally ordered, but many are
*data*-independent: SAD for disparity shift k+1 reads only the padded
inputs, not shift k's integral image.  Two invocations must serialise
only when an earlier one writes a block the later one touches (RAW /
WAW) or reads a block the later one writes (WAR) — otherwise a
dependence-aware tile may overlap them (the concurrency the paper's
Figure 5 timeline shows between AXC-1 and AXC-2).
"""


def invocation_dependences(workload):
    """Return ``{j: set(i)}``: invocation ``j`` must start after every
    invocation ``i`` in its set completes.

    Edges are computed at cache-block granularity over the traces, plus
    a same-AXC program-order edge (one accelerator runs one invocation
    at a time).
    """
    invocations = workload.invocations
    touched = [trace.touched_blocks() for trace in invocations]
    dirty = [trace.dirty_blocks() for trace in invocations]
    axcs = [workload.axc_of(trace.name) for trace in invocations]
    deps = {j: set() for j in range(len(invocations))}
    last_on_axc = {}
    for j in range(len(invocations)):
        for i in range(j):
            raw_waw = dirty[i] & touched[j]
            war = touched[i] & dirty[j]
            if raw_waw or war:
                deps[j].add(i)
        if axcs[j] in last_on_axc:
            deps[j].add(last_on_axc[axcs[j]])
        last_on_axc[axcs[j]] = j
    return _transitively_reduce(deps)


def _transitively_reduce(deps):
    """Drop edges implied by transitivity (keeps schedules identical,
    makes the graphs readable and the scheduler's ready-check cheap)."""
    reduced = {}
    for j, direct in deps.items():
        ancestors = set()
        frontier = set(direct)
        while frontier:
            node = frontier.pop()
            for parent in deps.get(node, ()):
                if parent not in ancestors:
                    ancestors.add(parent)
                    frontier.add(parent)
        reduced[j] = {i for i in direct if i not in ancestors}
    return reduced


def parallelism_profile(workload):
    """Return ``(critical_path_length, total, max_width)`` in
    invocation counts — a quick feel for how much pipelining a workload
    offers before simulating it."""
    deps = invocation_dependences(workload)
    depth = {}
    for j in sorted(deps):
        depth[j] = 1 + max((depth[i] for i in deps[j]), default=0)
    if not depth:
        return 0, 0, 0
    critical = max(depth.values())
    width = {}
    for j, level in depth.items():
        width[level] = width.get(level, 0) + 1
    return critical, len(deps), max(width.values())
