"""Tracking benchmark (SD-VBS feature-tracking front-end).

Three accelerated functions (Table 1) over float (F2D) image planes:

* ``imgBlur``   — direct 3x3 Gaussian convolution;
* ``imgResize`` — 2x downsample of the blurred image (shares ~99 % of
  its accesses with imgBlur's output — the function whose inter-AXC
  DMA transfers the paper calls out in Section 5.2);
* ``calcSobel`` — x/y gradients of the blurred image.

The 3-row convolution stencil over wide float rows is what makes this
workload scratchpad-hostile: a double-buffered 2 kB DMA window holds
fewer than three 704-byte rows, so every window re-stages its halo rows.
The working set (~395 kB of float planes) overflows both the 64 kB and
the 256 kB shared L1X, matching the paper's 371 kB footprint.
"""

import random

LEASES = {"imgBlur": 700, "imgResize": 770, "calcSobel": 720}

DEFAULT_WIDTH = 176
DEFAULT_HEIGHT = 132

#: 3x3 binomial kernel weights (row-major), divisor 16.
_WEIGHTS = (1, 2, 1,
            2, 4, 2,
            1, 2, 1)


def build_workload(builder_factory, width=DEFAULT_WIDTH,
                   height=DEFAULT_HEIGHT):
    """Build the tracking workload; returns ``(workload, outputs)``."""
    space, tb = builder_factory("tracking")
    npx = width * height
    rw, rh = width // 2, height // 2

    img = space.alloc("img", npx)
    blurred = space.alloc("blurred", npx)
    resized = space.alloc("resized", rw * rh)
    sobel_dx = space.alloc("sobel_dx", npx)
    sobel_dy = space.alloc("sobel_dy", npx)

    rng = random.Random(11)
    img_v = [rng.randrange(256) for _ in range(npx)]
    blur_v = [0] * npx
    resized_v = [0] * (rw * rh)
    dx_v = [0] * npx
    dy_v = [0] * npx

    # -- imgBlur: direct 3x3 convolution --------------------------------------
    tb.begin_function("imgBlur", LEASES["imgBlur"])
    for y in range(height):
        for x in range(width):
            i = y * width + x
            acc = 0
            for wy in (-1, 0, 1):
                for wx in (-1, 0, 1):
                    yy = min(max(y + wy, 0), height - 1)
                    xx = min(max(x + wx, 0), width - 1)
                    tb.load(img, yy * width + xx)
                    weight = _WEIGHTS[(wy + 1) * 3 + (wx + 1)]
                    acc += weight * img_v[yy * width + xx]
            tb.compute(int_ops=12, fp_ops=2)
            tb.store(blurred, i)
            blur_v[i] = acc // 16
    tb.end_function()

    # -- imgResize: 2x decimation of the blurred image -----------------------
    tb.begin_function("imgResize", LEASES["imgResize"])
    for y in range(rh):
        for x in range(rw):
            sy, sx = 2 * y, 2 * x
            acc = 0
            for dy in (0, 1):
                for dx in (0, 1):
                    tb.load(blurred, (sy + dy) * width + (sx + dx))
                    acc += blur_v[(sy + dy) * width + (sx + dx)]
            tb.compute(int_ops=4)
            tb.store(resized, y * rw + x)
            resized_v[y * rw + x] = acc // 4
    tb.end_function()

    # -- calcSobel: gradients of the blurred image ---------------------------
    tb.begin_function("calcSobel", LEASES["calcSobel"])
    for y in range(1, height - 1):
        for x in range(1, width - 1):
            i = y * width + x
            tb.load(blurred, i - 1)
            tb.load(blurred, i + 1)
            tb.compute(int_ops=2)
            tb.store(sobel_dx, i)
            dx_v[i] = blur_v[i + 1] - blur_v[i - 1]
            tb.load(blurred, i - width)
            tb.load(blurred, i + width)
            tb.compute(int_ops=2)
            tb.store(sobel_dy, i)
            dy_v[i] = blur_v[i + width] - blur_v[i - width]
    tb.end_function()

    workload = tb.workload(
        host_inputs=("img",),
        host_outputs=("resized", "sobel_dx", "sobel_dy"))
    outputs = {"blurred": blur_v, "resized": resized_v,
               "sobel_dx": dx_v, "sobel_dy": dy_v,
               "width": width, "height": height}
    return workload, outputs
