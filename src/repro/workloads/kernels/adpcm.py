"""ADPCM benchmark (MachSuite): IMA ADPCM coder and decoder.

Two accelerated functions, each ~50 % of runtime (Table 1).  The coder
compresses 16-bit PCM samples to 4-bit codes; the decoder reconstructs
PCM *in place over the input buffer* (MachSuite's round-trip harness),
so coder and decoder share nearly every block they touch — the paper
reports 99 % sharing, and the decoded signal is testable against the
original within the quantisation error.

The working set (PCM buffer + code buffer + step tables) stays well
under 30 kB: this is one of the three benchmarks where SCRATCH's
scratchpad captures the locality and SHARED's per-access L1X penalty
hurts (Lesson 1).
"""

import math
import random

LEASES = {"coder": 1400, "decoder": 1400}

DEFAULT_SAMPLES = 8192

_INDEX_ADJUST = (-1, -1, -1, -1, 2, 4, 6, 8,
                 -1, -1, -1, -1, 2, 4, 6, 8)
_STEP_TABLE = tuple(
    int(7 * math.pow(1.1, i)) for i in range(89))


def _encode_sample(sample, predicted, index):
    step = _STEP_TABLE[index]
    diff = sample - predicted
    code = 0
    if diff < 0:
        code = 8
        diff = -diff
    if diff >= step:
        code |= 4
        diff -= step
    if diff >= step // 2:
        code |= 2
        diff -= step // 2
    if diff >= step // 4:
        code |= 1
    return code


def _decode_sample(code, predicted, index):
    step = _STEP_TABLE[index]
    diff = step // 8
    if code & 4:
        diff += step
    if code & 2:
        diff += step // 2
    if code & 1:
        diff += step // 4
    if code & 8:
        predicted -= diff
    else:
        predicted += diff
    predicted = max(-32768, min(32767, predicted))
    index = max(0, min(88, index + _INDEX_ADJUST[code]))
    return predicted, index


def build_workload(builder_factory, num_samples=DEFAULT_SAMPLES):
    """Build the ADPCM workload; returns ``(workload, outputs)``."""
    space, tb = builder_factory("adpcm")
    pcm = space.alloc("pcm", num_samples, elem_size=2)
    codes = space.alloc("codes", num_samples, elem_size=1)
    step_tab = space.alloc("step_tab", len(_STEP_TABLE), elem_size=2)
    adjust_tab = space.alloc("adjust_tab", len(_INDEX_ADJUST), elem_size=1)

    rng = random.Random(3)
    phase = 0.0
    pcm_v = []
    for _ in range(num_samples):
        phase += 0.02 + rng.random() * 0.01
        pcm_v.append(int(12000 * math.sin(phase)))
    original = list(pcm_v)
    codes_v = [0] * num_samples

    # -- coder ----------------------------------------------------------------
    tb.begin_function("coder", LEASES["coder"])
    predicted, index = 0, 0
    for i in range(num_samples):
        tb.load(pcm, i)
        tb.load(step_tab, index)
        tb.load(adjust_tab, 0)
        tb.compute(int_ops=14)
        tb.store(codes, i)
        code = _encode_sample(pcm_v[i], predicted, index)
        codes_v[i] = code
        predicted, index = _decode_sample(code, predicted, index)
    tb.end_function()

    # -- decoder: reconstructs in place over the PCM buffer --------------------
    tb.begin_function("decoder", LEASES["decoder"])
    predicted, index = 0, 0
    for i in range(num_samples):
        tb.load(codes, i)
        tb.load(step_tab, index)
        tb.load(adjust_tab, codes_v[i])
        tb.compute(int_ops=12)
        tb.store(pcm, i)
        predicted, index = _decode_sample(codes_v[i], predicted, index)
        pcm_v[i] = predicted
    tb.end_function()

    workload = tb.workload(host_inputs=("pcm", "step_tab", "adjust_tab"),
                           host_outputs=("pcm", "codes"))
    outputs = {"original": original, "decoded": pcm_v, "codes": codes_v,
               "step_table": _STEP_TABLE}
    return workload, outputs
