"""Susan benchmark (SD-VBS smallest univalue segment assimilating nucleus).

Four accelerated functions (Table 1): ``bright`` builds the brightness
similarity LUT (tiny, ~1 % of time), ``smooth`` performs USAN-weighted
smoothing over a 5x5 window (the 66-86 % dominant function), ``corn``
and ``edges`` threshold the USAN response.  The image plus response
planes stay under 30 kB — with SUSAN's long-running smooth loop
thrashing the tiny L0X against its lease, this is one of the benchmarks
where FUSION's coherence request messages eat into its gains (Lesson 4).
"""

import math
import random

LEASES = {"bright": 1000, "smooth": 1700, "corn": 1200, "edges": 1700}

DEFAULT_DIM = 56
_LUT_SIZE = 516
_RADIUS = 2  # 5x5 window


def build_workload(builder_factory, dim=DEFAULT_DIM):
    """Build the Susan workload; returns ``(workload, outputs)``."""
    space, tb = builder_factory("susan")
    npx = dim * dim
    img = space.alloc("img", npx, elem_size=1)
    lut = space.alloc("lut", _LUT_SIZE, elem_size=1)
    smoothed = space.alloc("smoothed", npx, elem_size=1)
    usan = space.alloc("usan", npx, elem_size=2)
    corners = space.alloc("corners", npx, elem_size=1)
    edges = space.alloc("edges", npx, elem_size=1)

    rng = random.Random(23)
    img_v = [rng.randrange(256) for _ in range(npx)]
    lut_v = [0] * _LUT_SIZE
    smooth_v = [0] * npx
    usan_v = [0] * npx
    corn_v = [0] * npx
    edge_v = [0] * npx

    # -- bright: build the brightness-difference LUT --------------------------
    tb.begin_function("bright", LEASES["bright"])
    for k in range(_LUT_SIZE):
        diff = (k - _LUT_SIZE // 2) / 20.0
        tb.compute(fp_ops=6)
        tb.store(lut, k)
        lut_v[k] = int(100.0 * math.exp(-(diff ** 6)))
    tb.end_function()

    # -- smooth: USAN-weighted window smoothing --------------------------------
    tb.begin_function("smooth", LEASES["smooth"])
    for y in range(_RADIUS, dim - _RADIUS):
        for x in range(_RADIUS, dim - _RADIUS):
            i = y * dim + x
            tb.load(img, i)
            centre = img_v[i]
            total, weight_sum, count = 0, 0, 0
            for wy in range(-_RADIUS, _RADIUS + 1):
                for wx in range(-_RADIUS, _RADIUS + 1):
                    j = (y + wy) * dim + (x + wx)
                    tb.load(img, j)
                    diff = img_v[j] - centre
                    tb.load(lut, diff + _LUT_SIZE // 2)
                    w = lut_v[diff + _LUT_SIZE // 2]
                    tb.compute(int_ops=4)
                    total += w * img_v[j]
                    weight_sum += w
                    count += 1 if w > 50 else 0
            tb.compute(int_ops=6)
            tb.store(smoothed, i)
            tb.store(usan, i)
            smooth_v[i] = total // weight_sum if weight_sum else centre
            usan_v[i] = count
    tb.end_function()

    # -- corn: corner response thresholding --------------------------------------
    corner_thresh = 8
    tb.begin_function("corn", LEASES["corn"])
    for y in range(_RADIUS, dim - _RADIUS):
        for x in range(_RADIUS, dim - _RADIUS):
            i = y * dim + x
            tb.load(usan, i)
            tb.load(usan, i - 1)
            tb.load(usan, i + 1)
            tb.compute(int_ops=6)
            is_corner = (usan_v[i] < corner_thresh
                         and usan_v[i] <= usan_v[i - 1]
                         and usan_v[i] <= usan_v[i + 1])
            if is_corner:
                tb.store(corners, i)
                corn_v[i] = 255
    tb.end_function()

    # -- edges: edge response thresholding -----------------------------------------
    edge_thresh = 16
    tb.begin_function("edges", LEASES["edges"])
    for y in range(_RADIUS, dim - _RADIUS):
        for x in range(_RADIUS, dim - _RADIUS):
            i = y * dim + x
            tb.load(usan, i)
            tb.load(smoothed, i)
            tb.compute(int_ops=4)
            if usan_v[i] < edge_thresh:
                tb.store(edges, i)
                edge_v[i] = 255
    tb.end_function()

    workload = tb.workload(host_inputs=("img",),
                           host_outputs=("smoothed", "corners", "edges"))
    outputs = {"smoothed": smooth_v, "usan": usan_v, "corners": corn_v,
               "edges": edge_v, "dim": dim}
    return workload, outputs
