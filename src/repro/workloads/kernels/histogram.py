"""Histogram benchmark: HSL histogram equalisation of an RGB image.

Four accelerated functions (Table 1): ``rgb2hsl`` (48 % of time, mostly
FP), ``histogram`` (bin the lightness channel; 100 % of its blocks are
shared), ``equaliz`` (build the CDF LUT and remap lightness) and
``hsl2rgb`` (convert back).  With separate planes for three input
channels, three HSL channels and three output channels the working set
is by far the largest in the suite (the paper reports 1191 kB) —
overflowing every cache level and generating L1X->L2 coherence request
traffic that no tile-side design can hide (Lesson 4, HIST discussion).

The equalisation is real: tests verify the remapped lightness histogram
is flatter than the input's.
"""

import random

LEASES = {"rgb2hsl": 500, "histogram": 500, "equaliz": 500,
          "hsl2rgb": 500}

DEFAULT_PIXELS = 32768
BINS = 256


def _rgb_to_hsl(r, g, b):
    r_, g_, b_ = r / 255.0, g / 255.0, b / 255.0
    mx, mn = max(r_, g_, b_), min(r_, g_, b_)
    light = (mx + mn) / 2.0
    if mx == mn:
        return 0.0, 0.0, light
    d = mx - mn
    sat = d / (2.0 - mx - mn) if light > 0.5 else d / (mx + mn)
    if mx == r_:
        hue = ((g_ - b_) / d) % 6.0
    elif mx == g_:
        hue = (b_ - r_) / d + 2.0
    else:
        hue = (r_ - g_) / d + 4.0
    return hue / 6.0, sat, light


def _hue_to_rgb(p, q, t):
    t %= 1.0
    if t < 1 / 6:
        return p + (q - p) * 6 * t
    if t < 1 / 2:
        return q
    if t < 2 / 3:
        return p + (q - p) * (2 / 3 - t) * 6
    return p


def _hsl_to_rgb(h, s, light):
    if s == 0:
        v = int(round(light * 255))
        return v, v, v
    q = light * (1 + s) if light < 0.5 else light + s - light * s
    p = 2 * light - q
    return (int(round(_hue_to_rgb(p, q, h + 1 / 3) * 255)),
            int(round(_hue_to_rgb(p, q, h) * 255)),
            int(round(_hue_to_rgb(p, q, h - 1 / 3) * 255)))


def build_workload(builder_factory, num_pixels=DEFAULT_PIXELS):
    """Build the histogram workload; returns ``(workload, outputs)``."""
    space, tb = builder_factory("histogram")
    r_in = space.alloc("r_in", num_pixels)
    g_in = space.alloc("g_in", num_pixels)
    b_in = space.alloc("b_in", num_pixels)
    h_pl = space.alloc("h_pl", num_pixels)
    s_pl = space.alloc("s_pl", num_pixels)
    l_pl = space.alloc("l_pl", num_pixels)
    hist = space.alloc("hist", BINS)
    lut = space.alloc("lut", BINS)
    r_out = space.alloc("r_out", num_pixels)
    g_out = space.alloc("g_out", num_pixels)
    b_out = space.alloc("b_out", num_pixels)

    rng = random.Random(5)
    # A low-contrast image: values clustered in a narrow band, which
    # equalisation should spread out.
    r_v = [90 + rng.randrange(60) for _ in range(num_pixels)]
    g_v = [80 + rng.randrange(70) for _ in range(num_pixels)]
    b_v = [100 + rng.randrange(50) for _ in range(num_pixels)]
    h_v = [0.0] * num_pixels
    s_v = [0.0] * num_pixels
    l_v = [0.0] * num_pixels
    hist_v = [0] * BINS
    lut_v = [0] * BINS
    ro_v = [0] * num_pixels
    go_v = [0] * num_pixels
    bo_v = [0] * num_pixels

    # -- rgb2hsl -------------------------------------------------------------
    tb.begin_function("rgb2hsl", LEASES["rgb2hsl"])
    for i in range(num_pixels):
        tb.load(r_in, i)
        tb.load(g_in, i)
        tb.load(b_in, i)
        tb.compute(fp_ops=14, int_ops=4)
        tb.store(h_pl, i)
        tb.store(s_pl, i)
        tb.store(l_pl, i)
        h_v[i], s_v[i], l_v[i] = _rgb_to_hsl(r_v[i], g_v[i], b_v[i])
    tb.end_function()

    # -- histogram of the lightness channel ------------------------------------
    tb.begin_function("histogram", LEASES["histogram"])
    for i in range(num_pixels):
        tb.load(l_pl, i)
        bin_index = min(BINS - 1, int(l_v[i] * BINS))
        tb.load(hist, bin_index)
        tb.compute(int_ops=3)
        tb.store(hist, bin_index)
        hist_v[bin_index] += 1
    tb.end_function()

    # -- equaliz: CDF -> LUT, remap lightness ------------------------------------
    tb.begin_function("equaliz", LEASES["equaliz"])
    cdf = 0
    cdf_min = next((hist_v[k] for k in range(BINS) if hist_v[k]), 0)
    for k in range(BINS):
        tb.load(hist, k)
        cdf += hist_v[k]
        tb.compute(int_ops=4, fp_ops=2)
        tb.store(lut, k)
        denom = max(1, num_pixels - cdf_min)
        lut_v[k] = max(0, (cdf - cdf_min) * (BINS - 1) // denom)
    for i in range(num_pixels):
        tb.load(l_pl, i)
        bin_index = min(BINS - 1, int(l_v[i] * BINS))
        tb.load(lut, bin_index)
        tb.compute(fp_ops=2)
        tb.store(l_pl, i)
        l_v[i] = lut_v[bin_index] / (BINS - 1)
    tb.end_function()

    # -- hsl2rgb -------------------------------------------------------------
    tb.begin_function("hsl2rgb", LEASES["hsl2rgb"])
    for i in range(num_pixels):
        tb.load(h_pl, i)
        tb.load(s_pl, i)
        tb.load(l_pl, i)
        tb.compute(fp_ops=16, int_ops=4)
        tb.store(r_out, i)
        tb.store(g_out, i)
        tb.store(b_out, i)
        ro_v[i], go_v[i], bo_v[i] = _hsl_to_rgb(h_v[i], s_v[i], l_v[i])
    tb.end_function()

    workload = tb.workload(
        host_inputs=("r_in", "g_in", "b_in"),
        host_outputs=("r_out", "g_out", "b_out"))
    outputs = {"r": ro_v, "g": go_v, "b": bo_v, "lightness": l_v,
               "hist": hist_v, "lut": lut_v, "num_pixels": num_pixels}
    return workload, outputs
