"""Benchmark kernels: real computations that emit memory traces.

Each module implements one benchmark from the paper's suite (SD-VBS and
MachSuite selections, Table 1) as a pipeline of accelerated functions
that both compute verifiable results and record their dynamic traces.
"""

from . import adpcm, disparity, fft, filters, histogram, susan, tracking

__all__ = ["adpcm", "disparity", "fft", "filters", "histogram", "susan",
           "tracking"]
