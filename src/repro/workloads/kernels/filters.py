"""Filter benchmark: 3x3 median filter and edge-enhancement filter.

Two accelerated functions (Table 1): ``medfilt`` (74 % of time, 49 % of
loads — a windowed sort per pixel) and ``edgefilt`` (Sobel magnitude with
threshold).  The working set is under 30 kB, and medfilt iterates over
every pixel long past its L0X leases — the L0X-thrashing behaviour the
paper blames for FUSION's residual coherence-message energy in FILT
(Lesson 4).
"""

import random

LEASES = {"medfilt": 400, "edgefilt": 400}

DEFAULT_DIM = 64


def _median9(values):
    return sorted(values)[4]


def build_workload(builder_factory, dim=DEFAULT_DIM):
    """Build the filter workload; returns ``(workload, outputs)``."""
    space, tb = builder_factory("filter")
    npx = dim * dim
    img = space.alloc("img", npx, elem_size=1)
    median = space.alloc("median", npx, elem_size=1)
    edge = space.alloc("edge", npx, elem_size=1)

    rng = random.Random(31)
    img_v = [rng.randrange(256) for _ in range(npx)]
    # Salt-and-pepper noise for the median filter to remove.
    for _ in range(npx // 20):
        img_v[rng.randrange(npx)] = rng.choice((0, 255))
    med_v = [0] * npx
    edge_v = [0] * npx

    # -- medfilt ----------------------------------------------------------------
    tb.begin_function("medfilt", LEASES["medfilt"])
    for y in range(1, dim - 1):
        for x in range(1, dim - 1):
            i = y * dim + x
            window = []
            for wy in (-1, 0, 1):
                for wx in (-1, 0, 1):
                    j = (y + wy) * dim + (x + wx)
                    tb.load(img, j)
                    window.append(img_v[j])
            tb.compute(int_ops=25)  # 9-element sorting network
            tb.store(median, i)
            med_v[i] = _median9(window)
    tb.end_function()

    # -- edgefilt: Sobel magnitude over the median-filtered image ---------------
    threshold = 40
    tb.begin_function("edgefilt", LEASES["edgefilt"])
    for y in range(1, dim - 1):
        for x in range(1, dim - 1):
            i = y * dim + x
            tb.load(median, i - 1)
            tb.load(median, i + 1)
            tb.load(median, i - dim)
            tb.load(median, i + dim)
            tb.compute(int_ops=6, fp_ops=2)
            tb.store(edge, i)
            gx = med_v[i + 1] - med_v[i - 1]
            gy = med_v[i + dim] - med_v[i - dim]
            mag = abs(gx) + abs(gy)
            edge_v[i] = 255 if mag > threshold else 0
    tb.end_function()

    workload = tb.workload(host_inputs=("img",),
                           host_outputs=("median", "edge"))
    outputs = {"median": med_v, "edge": edge_v, "dim": dim,
               "noisy_input": img_v}
    return workload, outputs
