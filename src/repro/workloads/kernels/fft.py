"""FFT benchmark (MachSuite-style), split into the paper's six steps.

A radix-2 decimation-in-time FFT over ``n`` complex points, executed
in-place on separate real/imaginary arrays with precomputed twiddle
tables.  The paper accelerates six functions (step1..step6, Table 1); we
map step1 to the bit-reversal permutation and steps 2-6 to groups of
butterfly stages.

The *application* transforms a stream of blocks: the whole six-step
pipeline is invoked ``iterations`` times back to back (the paper notes
its accelerated functions "are invoked repeatedly, possibly from
different sites").  This is what makes FFT the most DMA-hostile workload
in the suite — SCRATCH re-stages the arrays through the host L2 for
every step of every iteration (the paper's DMA/WSet ratio of 165), while
a 64 kB shared L1X retains the entire footprint across invocations.

The computation is real: each iteration applies one unnormalised DFT, so
after k iterations the data equals ``numpy.fft.fft`` applied k times —
the tests verify exactly that.
"""

import math

#: Lease times per function, from Table 3.
LEASES = {"step1": 500, "step2": 700, "step3": 200,
          "step4": 700, "step5": 700, "step6": 500}

DEFAULT_N = 1024
DEFAULT_ITERATIONS = 4


def _bit_reverse(index, bits):
    result = 0
    for _ in range(bits):
        result = (result << 1) | (index & 1)
        index >>= 1
    return result


def _step1_bitrev(tb, re, im, data_re, data_im, n, bits):
    """Bit-reversal permutation (the FFT's shuffle pass)."""
    with tb.function("step1", LEASES["step1"]):
        for i in range(n):
            j = _bit_reverse(i, bits)
            if j <= i:
                continue
            tb.load(re, i)
            tb.load(im, i)
            tb.load(re, j)
            tb.load(im, j)
            tb.compute(int_ops=6)
            tb.store(re, i)
            tb.store(im, i)
            tb.store(re, j)
            tb.store(im, j)
            data_re[i], data_re[j] = data_re[j], data_re[i]
            data_im[i], data_im[j] = data_im[j], data_im[i]


def _butterfly_stages(tb, name, re, im, tw_re, tw_im, data_re, data_im,
                      tw_table, n, stages):
    """Run a group of butterfly stages as one accelerated function."""
    with tb.function(name, LEASES[name]):
        for stage in stages:
            half = 1 << stage          # butterfly span
            step = n // (2 * half)     # twiddle stride
            for start in range(0, n, 2 * half):
                for k in range(half):
                    top = start + k
                    bot = top + half
                    tw_index = k * step
                    tb.load(re, top)
                    tb.load(im, top)
                    tb.load(re, bot)
                    tb.load(im, bot)
                    tb.load(tw_re, tw_index)
                    tb.load(tw_im, tw_index)
                    tb.compute(fp_ops=10, int_ops=6)
                    tb.store(re, top)
                    tb.store(im, top)
                    tb.store(re, bot)
                    tb.store(im, bot)
                    wr, wi = tw_table[tw_index]
                    tr = (data_re[bot] * wr - data_im[bot] * wi)
                    ti = (data_re[bot] * wi + data_im[bot] * wr)
                    data_re[bot] = data_re[top] - tr
                    data_im[bot] = data_im[top] - ti
                    data_re[top] += tr
                    data_im[top] += ti


def build_workload(builder_factory, n=DEFAULT_N,
                   iterations=DEFAULT_ITERATIONS):
    """Build the FFT workload; returns ``(workload, outputs)``.

    ``outputs`` carries the computed spectrum for functional tests.
    """
    bits = int(math.log2(n))
    if 1 << bits != n:
        raise ValueError("FFT size must be a power of two")
    space, tb = builder_factory("fft")
    re = space.alloc("re", n)
    im = space.alloc("im", n)
    tw_re = space.alloc("tw_re", n // 2)
    tw_im = space.alloc("tw_im", n // 2)

    # Deterministic input signal: two tones plus a ramp.
    data_re = [math.sin(2 * math.pi * 5 * i / n)
               + 0.5 * math.cos(2 * math.pi * 31 * i / n)
               + i / n * 0.1 for i in range(n)]
    data_im = [0.0] * n
    input_re = list(data_re)
    input_im = list(data_im)
    tw_table = [(math.cos(-2 * math.pi * k / n),
                 math.sin(-2 * math.pi * k / n)) for k in range(n // 2)]

    stage_groups = _split_stages(bits)
    for _ in range(iterations):
        _step1_bitrev(tb, re, im, data_re, data_im, n, bits)
        for step_index, stages in enumerate(stage_groups, start=2):
            name = "step{}".format(step_index)
            _butterfly_stages(tb, name, re, im, tw_re, tw_im,
                              data_re, data_im, tw_table, n, stages)

    workload = tb.workload(host_inputs=("re", "im", "tw_re", "tw_im"),
                           host_outputs=("re", "im"))
    outputs = {"re": data_re, "im": data_im, "input_re": input_re,
               "input_im": input_im, "n": n, "iterations": iterations}
    return workload, outputs


def _split_stages(bits):
    """Split ``bits`` butterfly stages into five step functions."""
    groups = [[] for _ in range(5)]
    for stage in range(bits):
        groups[min(stage * 5 // bits, 4)].append(stage)
    return groups
