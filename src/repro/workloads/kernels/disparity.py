"""Disparity benchmark (SD-VBS): stereo matching by SAD minimisation.

Pipeline of five accelerated functions (Table 1):

* ``padarray4``  — pad both input images by the maximum shift;
* ``SAD``        — per-pixel absolute difference at one shift;
* ``2D2D``       — 2-D prefix-sum (integral image) of the SAD plane;
* ``finalSAD``   — windowed SAD from the integral image, running
  minimum update (the 71 % load-heavy function of Table 1);
* ``findDisp``   — emit the winning shift per pixel.

SAD/2D2D/finalSAD are invoked once per candidate shift, producing the
repeated producer-consumer hand-offs between accelerators that make
SCRATCH ping-pong data through the host L2.
"""

import random

LEASES = {"padarray4": 500, "SAD": 500, "2D2D": 500,
          "finalSAD": 500, "findDisp": 500}

DEFAULT_WIDTH = 80
DEFAULT_HEIGHT = 60
DEFAULT_SHIFTS = 4
WINDOW = 4


def _pad(tb, src_arr, dst_arr, src, dst, width, height, pad):
    pw = width + 2 * pad
    for y in range(height + 2 * pad):
        for x in range(pw):
            sy, sx = y - pad, x - pad
            inside = 0 <= sy < height and 0 <= sx < width
            if inside:
                tb.load(src_arr, sy * width + sx)
                value = src[sy * width + sx]
            else:
                value = 0
            tb.compute(int_ops=4)
            tb.store(dst_arr, y * pw + x)
            dst[y * pw + x] = value


def build_workload(builder_factory, width=DEFAULT_WIDTH,
                   height=DEFAULT_HEIGHT, shifts=DEFAULT_SHIFTS):
    """Build the disparity workload; returns ``(workload, outputs)``."""
    space, tb = builder_factory("disparity")
    pad = shifts
    pw, ph = width + 2 * pad, height + 2 * pad
    npx, npad = width * height, pw * ph

    left = space.alloc("left", npx, elem_size=1)
    right = space.alloc("right", npx, elem_size=1)
    pleft = space.alloc("pleft", npad, elem_size=1)
    pright = space.alloc("pright", npad, elem_size=1)
    sad = space.alloc("sad", npad, elem_size=2)
    integral = space.alloc("integral", npad)
    min_sad = space.alloc("min_sad", npad)
    ret_disp = space.alloc("ret_disp", npx, elem_size=1)

    rng = random.Random(7)
    left_v = [rng.randrange(256) for _ in range(npx)]
    # The right image is the left shifted by a ground-truth disparity.
    true_shift = 2
    right_v = [left_v[y * width + max(0, x - true_shift)]
               for y in range(height) for x in range(width)]
    pleft_v = [0] * npad
    pright_v = [0] * npad
    integral_v = [0] * npad
    min_sad_v = [float("inf")] * npad
    disp_v = [0] * npx

    # -- padarray4: both images padded in one invocation (SD-VBS calls it
    # per image on the same accelerator; one invocation keeps the trace
    # compact without changing the sharing pattern) ------------------------
    tb.begin_function("padarray4", LEASES["padarray4"])
    _pad(tb, left, pleft, left_v, pleft_v, width, height, pad)
    _pad(tb, right, pright, right_v, pright_v, width, height, pad)
    tb.end_function()

    sad_v = [0] * npad
    for shift in range(1, shifts + 1):
        # -- SAD at this shift ---------------------------------------------
        tb.begin_function("SAD", LEASES["SAD"])
        for y in range(ph):
            for x in range(pw):
                i = y * pw + x
                # The right camera sees each left pixel displaced by the
                # disparity, so candidate matches sit at x + shift.
                xr = min(pw - 1, x + shift)
                tb.load(pleft, i)
                tb.load(pright, y * pw + xr)
                tb.compute(int_ops=3)
                tb.store(sad, i)
                sad_v[i] = abs(pleft_v[i] - pright_v[y * pw + xr])
        tb.end_function()

        # -- 2D2D integral image ----------------------------------------------
        tb.begin_function("2D2D", LEASES["2D2D"])
        for y in range(ph):
            for x in range(pw):
                i = y * pw + x
                tb.load(sad, i)
                acc = sad_v[i]
                if x > 0:
                    tb.load(integral, i - 1)
                    acc += integral_v[i - 1]
                if y > 0:
                    tb.load(integral, i - pw)
                    acc += integral_v[i - pw]
                if x > 0 and y > 0:
                    tb.load(integral, i - pw - 1)
                    acc -= integral_v[i - pw - 1]
                tb.compute(int_ops=3)
                tb.store(integral, i)
                integral_v[i] = acc
        tb.end_function()

        # -- finalSAD: windowed SAD + running minimum ---------------------------
        tb.begin_function("finalSAD", LEASES["finalSAD"])
        for y in range(WINDOW, ph):
            for x in range(WINDOW, pw):
                i = y * pw + x
                tb.load(integral, i)
                tb.load(integral, i - WINDOW)
                tb.load(integral, i - WINDOW * pw)
                tb.load(integral, i - WINDOW * pw - WINDOW)
                tb.load(min_sad, i)
                tb.compute(int_ops=6)
                window_sad = (integral_v[i]
                              - integral_v[i - WINDOW]
                              - integral_v[i - WINDOW * pw]
                              + integral_v[i - WINDOW * pw - WINDOW])
                if window_sad < min_sad_v[i]:
                    tb.store(min_sad, i)
                    min_sad_v[i] = window_sad
                    py, px = y - pad, x - pad
                    if 0 <= py < height and 0 <= px < width:
                        tb.store(ret_disp, py * width + px)
                        disp_v[py * width + px] = shift
        tb.end_function()

    # -- findDisp: scale winning shifts to the 8-bit output range -------------
    tb.begin_function("findDisp", LEASES["findDisp"])
    for i in range(npx):
        tb.load(ret_disp, i)
        tb.compute(int_ops=2, fp_ops=2)
        tb.store(ret_disp, i)
        disp_v[i] = disp_v[i] * 255 // shifts
    tb.end_function()

    workload = tb.workload(host_inputs=("left", "right"),
                           host_outputs=("ret_disp",))
    outputs = {"disparity": disp_v, "true_shift": true_shift,
               "shifts": shifts, "width": width, "height": height}
    return workload, outputs
