"""FUSION-Dx forwarding post-pass.

The paper's simulation is trace driven: "we post process the trace to
identify the stores to be forwarded from the producer to the consumer
accelerator" (Section 3.2).  This module is that post-pass: for each
invocation it finds the blocks it dirties that the *next* invocation on
a *different* accelerator reads before writing — exactly the
producer-consumer hand-offs whose writeback + re-read the forwarding
optimisation elides.
"""

from ..common.types import MemOp


def _first_access_kind(trace):
    """Map block -> the first access kind in ``trace``."""
    first = {}
    for op in trace.ops:
        if isinstance(op, MemOp) and op.block not in first:
            first[op.block] = op.kind
    return first


def forwarding_plan(workload):
    """Compute the per-invocation forwarding plan.

    Returns ``{invocation_index: [(block, consumer_axc_id), ...]}`` where
    the producer invocation should push each dirty ``block`` into the
    consumer accelerator's L0X instead of writing it back to the L1X.
    """
    from ..common.types import AccessType
    plan = {}
    invocations = workload.invocations
    for index, producer in enumerate(invocations[:-1]):
        consumer = invocations[index + 1]
        producer_axc = workload.axc_of(producer.name)
        consumer_axc = workload.axc_of(consumer.name)
        if producer_axc == consumer_axc:
            continue
        consumed_first = _first_access_kind(consumer)
        entries = []
        for block in sorted(producer.dirty_blocks()):
            if consumed_first.get(block) is AccessType.LOAD:
                entries.append((block, consumer_axc))
        if entries:
            plan[index] = entries
    return plan


def total_forwarded(plan):
    """Total number of forwarded blocks in a plan (Table 5 column 1)."""
    return sum(len(entries) for entries in plan.values())
