"""FUSION-Dx: FUSION plus direct L0X-to-L0X write forwarding.

The trace post-pass (:mod:`repro.workloads.forwarding`) identifies the
producer-consumer stores; at the end of each producer invocation the
listed dirty lines are pushed straight into the consumer accelerator's
L0X over the cheap 0.1 pJ/byte forwarding link, carrying their existing
lease.  Each forwarded line saves one writeback to the L1X, one epoch
request, and one L1X read + line response (Table 5's accounting), at
the price of one L0X->L0X transfer.
"""

from .fusion import FusionSystem


class FusionDxSystem(FusionSystem):
    """FUSION with ACC write forwarding enabled."""

    name = "FUSION-Dx"
    strategy_key = "fusion-dx"
