"""Pipelined FUSION: overlap data-independent invocations across AXCs.

The evaluated FUSION runs the sequential program's invocations back to
back (execution migrates between accelerators).  The tile, however, has
several accelerators sitting idle — and many invocations are mutually
data-independent (see :mod:`repro.workloads.dependence`).  This system
is the natural next step the paper's Figure 5 timeline gestures at:
invocations whose traces touch disjoint data run *concurrently*, each
on its own AXC, interleaved over the shared L1X.

Scheduling is conservative and therefore correct under ACC's
sequential-consistency semantics: an invocation starts only after every
invocation it depends on (block-granularity RAW/WAW/WAR, plus same-AXC
program order) has completed and flushed, so no concurrent pair ever
races on a block — the shared L1X sees their interleaved, independent
epochs, which is exactly what ACC was built for.
"""

import heapq

from ..workloads.dependence import invocation_dependences
from .fusion import FusionSystem


class _Job:
    """One in-flight invocation being stepped by the scheduler."""

    __slots__ = ("index", "axc", "generator", "now", "done", "end",
                 "start", "snapshot")

    def __init__(self, index, axc, generator, start):
        self.index = index
        self.axc = axc
        self.generator = generator
        self.now = start
        self.done = False
        self.end = None

    def step(self):
        """Advance one memory op; returns False once complete."""
        try:
            self.now = next(self.generator)
            return True
        except StopIteration as stop:
            self.end = stop.value
            self.done = True
            return False

    def __lt__(self, other):
        return (self.now, self.index) < (other.now, other.index)


class PipelinedFusionSystem(FusionSystem):
    """FUSION with dependence-aware invocation overlap."""

    name = "FUSION-PIPE"

    def _build(self):
        super()._build()
        self._deps = invocation_dependences(self.workload)

    def run(self):
        # The host phases and result assembly are inherited behaviour;
        # only the accelerated region's schedule changes, so this
        # overrides the base run() with a scheduler loop.
        from ..sim.results import RunResult
        now = 0
        for base, size in self.workload.array_ranges.values():
            now = self.host_core.produce(base, size, now)
        produce_snapshot = self.stats.snapshot()
        accel_start = now
        end_of = self._schedule(start=now)
        now = max(end_of.values(), default=now)
        accel_cycles = now - accel_start
        for base, size in self.workload.host_output_arrays:
            now = self.host_core.consume(base, size, now)
        return RunResult.from_system(self, accel_cycles=accel_cycles,
                                     total_cycles=now,
                                     energy_baseline=produce_snapshot)

    # -- the scheduler ------------------------------------------------------

    def _schedule(self, start):
        """Run every invocation as early as its dependences allow.

        Returns ``{invocation_index: end_time}``.
        """
        invocations = self.workload.invocations
        end_of = {}
        started = set()
        active = []  # heap of _Job ordered by local time
        busy_axcs = set()

        def try_start(current_time):
            for index, trace in enumerate(invocations):
                if index in started:
                    continue
                deps = self._deps[index]
                if not deps <= end_of.keys():
                    continue
                axc = self._axc_of(trace)
                if axc in busy_axcs:
                    continue
                ready_at = max([current_time]
                               + [end_of[i] for i in deps])
                self._launch(index, trace, axc, ready_at, active)
                started.add(index)
                busy_axcs.add(axc)

        try_start(start)
        while active:
            # Step the job with the smallest local clock so shared-L1X
            # state mutations stay (approximately) time ordered.
            job = heapq.heappop(active)
            if job.step():
                heapq.heappush(active, job)
                continue
            end = self._finish(job)
            end_of[job.index] = end
            busy_axcs.discard(job.axc)
            try_start(end)
        return end_of

    def _launch(self, index, trace, axc, start, active):
        l0x = self.tile.l0xs[axc]
        lease = (self.config.tile.lease_override or trace.lease_time
                 or self.config.tile.default_lease)
        snapshot = self.stats.snapshot()
        # One job per AXC at a time (busy_axcs), so binding the lease on
        # the controller is race-free even with interleaved invocations.
        l0x.invocation_lease = lease

        generator = self.tile.cores[axc].iter_run(
            trace, start, l0x.access, self._mlp(trace))
        job = _Job(index, axc, generator, start)
        job.start = start
        job.snapshot = snapshot
        heapq.heappush(active, job)

    def _finish(self, job):
        trace = self.workload.invocations[job.index]
        l0x = self.tile.l0xs[job.axc]
        end = job.end + l0x.flush_dirty(job.end)
        self._record_invocation(job.index, trace, end - job.start,
                                job.snapshot)
        return end
