"""Common run skeleton shared by the four evaluated systems.

Every system executes the same three-act script the paper's Figure 1
motivates:

1. the host produces the input arrays (filling the LLC/host L1);
2. the sequential program migrates across the accelerators — one
   invocation at a time, in program order;
3. the host consumes the output arrays (``step3()`` running in
   software), incrementally pulling data back through MESI.

Systems differ only in act 2 (and in how act 3's host reads find the
data: DMA-ed back to the L2, or forwarded out of the tile).
"""

import abc

from ..accel import replay as replay_mod
from ..common.stats import StatsRegistry
from ..coherence.mesi import HostMemorySystem
from ..host.core import HostCore
from ..mem.tlb import PageTable
from ..sim.results import RunResult
from ..workloads.characterize import function_mlp


class BaseSystem(abc.ABC):
    """One simulated system design bound to one workload."""

    #: Short system name used in figures ("SC", "SH", "FU", "FU-Dx").
    name = "base"

    def __init__(self, config, workload):
        self.config = config
        self.workload = workload
        self.stats = StatsRegistry()
        self.page_table = PageTable()
        self.host_mem = HostMemorySystem(config, self.stats)
        self.host_core = HostCore(config, self.host_mem, self.page_table,
                                  self.stats)
        self.mlp_of = function_mlp(workload)
        self.replay_engine = None
        self._build()

    @abc.abstractmethod
    def _build(self):
        """Construct the tile-side components for this design."""

    @abc.abstractmethod
    def _run_invocation(self, index, trace, now):
        """Run one accelerated-function invocation; return its end time."""

    def run(self):
        """Execute the whole workload; returns a :class:`RunResult`."""
        now = 0
        # Act 1: the host allocates (calloc) every buffer and fills the
        # inputs, staging the working set in its LLC — identically for
        # every design, and excluded from the accelerator-region energy.
        for base, size in self.workload.array_ranges.values():
            now = self.host_core.produce(base, size, now)
        produce_snapshot = self.stats.snapshot()
        accel_start = now
        engine = self._make_replay_engine()
        self.replay_engine = engine
        if engine is not None:
            # Top rung of the fallback ladder: serve whole invocations
            # from the guarded replay cache (docs/simulator.md §11).
            for index, trace in enumerate(self.workload.invocations):
                now = engine.run_invocation(index, trace, now)
        else:
            for index, trace in enumerate(self.workload.invocations):
                per_invocation_start = self.stats.snapshot()
                end = self._run_invocation(index, trace, now)
                self._record_invocation(index, trace, end - now,
                                        per_invocation_start)
                now = end
        accel_cycles = now - accel_start
        for base, size in self.workload.host_output_arrays:
            now = self.host_core.consume(base, size, now)
        return RunResult.from_system(self, accel_cycles=accel_cycles,
                                     total_cycles=now,
                                     energy_baseline=produce_snapshot)

    def _record_invocation(self, index, trace, cycles, start_snapshot):
        """Attribute cycles and energy to the function (Table 3 rows)."""
        delta = self.stats.diff(start_snapshot)
        energy = sum(value for key, value in delta.items()
                     if key.endswith("energy_pj"))
        self.stats.add("invocation.{}.cycles".format(trace.name), cycles)
        self.stats.add("invocation.{}.energy_pj".format(trace.name), energy)
        self.stats.add("invocation.{}.count".format(trace.name))

    # -- invocation replay (top fallback-ladder rung) --------------------------

    def _replay_adapter(self):
        """Return the system's replay guard adapter, or ``None``.

        ``None`` (the default) opts the system out of the invocation
        replay rung entirely; subclasses override to supply an adapter
        when their configuration is guardable.
        """
        return None

    def _make_replay_engine(self):
        if not replay_mod.REPLAY_INVOCATIONS:
            return None
        adapter = self._replay_adapter()
        if adapter is None:
            return None
        return replay_mod.InvocationReplayEngine(self, adapter)

    # -- helpers for subclasses ------------------------------------------------

    def _axc_of(self, trace):
        return self.workload.axc_of(trace.name)

    def _mlp(self, trace):
        return self.mlp_of.get(trace.name, 2.0)
