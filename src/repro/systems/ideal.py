"""IDEAL: a zero-cost memory-hierarchy upper bound.

Not one of the paper's designs — an analysis tool.  Every accelerator
memory operation completes in one cycle with zero hierarchy energy
(compute energy is still charged).  The gap between any real design and
IDEAL is exactly that design's data-movement cost, which makes IDEAL the
natural denominator for "how much of the accelerator's potential does
this hierarchy deliver?" studies (see ``examples`` and the efficiency
ablation).
"""

from ..accel.core import AxcCore
from ..accel.replay import IdealReplayAdapter
from .base import BaseSystem


class IdealSystem(BaseSystem):
    """Single-cycle, zero-energy memory: the data-movement-free bound."""

    name = "IDEAL"

    def _build(self):
        self.cores = [AxcCore(i, self.stats)
                      for i in range(self.workload.num_axcs)]

    @staticmethod
    def _free_access(op, now):
        return 1

    @staticmethod
    def _free_access_run(op, count, now, horizon, interval):
        return 1

    @staticmethod
    def _free_phase_quote(phase, now, horizon, interval):
        return 1, 1

    @staticmethod
    def _free_phase_quote_batch(window, now, horizon, interval):
        # No guard can fail and no hierarchy counters exist, so every
        # window is accepted whole at the free per-op latency.
        return len(window.phases), 1, 1

    def _replay_adapter(self):
        return IdealReplayAdapter(self)

    def _run_invocation(self, index, trace, now):
        core = self.cores[self._axc_of(trace)]
        return core.run(trace, now, self._free_access, self._mlp(trace),
                        access_run=self._free_access_run,
                        phase_quote=self._free_phase_quote,
                        phase_quote_batch=self._free_phase_quote_batch,
                        leased_phases=False)
