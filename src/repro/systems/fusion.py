"""FUSION: the paper's proposed multi-level coherent accelerator hierarchy.

Per-accelerator private L0X caches (scratchpad-sized, write-caching) over
a banked shared L1X, kept coherent inside the tile by the timestamp-based
ACC protocol and integrated with host MESI at the L1X (MEI states,
AX-TLB on the miss path, AX-RMAP for forwarded requests).  The L0X
captures each function's locality at scratchpad-like cost (Lessons 2-3);
the L1X captures inter-function sharing without any DMA ping-pong
(Lesson 1); coherence is maintained without invalidation traffic.
"""

from ..accel.replay import AccTileReplayAdapter
from ..accel.tile import AcceleratorTile
from ..common.config import WritePolicy
from .base import BaseSystem


class FusionSystem(BaseSystem):
    """FUSION (L0X + L1X under ACC)."""

    name = "FUSION"

    def _build(self):
        self.tile = AcceleratorTile(
            self.config, self.host_mem, self.page_table,
            self.workload.num_axcs, self.stats)

    def _forward_plan_for(self, index):
        """FUSION proper never forwards; FUSION-Dx overrides this."""
        return None

    def _replay_adapter(self):
        tile = self.config.tile
        if (tile.model_bank_conflicts
                or tile.lease_policy != "fixed"
                or tile.l0x.write_policy is not WritePolicy.WRITE_BACK):
            # Bank busy-until times are absolute (not translation
            # invariant), adaptive leases carry cross-invocation policy
            # state, and write-through L0X reads L1X write epochs with
            # no state diff to sign — decline the replay rung.
            return None
        return AccTileReplayAdapter(self)

    def _run_invocation(self, index, trace, now):
        lease = self.config.tile.lease_override or trace.lease_time
        return self.tile.run_invocation(
            self._axc_of(trace), trace, now, self._mlp(trace),
            lease=lease,
            forward_plan=self._forward_plan_for(index))
