"""FUSION: the paper's proposed multi-level coherent accelerator hierarchy.

Per-accelerator private L0X caches (scratchpad-sized, write-caching) over
a banked shared L1X, kept coherent inside the tile by the timestamp-based
ACC protocol and integrated with host MESI at the L1X (MEI states,
AX-TLB on the miss path, AX-RMAP for forwarded requests).  The L0X
captures each function's locality at scratchpad-like cost (Lessons 2-3);
the L1X captures inter-function sharing without any DMA ping-pong
(Lesson 1); coherence is maintained without invalidation traffic.

The machinery lives in
:class:`repro.coherence.strategy.BoundFusionTile`; this class is the
static preset over it, and FUSION-Dx / FUSION-PIPE subclass it.
"""

from .preset import StrategyPresetSystem


class FusionSystem(StrategyPresetSystem):
    """FUSION (L0X + L1X under ACC)."""

    name = "FUSION"
    strategy_key = "fusion"

    def _mirror(self, bound):
        self.tile = bound.tile

    def _forward_plan_for(self, index):
        """Forward plan of invocation ``index`` (None for FUSION proper;
        the replay adapter keys its recordings on this)."""
        return self._bound.forward_plan_for(self._strategy, index)
