"""The SHARED baseline: one L1X shared by every accelerator in the tile.

Models the at-the-core / coprocessor-dominated designs (Dyser, Zheng et
al.): no private caches — every accelerator memory operation crosses the
tile switch to the banked shared cache, which participates in MESI as an
ordinary L1.  Great at filtering the L2 (Lesson 1), but every access
pays the switch + shared-cache latency and the request/response link
energy (Lessons 2 and 4).

The machinery lives in
:class:`repro.coherence.strategy.BoundSharedL1X`; this class is the
static preset over it.
"""

from .preset import StrategyPresetSystem


class SharedSystem(StrategyPresetSystem):
    """Shared-L1X design."""

    name = "SHARED"
    strategy_key = "shared"

    def _mirror(self, bound):
        self.l1x = bound.l1x
        self.cores = bound.cores
