"""The SHARED baseline: one L1X shared by every accelerator in the tile.

Models the at-the-core / coprocessor-dominated designs (Dyser, Zheng et
al.): no private caches — every accelerator memory operation crosses the
tile switch to the banked shared cache, which participates in MESI as an
ordinary L1.  Great at filtering the L2 (Lesson 1), but every access
pays the switch + shared-cache latency and the request/response link
energy (Lessons 2 and 4).
"""

from ..accel.core import AxcCore
from ..accel.replay import SharedL1XReplayAdapter
from ..coherence.shared_l1 import ISSUE_INTERVAL, SharedL1XController
from ..interconnect.link import Link
from .base import BaseSystem


class SharedSystem(BaseSystem):
    """Shared-L1X design."""

    name = "SHARED"

    def _build(self):
        self.l1x = SharedL1XController(self.config, self.host_mem,
                                       self.page_table, self.stats)
        self.l1x.axc_link = Link(
            "axc_l1x", self.config.link.axc_l1x_pj_per_byte, self.stats)
        self.host_mem.tile_agent = self.l1x
        self.cores = [AxcCore(i, self.stats)
                      for i in range(self.workload.num_axcs)]

    def _replay_adapter(self):
        if self.config.tile.model_bank_conflicts:
            # Bank busy-until times are absolute; not replayable.
            return None
        return SharedL1XReplayAdapter(self)

    def _run_invocation(self, index, trace, now):
        core = self.cores[self._axc_of(trace)]
        return core.run(trace, now, self.l1x.access, self._mlp(trace),
                        issue_interval=ISSUE_INTERVAL,
                        access_run=self.l1x.access_run,
                        phase_quote=self.l1x.phase_quote,
                        phase_quote_batch=self.l1x.phase_quote_batch,
                        leased_phases=False)
