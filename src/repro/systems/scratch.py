"""The SCRATCH baseline: per-accelerator scratchpads fed by oracle DMA.

This models the ARM/IBM-style coherent-DMA integration (Section 2.1):
each accelerator owns a small scratchpad; before each execution window
the DMA engine pushes exactly the blocks the window will read from the
LLC, and after it drains exactly the dirty blocks back.  Data shared
between accelerators ping-pongs through the host L2 — the pathological
traffic Figure 6d quantifies (DMA kB many times the working set).
"""

from ..accel.core import AxcCore
from ..accel.replay import ScratchReplayAdapter
from ..host.dma import OracleDmaController, ScratchpadAccessModel, \
    windows_for
from ..mem.scratchpad import Scratchpad
from .base import BaseSystem


class ScratchSystem(BaseSystem):
    """Oracle-DMA scratchpad design (the paper's normalisation baseline)."""

    name = "SCRATCH"

    def _build(self):
        num_axcs = self.workload.num_axcs
        self.scratchpads = [
            Scratchpad(self.config.tile.scratchpad,
                       name="sp{}".format(i))
            for i in range(num_axcs)
        ]
        self.access_models = [
            ScratchpadAccessModel(self.config, sp, self.stats)
            for sp in self.scratchpads
        ]
        self.cores = [AxcCore(i, self.stats) for i in range(num_axcs)]
        self.dma = OracleDmaController(self.config, self.host_mem,
                                       self.page_table, self.stats)
        # Push-based DMA double-buffers: half the scratchpad holds the
        # live window while the other half stages the next transfer, so
        # a window may only pin half the blocks.
        blocks = self.config.tile.scratchpad.num_blocks
        if self.config.dma.double_buffered:
            blocks //= 2
        self._capacity = max(1, blocks)

    def _replay_adapter(self):
        return ScratchReplayAdapter(self)

    def _run_invocation(self, index, trace, now):
        axc = self._axc_of(trace)
        scratchpad = self.scratchpads[axc]
        model = self.access_models[axc]
        core = self.cores[axc]
        mlp = self._mlp(trace)
        windows = windows_for(trace, self._capacity)
        self.stats.add("dma.windows", len(windows))
        for window_index, window in enumerate(windows):
            now += self.dma.transfer_in(window.in_blocks, scratchpad, now)
            now = core.run(window.trace, now, model.access, mlp,
                           charge_invocation=(window_index == 0),
                           access_run=model.access_run,
                           phase_quote=model.phase_quote,
                           phase_quote_batch=model.phase_quote_batch,
                           leased_phases=False)
            dirty = scratchpad.drain()
            now += self.dma.transfer_out(dirty, now)
        return now
