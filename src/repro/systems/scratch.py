"""The SCRATCH baseline: per-accelerator scratchpads fed by oracle DMA.

This models the ARM/IBM-style coherent-DMA integration (Section 2.1):
each accelerator owns a small scratchpad; before each execution window
the DMA engine pushes exactly the blocks the window will read from the
LLC, and after it drains exactly the dirty blocks back.  Data shared
between accelerators ping-pongs through the host L2 — the pathological
traffic Figure 6d quantifies (DMA kB many times the working set).

The machinery lives in
:class:`repro.coherence.strategy.BoundScratchpadDma`; this class is the
static preset over it.
"""

from .preset import StrategyPresetSystem


class ScratchSystem(StrategyPresetSystem):
    """Oracle-DMA scratchpad design (the paper's normalisation baseline)."""

    name = "SCRATCH"
    strategy_key = "scratch"

    def _mirror(self, bound):
        self.scratchpads = bound.scratchpads
        self.access_models = bound.access_models
        self.cores = bound.cores
        self.dma = bound.dma
        self._capacity = bound.capacity
