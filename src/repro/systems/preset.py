"""Thin system presets over :mod:`repro.coherence.strategy`.

The paper's evaluated designs used to be four parallel implementations;
they are now one-line presets that bind a single
:class:`~repro.coherence.strategy.CoherenceStrategy` for every
invocation.  The policy system (:mod:`repro.systems.policy`) uses the
same machinery with a per-invocation selector instead of a fixed key —
the golden grids pin that this indirection is bit-identical to the
legacy implementations.
"""

from ..coherence.strategy import bind_context, make_strategy
from .base import BaseSystem


class StrategyPresetSystem(BaseSystem):
    """A system that runs every invocation under one fixed strategy."""

    #: Strategy key bound at construction (see ``make_strategy``).
    strategy_key = None

    def _build(self):
        self._strategy = make_strategy(self.strategy_key)
        self._bound = self._strategy.bind(bind_context(self))
        self._mirror(self._bound)

    def _mirror(self, bound):
        """Expose the bound machinery under the legacy attribute names
        (replay adapters, subclasses, and tests reach for them)."""

    def _replay_adapter(self):
        return self._bound.replay_adapter(self, self._strategy)

    def _run_invocation(self, index, trace, now):
        return self._bound.run(self._strategy, index, trace, now,
                               axc=self._axc_of(trace),
                               mlp=self._mlp(trace))
