"""Multi-tile FUSION: one accelerator tile per application.

Section 3.1: "The system can support multiple accelerator tiles."  The
paper evaluates one tile and collocates each application's accelerators
on it; the natural SoC-provisioning question is what changes when
co-resident applications get a tile *each* instead of time-sharing one
(:class:`repro.systems.multitenant.MultiTenantFusionSystem`):

* no shared-L1X interference — the PID-conflict evictions disappear
  (each tile's virtually indexed caches see one process);
* each tile is its own MESI agent at the host L2; inter-tile
  exclusivity is enforced by the directory (a fetch for one tile
  recalls any other tile's copy — unused here because processes never
  share frames, but exercised by the tests);
* double the tile SRAM area and leakage (see ``repro.energy.area``).

Each tile's statistics are namespaced (``tile0.l1x.*``, ...); the
energy accounting layer folds the namespaces back into the standard
components.
"""

from ..accel.tile import AcceleratorTile
from ..common.stats import StatsRegistry
from ..coherence.mesi import HostMemorySystem
from ..host.core import HostCore
from ..mem.tlb import PageTable
from ..sim.results import RunResult
from ..workloads.characterize import function_mlp


class MultiTileFusionSystem:
    """FUSION with one tile (and one process) per workload."""

    name = "FUSION-2T"

    def __init__(self, config, workloads):
        if not workloads:
            raise ValueError("at least one workload required")
        self.config = config
        self.workloads = list(workloads)
        self.stats = StatsRegistry()
        self.host_mem = HostMemorySystem(config, self.stats)
        self.page_tables = [PageTable(pid=pid)
                            for pid in range(len(self.workloads))]
        self.host_cores = [
            HostCore(config, self.host_mem, page_table, self.stats)
            for page_table in self.page_tables
        ]
        self.tiles = [
            AcceleratorTile(config, self.host_mem,
                            self.page_tables[index],
                            workload.num_axcs,
                            self.stats.scope("tile{}".format(index)),
                            name="tile{}".format(index))
            for index, workload in enumerate(self.workloads)
        ]
        # Each tile serves exactly one process.
        for index, tile in enumerate(self.tiles):
            for l0x in tile.l0xs:
                l0x.pid = index
        self._mlp = [function_mlp(w) for w in self.workloads]

    def _interleaved(self):
        cursors = [0] * len(self.workloads)
        remaining = sum(len(w.invocations) for w in self.workloads)
        while remaining:
            for index, workload in enumerate(self.workloads):
                if cursors[index] < len(workload.invocations):
                    yield index, workload.invocations[cursors[index]]
                    cursors[index] += 1
                    remaining -= 1

    def run(self):
        """Execute all workloads, one tile each; returns a RunResult."""
        now = 0
        for index, workload in enumerate(self.workloads):
            for base, size in workload.array_ranges.values():
                now = self.host_cores[index].produce(base, size, now)
        produce_snapshot = self.stats.snapshot()
        accel_start = now
        for index, trace in self._interleaved():
            tile = self.tiles[index]
            axc = self.workloads[index].axc_of(trace.name)
            mlp = self._mlp[index].get(trace.name, 2.0)
            now = tile.run_invocation(axc, trace, now, mlp,
                                      lease=trace.lease_time)
        accel_cycles = now - accel_start
        for index, workload in enumerate(self.workloads):
            for base, size in workload.host_output_arrays:
                now = self.host_cores[index].consume(base, size, now)
        self.workload = _MergedView(self.workloads)
        return RunResult.from_system(self, accel_cycles=accel_cycles,
                                     total_cycles=now,
                                     energy_baseline=produce_snapshot)


class _MergedView:
    """Just enough of a WorkloadTrace for result reporting."""

    def __init__(self, workloads):
        self.benchmark = "|".join(w.benchmark for w in workloads)
