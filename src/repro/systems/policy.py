"""POLICY: per-invocation coherence-strategy selection.

Instead of fixing one coherence design for the whole run, this system
consults a selector (:mod:`repro.policy.selectors`) at every invocation
boundary and binds the chosen :class:`CoherenceStrategy` — scratchpad
DMA, shared L1X, or a FUSION lease variant — through a
:class:`~repro.coherence.strategy.StrategyBinder` that lazily builds at
most one machinery instance per family.  Mixed-family runs stay
coherent because every cache family is a named host-directory agent and
the DMA paths recall tile copies (see :mod:`repro.coherence.strategy`).

With the static selector the run is bit-identical to the corresponding
legacy system (same machinery, same construction order — gated by the
golden-equivalence tests); the schedule selector replays an explicit
per-invocation assignment (the oracle evaluator's vehicle); the bandit
selectors learn from :class:`InvocationTelemetry` online.

Telemetry-recording runs additionally publish per-invocation cycle
counters (``policy.inv.<index>.cycles``) and per-strategy invocation
counts (``policy.strategy.<key>.invocations``) so the oracle evaluator
can read per-invocation costs out of cached :class:`RunResult` stats.
The system opts out of the invocation-replay ladder rung: selection is
cross-invocation state the replay guard does not sign.
"""

from ..coherence.lease_policy import CountingLeasePolicy
from ..coherence.strategy import StrategyBinder, bind_context
from .base import BaseSystem


class PolicySystem(BaseSystem):
    """Per-invocation strategy selection over lazily-bound machinery."""

    name = "POLICY"

    def __init__(self, config, workload, selector=None):
        #: Pre-built selector (in-process bandit training hands the
        #: same learning selector to several runs); None means build
        #: one from ``config.policy``.
        self._injected_selector = selector
        super().__init__(config, workload)

    def _build(self):
        # Lazy import: repro.policy pulls in the sim engine, which
        # imports the systems registry (and therefore this module).
        from ..policy.selectors import make_selector
        from ..workloads.characterize import invocation_features
        self.binder = StrategyBinder(bind_context(self))
        self.selector = (self._injected_selector
                         if self._injected_selector is not None
                         else make_selector(self.config.policy,
                                            self.workload))
        self._recording = (self.config.policy.record_telemetry
                           or self.selector.records_telemetry)
        #: InvocationTelemetry records, program order (recording runs).
        self.telemetry = []
        self._features = (invocation_features(self.workload)
                          if self._recording else None)
        #: Shared lease-event counts fed by CountingLeasePolicy wraps.
        self._lease_counts = {"renewal_misses": 0, "wasted_leases": 0}
        self._counted_tiles = set()

    def _instrument_lease_policies(self, bound):
        """Wrap the bound fusion tile's L0X lease policies (once) so
        telemetry sees lease expiries without new controller counters."""
        if id(bound) in self._counted_tiles:
            return
        self._counted_tiles.add(id(bound))
        for l0x in bound.tile.l0xs:
            l0x.lease_policy = CountingLeasePolicy(
                l0x.lease_policy, self._lease_counts)

    def _run_invocation(self, index, trace, now):
        from ..policy.telemetry import telemetry_from_delta
        strategy = self.selector.select(index, trace)
        bound = self.binder.bind(strategy)
        if not self._recording:
            end = bound.run(strategy, index, trace, now,
                            axc=self._axc_of(trace),
                            mlp=self._mlp(trace))
            self.selector.observe(index, trace, strategy, end - now,
                                  None)
            return end
        if strategy.family == "fusion":
            self._instrument_lease_policies(bound)
        before = self.stats.snapshot()
        expiries_before = self._lease_counts["renewal_misses"]
        wasted_before = self._lease_counts["wasted_leases"]
        end = bound.run(strategy, index, trace, now,
                        axc=self._axc_of(trace), mlp=self._mlp(trace))
        cycles = end - now
        reuse, footprint = self._features[index]
        record = telemetry_from_delta(
            index, trace, strategy.key, cycles,
            self.stats.diff(before),
            reuse_distance=reuse, footprint_blocks=footprint,
            lease_expiries=(self._lease_counts["renewal_misses"]
                            - expiries_before),
            wasted_leases=(self._lease_counts["wasted_leases"]
                           - wasted_before))
        self.telemetry.append(record)
        # Published stats (keys deliberately avoid the energy_pj /
        # stall_cycles suffixes the delta extractors aggregate on).
        self.stats.add("policy.inv.{}.cycles".format(index), cycles)
        self.stats.add(
            "policy.strategy.{}.invocations".format(strategy.key))
        self.selector.observe(index, trace, strategy, cycles, record)
        return end
