"""Multi-tenant FUSION: two processes' accelerators on one tile.

Section 3.2: "Process id (PID) tags are added to the L0Xs and L1Xs to
ensure that accelerators executing functions from different processes
can co-exist on the same tile", and the Appendix forbids cross-process
data sharing.  This system exercises exactly that: each workload gets
its own page table, PID, and accelerator set; the shared, virtually
indexed L1X is PID-tagged, so same-virtual-address lines from different
processes conflict (counted as ``l1x.pid_conflicts``) instead of
aliasing.

The sequential programs time-share the tile: their invocation streams
interleave round-robin, the OS-level context-switch granularity the
paper's offloading model implies.

Tenants may also run different :class:`CoherenceStrategy` objects on
one tile (the ``strategies`` argument): fusion-family tenants share the
PID-tagged tile with per-tenant lease lengths and forwarding plans,
while scratch/shared tenants bind their own machinery against their own
page table, registered with the host directory under a per-tenant agent
name — the DMA recall paths and named-agent forwards keep the mix
coherent.  (Non-fusion tenant machinery reuses the standard stats
scopes, so e.g. a shared-L1X tenant's counters merge into ``l1x.*``
alongside the tile's.)
"""

from ..accel.tile import AcceleratorTile
from ..coherence.strategy import BindContext, make_strategy
from ..common.stats import StatsRegistry
from ..coherence.mesi import HostMemorySystem
from ..host.core import HostCore
from ..mem.tlb import PageTable
from ..sim.results import RunResult
from ..workloads.characterize import function_mlp
from ..workloads.forwarding import forwarding_plan


class MultiTenantFusionSystem:
    """FUSION with several workloads co-resident on one tile."""

    name = "FUSION-MT"

    def __init__(self, config, workloads, strategies=None):
        if not workloads:
            raise ValueError("at least one workload required")
        self.config = config
        self.workloads = list(workloads)
        self.stats = StatsRegistry()
        self.host_mem = HostMemorySystem(config, self.stats)
        self.page_tables = [PageTable(pid=pid)
                            for pid in range(len(self.workloads))]
        self.host_cores = [
            HostCore(config, self.host_mem, page_table, self.stats)
            for page_table in self.page_tables
        ]
        total_axcs = sum(w.num_axcs for w in self.workloads)
        self.tile = AcceleratorTile(config, self.host_mem,
                                    self.page_tables[0], total_axcs,
                                    self.stats)
        for page_table in self.page_tables[1:]:
            self.tile.l1x.register_process(page_table)
        # Each process owns a contiguous slice of the tile's AXCs.
        self._axc_base = []
        base = 0
        for pid, workload in enumerate(self.workloads):
            self._axc_base.append(base)
            for axc in range(base, base + workload.num_axcs):
                self.tile.l0xs[axc].pid = pid
            base += workload.num_axcs
        self._mlp = [function_mlp(w) for w in self.workloads]
        # Per-tenant coherence strategies (None = every tenant runs the
        # legacy fusion path, bit-identical to before the handoff).
        if strategies is None:
            self._strategies = None
        else:
            if len(strategies) != len(self.workloads):
                raise ValueError(
                    "{} strategies for {} workloads".format(
                        len(strategies), len(self.workloads)))
            self._strategies = [make_strategy(s) for s in strategies]
        self._tenant_bound = [None] * len(self.workloads)
        self._tenant_plans = [None] * len(self.workloads)
        if self._strategies is not None:
            for pid, strategy in enumerate(self._strategies):
                if strategy.family == "fusion":
                    continue
                # Non-fusion tenants get dedicated machinery bound to
                # their own page table and a distinct directory agent.
                ctx = BindContext(
                    config=config, host_mem=self.host_mem,
                    page_table=self.page_tables[pid], stats=self.stats,
                    num_axcs=self.workloads[pid].num_axcs,
                    workload=self.workloads[pid],
                    agent_name="tenant{}".format(pid))
                self._tenant_bound[pid] = strategy.bind(ctx)

    def _tenant_forward_plan(self, pid, local_index):
        """Per-tenant forwarding plan with consumer AXC ids rebased to
        the tile's global numbering."""
        plan = self._tenant_plans[pid]
        if plan is None:
            base = self._axc_base[pid]
            plan = self._tenant_plans[pid] = {
                index: [(block, consumer + base)
                        for block, consumer in entries]
                for index, entries in
                forwarding_plan(self.workloads[pid]).items()
            }
        return plan.get(local_index)

    def _run_tenant_invocation(self, pid, local_index, trace, now, axc,
                               mlp):
        """Run one invocation under the tenant's strategy."""
        if self._strategies is None:
            return self.tile.run_invocation(axc, trace, now, mlp,
                                            lease=trace.lease_time)
        strategy = self._strategies[pid]
        if strategy.family == "fusion":
            lease = (strategy.lease if strategy.lease is not None
                     else trace.lease_time)
            plan = (self._tenant_forward_plan(pid, local_index)
                    if strategy.forwarding else None)
            return self.tile.run_invocation(axc, trace, now, mlp,
                                            lease=lease,
                                            forward_plan=plan)
        bound = self._tenant_bound[pid]
        return bound.run(strategy, local_index, trace, now,
                         axc=axc - self._axc_base[pid], mlp=mlp)

    def _interleaved(self):
        """Round-robin interleave of all processes' invocations."""
        cursors = [0] * len(self.workloads)
        remaining = sum(len(w.invocations) for w in self.workloads)
        while remaining:
            for pid, workload in enumerate(self.workloads):
                if cursors[pid] < len(workload.invocations):
                    yield (pid, cursors[pid],
                           workload.invocations[cursors[pid]])
                    cursors[pid] += 1
                    remaining -= 1

    def run(self):
        """Execute all workloads time-shared; returns a RunResult."""
        now = 0
        for pid, workload in enumerate(self.workloads):
            for base, size in workload.array_ranges.values():
                now = self.host_cores[pid].produce(base, size, now)
        produce_snapshot = self.stats.snapshot()
        accel_start = now
        for pid, local_index, trace in self._interleaved():
            axc = (self._axc_base[pid]
                   + self.workloads[pid].axc_of(trace.name))
            mlp = self._mlp[pid].get(trace.name, 2.0)
            start_snapshot = self.stats.snapshot()
            end = self._run_tenant_invocation(pid, local_index, trace,
                                              now, axc, mlp)
            delta = self.stats.diff(start_snapshot)
            energy = sum(value for key, value in delta.items()
                         if key.endswith("energy_pj"))
            self.stats.add("invocation.{}.cycles".format(trace.name),
                           end - now)
            self.stats.add("invocation.{}.energy_pj".format(trace.name),
                           energy)
            self.stats.add("invocation.{}.count".format(trace.name))
            now = end
        accel_cycles = now - accel_start
        for pid, workload in enumerate(self.workloads):
            for base, size in workload.host_output_arrays:
                now = self.host_cores[pid].consume(base, size, now)
        # Reuse RunResult via a light shim: this system is not a
        # BaseSystem but exposes the fields from_system needs.
        self.workload = _MergedWorkloadView(self.workloads)
        return RunResult.from_system(self, accel_cycles=accel_cycles,
                                     total_cycles=now,
                                     energy_baseline=produce_snapshot)


class _MergedWorkloadView:
    """Just enough of a WorkloadTrace for result reporting."""

    def __init__(self, workloads):
        self.benchmark = "+".join(w.benchmark for w in workloads)
