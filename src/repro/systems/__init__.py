"""The four evaluated system designs (plus extensions)."""

from .base import BaseSystem
from .fusion import FusionSystem
from .fusion_dx import FusionDxSystem
from .ideal import IdealSystem
from .pipelined import PipelinedFusionSystem
from .policy import PolicySystem
from .preset import StrategyPresetSystem
from .scratch import ScratchSystem
from .shared import SharedSystem

#: Registry keyed by the names used throughout the paper's figures,
#: plus the analysis/extension systems (IDEAL bound, pipelined tile,
#: per-invocation strategy POLICY).
SYSTEMS = {
    "SCRATCH": ScratchSystem,
    "SHARED": SharedSystem,
    "FUSION": FusionSystem,
    "FUSION-Dx": FusionDxSystem,
    "IDEAL": IdealSystem,
    "FUSION-PIPE": PipelinedFusionSystem,
    "POLICY": PolicySystem,
}

__all__ = ["BaseSystem", "FusionSystem", "FusionDxSystem", "IdealSystem",
           "PipelinedFusionSystem", "PolicySystem", "ScratchSystem",
           "SharedSystem", "StrategyPresetSystem", "SYSTEMS"]
