"""Host core phase model.

The host matters to this study as the producer of accelerator inputs and
the consumer of accelerator outputs: its loads and stores drive the MESI
directory, pull data out of the accelerator tile (forwarded requests,
AX-RMAP lookups, GTIME stalls) and populate the LLC that DMA reads from.
Host phases run between accelerator invocations on the sequential
program's critical path; the OOO core's memory parallelism (Table 2:
4-wide, 32-entry load queue) lets per-block latencies overlap.
"""

from ..common.units import LINE_SIZE


class HostCore:
    """Trace-driven host phases: touch arrays through the MESI hierarchy."""

    def __init__(self, config, host_mem, page_table, stats,
                 overlap=4):
        self.config = config
        self.host_mem = host_mem
        self.page_table = page_table
        self.stats = stats.scope("host")
        self.overlap = overlap

    def _touch(self, base, size, now, is_store):
        """Touch every line of ``[base, base+size)``; returns end time."""
        accessor = (self.host_mem.host_store if is_store
                    else self.host_mem.host_load)
        latency_sum = 0
        block = base - (base % LINE_SIZE)
        while block < base + size:
            paddr = self.page_table.translate(block)
            latency_sum += accessor(paddr, now)
            block += LINE_SIZE
        elapsed = max(1, latency_sum // self.overlap)
        self.stats.add("cycles", elapsed)
        return now + elapsed

    def produce(self, base, size, now):
        """The host writes an input array (e.g. reads an image from IO)."""
        self.stats.add("produce_phases")
        return self._touch(base, size, now, is_store=True)

    def consume(self, base, size, now):
        """The host reads an output array (e.g. step3() in Figure 1)."""
        self.stats.add("consume_phases")
        return self._touch(base, size, now, is_store=False)
