"""Host-side models: core phases and the oracle DMA controller."""

from .core import HostCore
from .dma import (
    DmaWindow,
    OracleDmaController,
    ScratchpadAccessModel,
    partition_windows,
)

__all__ = ["HostCore", "DmaWindow", "OracleDmaController",
           "ScratchpadAccessModel", "partition_windows"]
