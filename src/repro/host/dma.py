"""Oracle coherent DMA for the SCRATCH baseline.

The paper's SCRATCH system is deliberately generous: "a particularly
aggressive oracle DMA implementation" that auto-generates transfers from
the dynamic trace, DMA-ing *in* exactly the blocks the window reads and
*out* exactly the blocks it dirtied, with the controller residing at the
host LLC (no issue overhead).  Working sets exceed the scratchpad, so
each invocation is segmented into execution windows with a DMA-in /
compute / DMA-out sequence per window — all on the critical path, which
is where SCRATCH loses on DMA-bound workloads (Figure 6b) while winning
on request-message energy (it is push-based; Lesson 4).
"""

from dataclasses import dataclass, field

from ..common.stats import compile_phase_ledger
from ..common.types import AccessType, FunctionTrace, MemOp
from ..common.units import LINE_SIZE
from ..energy import cacti
from ..workloads import vector as vector_windows

_BLOCK_MASK = ~(LINE_SIZE - 1)
_STORE = AccessType.STORE


@dataclass
class DmaWindow:
    """One execution window of an invocation on a scratchpad."""

    ops: list = field(default_factory=list)
    blocks: set = field(default_factory=set)
    in_blocks: list = field(default_factory=list)
    out_blocks: list = field(default_factory=list)
    #: Read-only :class:`FunctionTrace` covering exactly this window's
    #: ops, built once by :func:`windows_for` so repeated invocations of
    #: the same kernel reuse one trace object (and therefore one lowered
    #: form) per window.
    trace: object = None


def partition_windows(trace, capacity_blocks):
    """Split an invocation trace into scratchpad-sized windows.

    A window closes when touching one more distinct block would overflow
    the scratchpad.  For each window the oracle computes:

    * ``in_blocks`` — blocks whose first access in the window is a load
      (data the accelerator actually reads; write-first blocks need no
      staging);
    * ``out_blocks`` — blocks the window stores to (dirty data).
    """
    windows = []
    current = DmaWindow()
    first_access = {}
    for op in trace.ops:
        if isinstance(op, MemOp):
            block = op.block
            if block not in current.blocks and \
                    len(current.blocks) >= capacity_blocks:
                _finalize(current, first_access)
                windows.append(current)
                current = DmaWindow()
                first_access = {}
            current.blocks.add(block)
            if block not in first_access:
                first_access[block] = op.kind
        current.ops.append(op)
    _finalize(current, first_access)
    windows.append(current)
    return windows


def windows_for(trace, capacity_blocks):
    """Memoised :func:`partition_windows` keyed by scratchpad capacity.

    Traces are read-only by contract once built, and the window split is
    a pure function of ``(trace, capacity_blocks)``, so the result is
    cached on the trace object itself — mirroring how lowered traces are
    memoised — and each window gets a reusable :class:`FunctionTrace`.
    """
    cache = trace.__dict__.get("_dma_windows")
    if cache is None:
        cache = trace.__dict__["_dma_windows"] = {}
    windows = cache.get(capacity_blocks)
    if windows is None:
        windows = partition_windows(trace, capacity_blocks)
        for window in windows:
            window.trace = FunctionTrace(
                name=trace.name, benchmark=trace.benchmark,
                ops=window.ops, lease_time=trace.lease_time)
        cache[capacity_blocks] = windows
    return windows


def _finalize(window, first_access):
    stored = set()
    for op in window.ops:
        if isinstance(op, MemOp) and op.kind is _STORE:
            stored.add(op.block)
    window.in_blocks = sorted(
        block for block, kind in first_access.items()
        if kind is AccessType.LOAD)
    window.out_blocks = sorted(stored)


class OracleDmaController:
    """Coherent DMA engine streaming lines between the LLC and scratchpads.

    The engine's state machine (SETUP -> STREAM -> COMPLETE) is modelled
    by a setup latency plus a bandwidth-limited streaming phase, with the
    LLC pipeline depth appearing once per transfer.
    """

    def __init__(self, config, host_mem, page_table, stats):
        self.config = config.dma
        self.host = host_mem
        self.page_table = page_table
        self.stats = stats.scope("dma")
        self._l2_pipeline = config.host.l2_avg_latency

    def _stream_latency(self, num_blocks):
        if num_blocks == 0:
            return 0
        num_bytes = num_blocks * LINE_SIZE
        stream = -(-num_bytes // self.config.bytes_per_cycle)  # ceil div
        # NUCA bank reads are not perfectly pipelined behind the link.
        stream = max(stream, num_blocks * self.config.per_block_cycles)
        return self.config.setup_latency + self._l2_pipeline + stream

    def transfer_in(self, vblocks, scratchpad, now):
        """DMA blocks from the LLC into ``scratchpad``; returns latency."""
        for vblock in vblocks:
            pblock = self.page_table.translate(vblock)
            self.host.dma_read(pblock, now)
            scratchpad.fill(vblock)
        latency = self._stream_latency(len(vblocks))
        self.stats.add("transfers_in", 1 if vblocks else 0)
        self.stats.add("blocks_in", len(vblocks))
        self.stats.add("bytes_in", len(vblocks) * LINE_SIZE)
        self.stats.add("cycles", latency)
        return latency

    def transfer_out(self, vblocks, now):
        """DMA dirty blocks from a scratchpad back to the LLC."""
        for vblock in vblocks:
            pblock = self.page_table.translate(vblock)
            self.host.dma_write(pblock, now)
        latency = self._stream_latency(len(vblocks))
        self.stats.add("transfers_out", 1 if vblocks else 0)
        self.stats.add("blocks_out", len(vblocks))
        self.stats.add("bytes_out", len(vblocks) * LINE_SIZE)
        self.stats.add("cycles", latency)
        return latency

    @property
    def total_bytes(self):
        return self.stats.get("bytes_in") + self.stats.get("bytes_out")


class ScratchpadAccessModel:
    """Charges scratchpad access latency/energy during window execution."""

    def __init__(self, config, scratchpad, stats):
        self.scratchpad = scratchpad
        self.latency = config.tile.scratchpad.access_latency
        self.stats = stats.scope("scratchpad")
        self._read_energy = cacti.scratchpad_access_energy_pj(
            config.tile.scratchpad)
        self._write_energy = cacti.scratchpad_access_energy_pj(
            config.tile.scratchpad, is_store=True)
        self._add_accesses = self.stats.counter("accesses")
        self._add_energy = self.stats.counter("energy_pj")
        # Bulk per-event flushers (one call per access or per coalesced
        # run; bit-identical to the unbundled handles by construction).
        registry = self.stats.registry
        qualify = self.stats.qualified
        self._flush_load = registry.flusher([
            (qualify("accesses"), 1),
            (qualify("energy_pj"), self._read_energy)])
        self._flush_store = registry.flusher([
            (qualify("accesses"), 1),
            (qualify("energy_pj"), self._write_energy)])
        #: Per-phase sequence flushers (steady-state fast path), plus
        #: compiled ledger programs memoised per (num_loads, num_stores)
        #: and whole-window bulk ledgers (the vector rung).
        self._phase_ledgers = {}
        self._programs = {}
        self._window_ledgers = {}

    def access(self, op, now):
        is_store = op.is_store
        # Write-first blocks need no DMA staging, just allocation; the
        # oracle window sizing guarantees the space exists (serve()
        # allocates in place and raises on non-resident loads).
        self.scratchpad.serve(op.block, is_store)
        if is_store:
            self._flush_store()
        else:
            self._flush_load()
        return self.latency

    def access_run(self, op, count, now, horizon, interval):
        """Serve a whole same-block access run in one step.

        A scratchpad access has no guard to fail: the block is either
        staged (constant latency for every op of the run) or the oracle
        DMA mis-sized the window, which raises exactly as the per-op
        path's first access would.  State converges after the first op
        (a store marks the block dirty once), so one ``serve`` plus a
        bulk counter flush is bit-identical to ``count`` accesses.
        """
        is_store = op.is_store
        self.scratchpad.serve(op.block, is_store)
        if is_store:
            self._flush_store(count)
        else:
            self._flush_load(count)
        return self.latency

    def phase_quote(self, phase, now, horizon, interval):
        """Serve a whole steady-state phase in one step.

        The scratchpad guard mirrors ``serve``: every block must either
        be resident or be written first (write-first blocks allocate in
        place, capacity permitting).  A load-first absent block or an
        allocation overflow declines, so the per-op fallback raises the
        exact oracle-DMA error the per-op path would.  On success the
        phase's whole counter delta is one sequence-flusher call and
        the dirty marks converge to the per-op result (a block is dirty
        iff the phase stores to it or it already was).
        """
        scratchpad = self.scratchpad
        blocks = scratchpad._blocks
        allocations = []
        stored = []
        for block, loads, stores, first_is_store, last_pos, \
                first_mem, first_comp in phase.block_info:
            if block in blocks:
                if stores:
                    stored.append(block)
            elif first_is_store:
                allocations.append(block)
            else:
                return None
        if allocations and len(blocks) + len(allocations) > \
                scratchpad.config.num_blocks:
            return None
        for block in allocations:
            blocks[block] = True
        for block in stored:
            blocks[block] = True
        self._phase_ledger(phase)()
        return self.latency, self.latency

    def phase_quote_batch(self, window, now, horizon, interval):
        """Serve the longest servable prefix of a phase *window* in one
        pass (the vector rung's batched quote API).

        The scratchpad guard is stateful — a phase's write-first
        allocations change residency for the next phase — so the batch
        evaluates phase guards *sequentially*, committing each accepted
        phase's allocations and dirty marks before guarding the next;
        the first phase that would decline (load-first absent block or
        allocation overflow) caps the accepted prefix.  This is the
        per-phase :meth:`phase_quote` applied phase by phase, so any
        prefix is bit-identical by construction; the batch win is one
        ladder dispatch for the whole window, the bulk counter ledger
        on a full accept, and the core's bulk timeline (the constant
        scratchpad latency fits the stall-free closed form).

        Returns ``(accepted_phases, latency, latency)`` or ``None``.
        """
        scratchpad = self.scratchpad
        blocks = scratchpad._blocks
        capacity = scratchpad.config.num_blocks
        phases = window.phases
        accepted = 0
        for phase in phases:
            allocations = []
            stored = []
            ok = True
            for block, loads, stores, first_is_store, last_pos, \
                    first_mem, first_comp in phase.block_info:
                if block in blocks:
                    if stores:
                        stored.append(block)
                elif first_is_store:
                    allocations.append(block)
                else:
                    ok = False
                    break
            if ok and allocations and \
                    len(blocks) + len(allocations) > capacity:
                ok = False
            if not ok:
                break
            for block in allocations:
                blocks[block] = True
            for block in stored:
                blocks[block] = True
            accepted += 1
        if accepted == 0:
            return None
        if accepted == window.span \
                and not self.stats.registry.pj_trace_active:
            self._window_ledger(window)()
        else:
            for j in range(accepted):
                self._phase_ledger(phases[j])()
        return accepted, self.latency, self.latency

    def _window_ledger(self, window):
        """The window's whole-span bulk ledger (cached per window).

        The ledger *program* is memoised on the window across model
        instances (:meth:`VectorWindow.cached`); binding it to this
        model's registry is O(1) and cached per instance.
        """
        ledger = self._window_ledgers.get(window)
        if ledger is None:
            load_pairs = self._flush_load.pairs
            store_pairs = self._flush_store.pairs
            program = window.cached(
                ("ledger", tuple(load_pairs), tuple(store_pairs)),
                lambda: vector_windows.compile_window_ledger(
                    load_pairs, store_pairs, window))
            ledger = self._window_ledgers[window] = \
                self.stats.registry.window_flusher(program)
        return ledger

    def _phase_ledger(self, phase):
        ledger = self._phase_ledgers.get(phase)
        if ledger is None:
            key = (phase.num_loads, phase.num_stores)
            program = self._programs.get(key)
            if program is None:
                program = self._programs[key] = compile_phase_ledger(
                    self._flush_load.pairs, self._flush_store.pairs,
                    *key)
            ledger = self.stats.registry.phase_flusher(phase.event_seq,
                                                       program)
            self._phase_ledgers[phase] = ledger
        return ledger
