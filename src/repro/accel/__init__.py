"""Accelerator modelling: DDG analysis, AXC cycle model, FUSION tile."""

from .core import AxcCore
from .ddg import DdgMetrics, DdgNode, analyze, build_ddg
from .tile import AcceleratorTile

__all__ = ["AxcCore", "DdgMetrics", "DdgNode", "analyze", "build_ddg",
           "AcceleratorTile"]
