"""Dynamic data-dependence graph (DDG) analysis of accelerator traces.

Section 4 of the paper models each fixed-function accelerator by
traversing a *constrained dynamic data dependence graph* extracted from a
profile of the original program.  We rebuild the same structure from our
kernel traces:

* every memory/compute op is a node;
* loads and stores depend on the previous store to the same line
  (memory dependence);
* a compute chunk depends on the loads issued since the previous chunk
  (its operands) and on the previous chunk (the sequential dataflow
  spine);
* loads/stores depend on the most recent compute chunk (address
  generation).

From an ASAP schedule of this graph we derive the Table 1
characteristics: the operation mix and the memory-level parallelism
(average number of memory ops that are ready in the same dependence
level).
"""

from dataclasses import dataclass, field

from ..common.types import ComputeOp, MemOp


@dataclass
class DdgNode:
    """One node of the dependence graph."""

    index: int
    op: object
    deps: list = field(default_factory=list)
    level: int = 0


#: Maximum outstanding memory ops the non-blocking interface sustains.
MAX_PIPELINE_MLP = 8.0


@dataclass
class DdgMetrics:
    """Trace characteristics derived from the DDG (Table 1 columns).

    ``mlp`` is the dependence-limited memory-level parallelism (what
    Table 1 reports: memory ops per ASAP dependence level).  ``pipe_mlp``
    is the *pipelined* MLP the cycle model uses: fixed-function datapaths
    pipeline loop iterations (Aladdin's model), so memory ops from
    adjacent iterations overlap — roughly the memory ops issued per
    dataflow chunk, bounded by the non-blocking interface depth.
    """

    int_ops: int = 0
    fp_ops: int = 0
    loads: int = 0
    stores: int = 0
    mlp: float = 1.0
    pipe_mlp: float = 1.0

    @property
    def total_ops(self):
        return self.int_ops + self.fp_ops + self.loads + self.stores

    def mix_percent(self):
        """Return the (%INT, %FP, %LD, %ST) tuple of Table 1."""
        total = self.total_ops
        if total == 0:
            return (0.0, 0.0, 0.0, 0.0)
        return (100.0 * self.int_ops / total,
                100.0 * self.fp_ops / total,
                100.0 * self.loads / total,
                100.0 * self.stores / total)


def build_ddg(trace):
    """Build the dependence graph for one :class:`FunctionTrace`."""
    nodes = []
    last_store_to = {}
    last_compute = None
    pending_loads = []
    for index, op in enumerate(trace.ops):
        node = DdgNode(index=index, op=op)
        if isinstance(op, MemOp):
            if last_compute is not None:
                node.deps.append(last_compute)
            producer = last_store_to.get(op.block)
            if producer is not None:
                node.deps.append(producer)
            if op.is_store:
                last_store_to[op.block] = node
            else:
                pending_loads.append(node)
        elif isinstance(op, ComputeOp):
            node.deps.extend(pending_loads)
            pending_loads = []
            if last_compute is not None:
                node.deps.append(last_compute)
            last_compute = node
        else:
            continue  # phase markers are not dataflow
        nodes.append(node)
    _assign_levels(nodes)
    return nodes


def _assign_levels(nodes):
    """ASAP leveling: level = 1 + max(dep levels)."""
    for node in nodes:  # nodes are in trace order, deps point backwards
        node.level = 1 + max((dep.level for dep in node.deps), default=0)


def light_metrics(trace):
    """Return ``(pipe_mlp, total_ops)`` for one trace by a linear scan.

    ``pipe_mlp`` and ``total_ops`` do not depend on the graph structure —
    only on the op counts — so this computes exactly the values
    :func:`analyze` would report for them (same arithmetic, same float
    results) without building a node per op.  The simulator's MLP lookup
    (:func:`repro.workloads.characterize.function_mlp`) runs this on
    every invocation of every workload, where full DDG construction was
    the single largest fixed cost of a run.
    """
    int_ops = fp_ops = 0
    total_mem = 0
    chunks = 0
    for op in trace.ops:
        if isinstance(op, MemOp):
            total_mem += 1
        elif isinstance(op, ComputeOp):
            int_ops += op.int_ops
            fp_ops += op.fp_ops
            chunks += 1
    pipe_mlp = 1.0
    if total_mem:
        pipe_mlp = min(MAX_PIPELINE_MLP,
                       max(1.0, total_mem / max(1, chunks)))
    return pipe_mlp, int_ops + fp_ops + total_mem


def analyze(trace):
    """Return :class:`DdgMetrics` for one function trace."""
    metrics = DdgMetrics()
    mem_levels = {}
    chunks = 0
    nodes = build_ddg(trace)
    for node in nodes:
        op = node.op
        if isinstance(op, MemOp):
            if op.is_store:
                metrics.stores += 1
            else:
                metrics.loads += 1
            mem_levels[node.level] = mem_levels.get(node.level, 0) + 1
        elif isinstance(op, ComputeOp):
            metrics.int_ops += op.int_ops
            metrics.fp_ops += op.fp_ops
            chunks += 1
    total_mem = metrics.loads + metrics.stores
    if mem_levels:
        metrics.mlp = total_mem / len(mem_levels)
    if total_mem:
        metrics.pipe_mlp = min(MAX_PIPELINE_MLP,
                               max(1.0, total_mem / max(1, chunks)))
    return metrics
