"""The FUSION accelerator tile: AXC cores, private L0Xs, shared L1X.

One tile collocates every accelerator extracted from an application (the
paper assumes exactly this).  The tile owns the intra-tile links, the
ACC protocol controllers and the AXC cycle models; the FUSION and
FUSION-Dx systems drive it.
"""

from ..coherence.acc import AccL0XController, AccL1XController
from ..coherence.lease_policy import make_policy
from ..interconnect.link import Link
from .core import AxcCore


class AcceleratorTile:
    """AXC cores + L0Xs + shared L1X wired together under ACC."""

    def __init__(self, config, host_mem, page_table, num_axcs, stats,
                 name="tile"):
        self.config = config
        self.name = name
        self.stats = stats
        self.axc_link = Link("axc_l1x", config.link.axc_l1x_pj_per_byte,
                             stats)
        self.fwd_link = Link("fwd", config.link.l0x_l0x_pj_per_byte, stats)
        self.l1x = AccL1XController(config, host_mem, page_table, stats,
                                    agent_name=name)
        host_mem.register_tile(name, self.l1x)
        self.l0xs = [
            AccL0XController(
                axc_id, config, self.l1x, self.axc_link, self.fwd_link,
                stats,
                lease_policy=make_policy(config.tile.lease_policy,
                                         config.tile.l0x.num_sets))
            for axc_id in range(num_axcs)
        ]
        self.cores = [AxcCore(axc_id, stats) for axc_id in range(num_axcs)]

    def run_invocation(self, axc_id, trace, start_time, mlp, lease=None,
                       forward_plan=None):
        """Run one function invocation on accelerator ``axc_id``.

        Returns the completion time.  When ``forward_plan`` is given
        (FUSION-Dx), every self-downgrade of a listed dirty block —
        capacity evictions during the run and the end-of-invocation
        drain alike — pushes the line straight into the consumer's L0X
        instead of writing it back to the L1X (the paper's Figure 5).
        """
        l0x = self.l0xs[axc_id]
        if lease is None:
            lease = trace.lease_time or self.config.tile.default_lease
        if forward_plan:
            l0x.forward_hook = self._make_forward_hook(
                axc_id, forward_plan, lease)

        l0x.invocation_lease = lease

        def access_run(op, count, now, horizon, interval):
            return l0x.access_run(op, count, now, horizon, interval,
                                  lease)

        try:
            end = self.cores[axc_id].run(
                trace, start_time, l0x.access, mlp,
                access_run=access_run, phase_quote=l0x.phase_quote,
                phase_quote_batch=l0x.phase_quote_batch)
            end += l0x.flush_dirty(end)
        finally:
            l0x.forward_hook = None
        return end

    def _make_forward_hook(self, producer_id, forward_plan, lease):
        """Build the self-downgrade hook for one producer invocation."""
        consumer_of = {block: consumer for block, consumer in forward_plan
                       if consumer != producer_id}

        def hook(l0x, line, now):
            consumer_id = consumer_of.get(line.block)
            if consumer_id is None:
                return False
            l0x.forward_line_obj(line, self.l0xs[consumer_id], now)
            return True

        return hook
