"""Guarded invocation replay cache: the top rung of the fallback ladder.

After warm-up, the Fig-6/7 workloads invoke the same accelerator
function dozens of times, and in steady state every iteration performs a
bit-identical sequence of protocol steps — the same insight the
steady-state phase engine exploits one level down, lifted to whole
invocations.  This module records the *complete effect* of one
invocation — counter deltas, the term-ordered energy trace
(:class:`repro.common.stats.PjTrace`), the cycle count, and the
end-state transform of the touched cache footprint — and replays it in
O(footprint) when a guard proves the starting state matches the
recording:

``invocation replay -> steady-state phase -> coalesced run -> per-op``

Soundness rests on three pillars:

* **Translation invariance.**  All simulated times are dyadic rationals
  and the interpreter never branches on absolute time (the phase
  engine's rebased timelines already rely on this), so a recording made
  at ``t0`` replays exactly at ``t0'`` once every *relative* time in
  the starting state matches.  Time fields in signatures are therefore
  stored relative to the invocation start.
* **Version pinning.**  Host-side MESI state is not signed per block:
  every mutating entry point bumps ``HostMemorySystem.struct_version``
  (and DRAM bumps ``MainMemory.version``), so an *equal* version value
  proves the host hierarchy is bit-identical to the recording's
  pre-state.  Recordings that bump either version are discarded — a
  steady-state invocation never leaves the tile.
* **Clamped lease cover.**  Live lease/GTIME values decay across
  iterations, so exact relative matching would never hit for functions
  shorter than their lease.  The guard instead classes a timestamp as
  ``PAST`` (expired before the invocation starts) or ``COVERS`` (past
  every compare the invocation can perform: beyond ``8*duration + 64``
  plus the largest write-epoch the recording could compare against) and
  proves the recorded outcome is identical for every value in the
  class.  Values between the classes must match exactly, relative to
  ``t0``; anything else declines to the phase rung, so every op is
  still served by exactly one rung.

Gate with ``REPLAY_INVOCATIONS`` (environment variable or module flag,
like ``STEADY_PHASES``).  See ``docs/simulator.md`` §11.
"""

import os

from ..common.types import ComputeOp, MemOp
from ..mem.cache import CacheLine

#: Master toggle for the invocation replay rung.  The environment
#: variable is read once at import; tests flip the module attribute.
REPLAY_INVOCATIONS = os.environ.get(
    "REPLAY_INVOCATIONS", "1").strip().lower() not in (
        "0", "false", "off", "no")

#: At most this many state variants are recorded per invocation key
#: before the engine stops recording and only probes/falls back.
MAX_RECORDINGS_PER_KEY = 4

#: After this many consecutive failed probes on one key the key is
#: disabled outright (the invocation never reaches a steady state worth
#: guarding, e.g. it misses to DRAM every iteration).
DISABLE_AFTER_MISSES = 8

#: Process-wide replay telemetry (surfaced by ``fusion-sim cache stats``
#: and the benchmark harnesses).  Engine-local counters are mirrored
#: here; none of this ever touches a simulation's StatsRegistry, so the
#: on/off bit-identity discipline is preserved.
TELEMETRY = {
    "engines": 0,
    "keys": 0,
    "recordings": 0,
    "hits": 0,
    "misses": 0,
    "ineligible": 0,
    "disabled_keys": 0,
}


def reset_telemetry():
    for key in TELEMETRY:
        TELEMETRY[key] = 0


def telemetry_snapshot():
    return dict(TELEMETRY)


class Ineligible(Exception):
    """Raised during recording construction when the invocation touched
    state the guard cannot sign; the recording is discarded."""


# ---------------------------------------------------------------------------
# content-addressed invocation keys
# ---------------------------------------------------------------------------

#: Content fingerprint -> small interned id.  Kernels record a *fresh*
#: FunctionTrace object per iteration, so identity keying would never
#: hit; the fingerprint hashes the op stream once per trace object and
#: interning keeps the per-invocation key a cheap tuple of ints.
_FINGERPRINT_IDS = {}


def _trace_fingerprint(trace):
    parts = [trace.name, trace.benchmark, trace.lease_time]
    append = parts.append
    for op in trace.ops:
        cls = op.__class__
        if cls is MemOp:
            append((op.is_store, op.addr, op.size, op.array))
        elif cls is ComputeOp:
            append((op.int_ops, op.fp_ops))
        else:
            append(("marker", getattr(op, "label", "")))
    return tuple(parts)


def trace_replay_token(trace):
    """Interned content id for ``trace`` (memoised on the trace)."""
    token = trace.__dict__.get("_replay_token")
    if token is None:
        fingerprint = _trace_fingerprint(trace)
        token = _FINGERPRINT_IDS.setdefault(fingerprint,
                                            len(_FINGERPRINT_IDS))
        trace.__dict__["_replay_token"] = token
    return token


# ---------------------------------------------------------------------------
# cache signatures and end-state transforms
# ---------------------------------------------------------------------------

# Raw capture entry layout (see SetAssocCache.capture_sets):
# (line, block, pid, state, dirty, lease, gtime, write_epoch_end,
#  paddr, last_use)

#: Time-field signature modes.  ``L`` literal (None), ``R`` exact
#: relative to t0, ``P`` any value <= t0 (expired before the invocation
#: and provably never consumed beyond expiry checks), ``C`` any value
#: > t0 + cover (beyond every compare the invocation performs).
_LIT_NONE = ("L", None)
_PAST = ("P",)


def _time_sig(value, t0, clamp, cover):
    if value is None:
        return _LIT_NONE
    if clamp:
        if value <= t0:
            return _PAST
        if value > t0 + cover:
            return ("C", cover)
    return ("R", value - t0)


def _time_exact(value, t0):
    if value is None:
        return _LIT_NONE
    return ("R", value - t0)


def _time_matches(value, sig, t0):
    mode = sig[0]
    if mode == "R":
        return value is not None and value == t0 + sig[1]
    if mode == "L":
        return value is None
    if mode == "P":
        return value is not None and value <= t0
    return value is not None and value > t0 + sig[1]      # "C"


def _ranks_of(entries):
    """Per-set LRU ranks (ascending last_use) in entry order."""
    if len(entries) < 2:
        return (0,) * len(entries)
    order = sorted(range(len(entries)), key=lambda i: entries[i][9])
    ranks = [0] * len(entries)
    for rank, position in enumerate(order):
        ranks[position] = rank
    return ranks


def _line_ranks(lines):
    if len(lines) < 2:
        return (0,) * len(lines)
    order = sorted(range(len(lines)), key=lambda i: lines[i].last_use)
    ranks = [0] * len(lines)
    for rank, position in enumerate(order):
        ranks[position] = rank
    return ranks


def _entries_unchanged(pre_entries, post_entries):
    if len(pre_entries) != len(post_entries):
        return False
    for pre, post in zip(pre_entries, post_entries):
        if pre[0] is not post[0] or pre[1:] != post[1:]:
            return False
    return True


def build_cache_recording(pre, post, t0, clamp_lease=False,
                          clamp_gtime=False, cover=0.0,
                          demote_blocks=frozenset(), extra_sets=(),
                          require_clean=False):
    """Diff two full cache captures into a ``(signature, transform)``.

    The signature covers every set the invocation changed plus
    ``extra_sets`` (sets holding lines the invocation may *read* without
    leaving a diff — e.g. L1X write-epoch checks from L0X flushes); per
    set it pins blocks, protocol fields, clamped time classes and the
    LRU rank order in per-set dict order.  The transform rebuilds each
    changed set to the recorded post-state, with time fields re-anchored
    to the replay's ``t0`` and LRU clocks to the replay's use clock.

    Raises :class:`Ineligible` when the diff shows state the guard
    cannot sign (dirty lines at entry under ``require_clean``).
    """
    pre_clock, pre_sets = pre
    post_clock, post_sets = post
    pre_map = dict(pre_sets)
    post_map = dict(post_sets)
    transform_sets = []
    touched = set()
    occupancy_delta = 0
    for index in set(pre_map) | set(post_map):
        pre_entries = pre_map.get(index, ())
        post_entries = post_map.get(index, ())
        if _entries_unchanged(pre_entries, post_entries):
            continue
        touched.add(index)
        occupancy_delta += len(post_entries) - len(pre_entries)
        pre_by_block = {entry[1]: entry for entry in pre_entries}
        post_blocks = set()
        spec = []
        for entry in post_entries:
            block = entry[1]
            post_blocks.add(block)
            pre_entry = pre_by_block.get(block)
            if pre_entry is not None and pre_entry[0] is entry[0]:
                updates = []
                if pre_entry[2] != entry[2]:
                    updates.append(("pid", "L", entry[2]))
                if pre_entry[3] != entry[3]:
                    updates.append(("state", "L", entry[3]))
                if pre_entry[4] != entry[4]:
                    updates.append(("dirty", "L", entry[4]))
                if pre_entry[5] != entry[5]:
                    updates.append(_field_update("lease", entry[5], t0))
                if pre_entry[6] != entry[6]:
                    updates.append(_field_update("gtime", entry[6], t0))
                if pre_entry[7] != entry[7]:
                    updates.append(_field_update("write_epoch_end",
                                                 entry[7], t0))
                if pre_entry[8] != entry[8]:
                    updates.append(("paddr", "L", entry[8]))
                if pre_entry[9] != entry[9]:
                    updates.append(("last_use", "K",
                                    entry[9] - pre_clock))
                spec.append(("U", block, tuple(updates)) if updates
                            else ("B", block))
            else:
                spec.append(("N", block, entry[2], entry[3], entry[4],
                             _time_exact(entry[5], t0),
                             _time_exact(entry[6], t0),
                             _time_exact(entry[7], t0),
                             entry[8], entry[9] - pre_clock))
        removed = tuple(block for block in pre_by_block
                        if block not in post_blocks)
        transform_sets.append((index, tuple(spec), removed))

    signature = []
    for index in sorted(touched | set(extra_sets)):
        pre_entries = pre_map.get(index, ())
        post_entries = {entry[1]: entry for entry
                        in post_map.get(index, ())}
        ranks = _ranks_of(pre_entries)
        entry_sigs = []
        for entry, rank in zip(pre_entries, ranks):
            if require_clean and entry[4]:
                raise Ineligible("dirty line at invocation entry")
            lease_sig = _time_sig(entry[5], t0, clamp_lease, cover)
            if lease_sig[0] == "C":
                post_entry = post_entries.get(entry[1])
                if (entry[1] in demote_blocks or post_entry is None
                        or post_entry[0] is not entry[0]):
                    # Forwarded or evicted: the exact value was consumed
                    # beyond dominated compares — demand it exactly.
                    lease_sig = ("R", entry[5] - t0)
            gtime_sig = _time_sig(entry[6], t0, clamp_gtime, cover)
            if gtime_sig[0] == "C":
                post_entry = post_entries.get(entry[1])
                if (post_entry is None or post_entry[0] is not entry[0]
                        or post_entry[6] != entry[6]):
                    gtime_sig = ("R", entry[6] - t0)
            entry_sigs.append((entry[1], entry[2], entry[3], entry[4],
                               entry[8], lease_sig, gtime_sig,
                               _time_exact(entry[7], t0), rank))
        signature.append((index, tuple(entry_sigs)))
    transform = (tuple(transform_sets), post_clock - pre_clock,
                 occupancy_delta)
    return tuple(signature), transform


def _field_update(attr, value, t0):
    if value is None:
        return (attr, "L", None)
    return (attr, "R", value - t0)


def match_cache_signature(cache, signature, t0):
    """Does ``cache``'s live state match a recorded signature at ``t0``?

    O(footprint): walks exactly the recording's signed sets, comparing
    per-set dict order, protocol fields, clamped time classes and LRU
    ranks against the live lines.
    """
    sets = cache._sets
    for index, entry_sigs in signature:
        cache_set = sets[index]
        if len(cache_set) != len(entry_sigs):
            return False
        if not entry_sigs:
            continue
        lines = list(cache_set.values())
        ranks = _line_ranks(lines)
        for line, rank, sig in zip(lines, ranks, entry_sigs):
            if (line.block != sig[0] or line.pid != sig[1]
                    or line.state != sig[2] or line.dirty != sig[3]
                    or line.paddr != sig[4] or rank != sig[8]):
                return False
            if not _time_matches(line.lease, sig[5], t0):
                return False
            if not _time_matches(line.gtime, sig[6], t0):
                return False
            if not _time_matches(line.write_epoch_end, sig[7], t0):
                return False
    return True


def apply_cache_transform(cache, transform, t0):
    """Apply a recorded end-state transform to ``cache`` at ``t0``.

    Rebuilds each touched set dict in the recorded post order (per-set
    dict order determines flush/writeback walks), mutating surviving
    line objects in place and re-anchoring time fields to ``t0`` and
    LRU stamps to the live use clock.
    """
    transform_sets, clock_delta, occupancy_delta = transform
    clock0 = cache._use_clock
    sets = cache._sets
    lines_index = cache._lines
    for index, spec, removed in transform_sets:
        live_set = sets[index]
        new_set = {}
        for entry in spec:
            tag = entry[0]
            block = entry[1]
            if tag == "B":
                line = live_set[block]
            elif tag == "U":
                line = live_set[block]
                for attr, mode, value in entry[2]:
                    if mode == "L":
                        setattr(line, attr, value)
                    elif mode == "R":
                        setattr(line, attr, t0 + value)
                    else:                          # "K": use-clock rel
                        setattr(line, attr, clock0 + value)
            else:                                  # "N": fresh install
                line = CacheLine(
                    block=block, pid=entry[2], state=entry[3],
                    dirty=entry[4], lease=_resolve_time(entry[5], t0),
                    gtime=_resolve_time(entry[6], t0),
                    write_epoch_end=_resolve_time(entry[7], t0),
                    paddr=entry[8], last_use=clock0 + entry[9])
                lines_index[block] = line
            new_set[block] = line
        for block in removed:
            del lines_index[block]
        sets[index] = new_set
    cache._use_clock = clock0 + clock_delta
    cache._occupancy += occupancy_delta


def _resolve_time(spec, t0):
    if spec[0] == "L":
        return spec[1]
    return t0 + spec[1]


def max_write_epoch_rel(capture, t0):
    """Largest relative write-epoch end in a raw L1X capture (>= 0)."""
    worst = 0.0
    for _, entries in capture[1]:
        for entry in entries:
            epoch_end = entry[7]
            if epoch_end is not None and epoch_end - t0 > worst:
                worst = epoch_end - t0
    return worst


def capture_blocks(capture):
    """All block addresses present in a raw capture."""
    return [entry[1] for _, entries in capture[1] for entry in entries]


# ---------------------------------------------------------------------------
# recordings and the engine
# ---------------------------------------------------------------------------

class Recording:
    """One recorded invocation effect plus the guard that proves it."""

    __slots__ = ("duration", "pj_program", "delta_items", "energy_names",
                 "name", "payload")

    def __init__(self, name, payload):
        self.name = name
        self.payload = payload
        self.duration = 0
        self.pj_program = ()
        self.delta_items = ()
        self.energy_names = ()


class _KeyState:
    __slots__ = ("recordings", "miss_streak", "disabled")

    def __init__(self):
        self.recordings = []
        self.miss_streak = 0
        self.disabled = False


class InvocationReplayEngine:
    """Per-run replay store driving one system's invocation loop.

    ``run_invocation`` either replays a matching recording (bulk counter
    flush + cache transform + timeline rebase) or runs the invocation
    for real — recording its effect when the key still has budget — and
    always performs the same per-invocation attribution the base loop
    does, so results are bit-identical either way.
    """

    def __init__(self, system, adapter):
        self.system = system
        self.registry = system.stats.registry
        self.adapter = adapter
        self._keys = {}
        # The workload is fully known up front, so invocations whose
        # function cannot recur often enough for a recording to ever be
        # probed are served by the plain fallback path with zero capture
        # overhead.  A first occurrence always records against a state a
        # later probe can never see again (cold caches), so a key needs
        # at least `min_occurrences` occurrences to break even.
        self._min_occurrences = getattr(adapter, "min_occurrences", 2)
        counts = {}
        for trace in system.workload.invocations:
            counts[trace.name] = counts.get(trace.name, 0) + 1
        self._name_counts = counts
        self.hits = 0
        self.misses = 0
        self.recordings = 0
        self.ineligible = 0
        TELEMETRY["engines"] += 1

    def run_invocation(self, index, trace, now):
        if self._name_counts[trace.name] < self._min_occurrences:
            return self._fallback(index, trace, now)
        key = self.adapter.key_of(index, trace)
        state = self._keys.get(key)
        if state is None:
            state = self._keys[key] = _KeyState()
            TELEMETRY["keys"] += 1
        if state.recordings and not state.disabled:
            adapter = self.adapter
            for recording in state.recordings:
                if adapter.matches(recording, now):
                    state.miss_streak = 0
                    self.hits += 1
                    TELEMETRY["hits"] += 1
                    self._apply(recording, now)
                    return now + recording.duration
            state.miss_streak += 1
            self.misses += 1
            TELEMETRY["misses"] += 1
            if state.miss_streak >= DISABLE_AFTER_MISSES:
                state.disabled = True
                TELEMETRY["disabled_keys"] += 1
        if state.disabled or len(state.recordings) >= \
                MAX_RECORDINGS_PER_KEY:
            return self._fallback(index, trace, now)
        return self._record(index, trace, now, state)

    # -- slow paths -----------------------------------------------------

    def _fallback(self, index, trace, now):
        system = self.system
        snapshot = system.stats.snapshot()
        end = system._run_invocation(index, trace, now)
        system._record_invocation(index, trace, end - now, snapshot)
        return end

    def _record(self, index, trace, now, state):
        system = self.system
        registry = self.registry
        pre = self.adapter.capture(index, trace)
        snapshot = system.stats.snapshot()
        pj_trace = registry.begin_pj_trace()
        try:
            end = system._run_invocation(index, trace, now)
        finally:
            registry.end_pj_trace()
        body_delta = registry.diff(snapshot)
        system._record_invocation(index, trace, end - now, snapshot)
        if pre is None or pj_trace.poisoned:
            self.ineligible += 1
            TELEMETRY["ineligible"] += 1
            return end
        post = self.adapter.capture(index, trace)
        recording = self.adapter.build(pre, post, now, end, index, trace)
        if recording is None:
            self.ineligible += 1
            TELEMETRY["ineligible"] += 1
            return end
        recording.duration = end - now
        recording.pj_program = pj_trace.program()
        recording.delta_items = tuple(
            (name, value) for name, value in body_delta.items()
            if not name.endswith("_pj"))
        recording.energy_names = tuple(
            name for name in body_delta if name.endswith("energy_pj"))
        state.recordings.append(recording)
        self.recordings += 1
        TELEMETRY["recordings"] += 1
        return end

    # -- the O(footprint) replay ----------------------------------------

    def _apply(self, recording, now):
        registry = self.registry
        energy_names = recording.energy_names
        before = [registry.get(name) for name in energy_names]
        registry.replay_pj(recording.pj_program)
        registry.bulk_add(recording.delta_items)
        self.adapter.apply(recording, now)
        # Mirror BaseSystem._record_invocation: the energy delta summed
        # over the diff's energy counters, in recorded diff order —
        # bit-identical to what a real run at this state would report.
        energy = 0
        for name, start in zip(energy_names, before):
            energy += registry.get(name) - start
        registry.add(
            "invocation.{}.cycles".format(recording.name),
            recording.duration)
        registry.add(
            "invocation.{}.energy_pj".format(recording.name), energy)
        registry.add("invocation.{}.count".format(recording.name))


# ---------------------------------------------------------------------------
# per-system adapters
# ---------------------------------------------------------------------------

class AccTileReplayAdapter:
    """FUSION / FUSION-Dx: full L0X + L1X footprint + forward queues."""

    #: The first occurrence records cold-cache state and the second's
    #: lease relatives differ from steady state, so the earliest
    #: possible hit is the third occurrence.
    min_occurrences = 3

    def __init__(self, system):
        self.system = system
        self.tile = system.tile
        self.host = system.host_mem

    def _effective_lease(self, trace):
        lease = self.system.config.tile.lease_override or trace.lease_time
        if lease is None:
            lease = trace.lease_time or \
                self.system.config.tile.default_lease
        return lease

    def key_of(self, index, trace):
        system = self.system
        plan = system._forward_plan_for(index)
        plan_token = tuple(map(tuple, plan)) if plan else None
        return (trace_replay_token(trace), system._axc_of(trace),
                self._effective_lease(trace), system._mlp(trace),
                plan_token)

    def capture(self, index, trace):
        axc = self.system._axc_of(trace)
        tile = self.tile
        return {
            "axc": axc,
            "l0x": tile.l0xs[axc].state_signature(),
            "l1x": tile.l1x.state_signature(),
            "fwd": [dict(l0x._incoming_forwards) for l0x in tile.l0xs],
            "host": self.host.struct_version,
            "dram": self.host.dram.version,
        }

    def build(self, pre, post, t0, end, index, trace):
        if pre["host"] != post["host"] or pre["dram"] != post["dram"]:
            return None
        axc = pre["axc"]
        duration = end - t0
        # The cover threshold dominates every time compare the
        # invocation can perform (run/phase guard horizons stay under
        # ~6x duration; write-epoch equality checks are bounded by the
        # largest epoch visible at entry, which the signature pins).
        cover = 8 * duration + 64 + max_write_epoch_rel(pre["l1x"], t0)
        plan = self.system._forward_plan_for(index)
        demote = (frozenset(block for block, _consumer in plan)
                  if plan else frozenset())
        l1x_cache = self.tile.l1x.cache
        extra_sets = {
            l1x_cache.set_index_of(block)
            for block in (capture_blocks(pre["l0x"])
                          + capture_blocks(post["l0x"])
                          + list(pre["fwd"][axc]))
        }
        try:
            l0x_sig, l0x_tf = build_cache_recording(
                pre["l0x"], post["l0x"], t0, clamp_lease=True,
                cover=cover, demote_blocks=demote, require_clean=True)
            l1x_sig, l1x_tf = build_cache_recording(
                pre["l1x"], post["l1x"], t0, clamp_gtime=True,
                cover=cover, extra_sets=extra_sets)
        except Ineligible:
            return None
        own_pre = pre["fwd"][axc]
        fwd_sig = tuple((block, value - t0)
                        for block, value in own_pre.items())
        own_post = post["fwd"][axc]
        fwd_post = tuple((block, value - t0)
                         for block, value in own_post.items())
        fwd_sets = []
        for consumer, (pre_fwd, post_fwd) in enumerate(
                zip(pre["fwd"], post["fwd"])):
            if consumer == axc:
                continue
            for block in pre_fwd:
                if block not in post_fwd:
                    return None     # unexpected: forwards never drain
            for block, value in post_fwd.items():
                if pre_fwd.get(block) != value:
                    fwd_sets.append((consumer, block, value - t0))
        recording = Recording(trace.name, {
            "axc": axc,
            "host": pre["host"],
            "dram": pre["dram"],
            "l0x_sig": l0x_sig, "l0x_tf": l0x_tf,
            "l1x_sig": l1x_sig, "l1x_tf": l1x_tf,
            "fwd_sig": fwd_sig, "fwd_post": fwd_post,
            "fwd_sets": tuple(fwd_sets),
        })
        return recording

    def matches(self, recording, t0):
        payload = recording.payload
        host = self.host
        if (host.struct_version != payload["host"]
                or host.dram.version != payload["dram"]):
            return False
        l0x = self.tile.l0xs[payload["axc"]]
        own = l0x._incoming_forwards
        fwd_sig = payload["fwd_sig"]
        if len(own) != len(fwd_sig):
            return False
        for block, rel in fwd_sig:
            if own.get(block) != t0 + rel:
                return False
        return (match_cache_signature(l0x.cache, payload["l0x_sig"], t0)
                and match_cache_signature(self.tile.l1x.cache,
                                          payload["l1x_sig"], t0))

    def apply(self, recording, t0):
        payload = recording.payload
        l0x = self.tile.l0xs[payload["axc"]]
        l0x.apply_transform(payload["l0x_tf"], t0)
        self.tile.l1x.apply_transform(payload["l1x_tf"], t0)
        own = l0x._incoming_forwards
        own.clear()
        for block, rel in payload["fwd_post"]:
            own[block] = t0 + rel
        l0xs = self.tile.l0xs
        for consumer, block, rel in payload["fwd_sets"]:
            l0xs[consumer]._incoming_forwards[block] = t0 + rel


class SharedL1XReplayAdapter:
    """SHARED: the one shared cache plus host/DRAM version pins.

    The shared L1X has no lease machinery — its lines carry no time
    fields at all — so signatures need no clamping and recordings hit
    from the second steady iteration onward.
    """

    #: Capturing the whole shared array twice per recording is the
    #: costliest guard in the family; only engage once a key can be
    #: probed against a warm recording at least twice.
    min_occurrences = 3

    def __init__(self, system):
        self.system = system
        self.host = system.host_mem

    def key_of(self, index, trace):
        system = self.system
        return (trace_replay_token(trace), system._axc_of(trace),
                system._mlp(trace))

    def capture(self, index, trace):
        return {
            "l1x": self.system.l1x.state_signature(),
            "host": self.host.struct_version,
            "dram": self.host.dram.version,
        }

    def build(self, pre, post, t0, end, index, trace):
        if pre["host"] != post["host"] or pre["dram"] != post["dram"]:
            return None
        try:
            sig, transform = build_cache_recording(
                pre["l1x"], post["l1x"], t0)
        except Ineligible:
            return None
        return Recording(trace.name, {
            "host": pre["host"], "dram": pre["dram"],
            "sig": sig, "tf": transform,
        })

    def matches(self, recording, t0):
        payload = recording.payload
        host = self.host
        if (host.struct_version != payload["host"]
                or host.dram.version != payload["dram"]):
            return False
        return match_cache_signature(self.system.l1x.cache,
                                     payload["sig"], t0)

    def apply(self, recording, t0):
        self.system.l1x.apply_transform(recording.payload["tf"], t0)


class ScratchReplayAdapter:
    """SCRATCH: empty-scratchpad guard + per-block L2 dirty pins.

    Scratchpads drain at every window boundary, so invocations start and
    end with an empty scratchpad; the only host-side state a steady
    (all-L2-hit) DMA sequence moves without bumping ``struct_version``
    is L2 dirty bits on the windows' blocks, which the recording pins
    per physical block and the transform re-marks.
    """

    def __init__(self, system):
        self.system = system
        self.host = system.host_mem
        self._pblock_cache = {}

    def key_of(self, index, trace):
        system = self.system
        return (trace_replay_token(trace), system._axc_of(trace),
                system._mlp(trace))

    def _pblocks_of(self, trace):
        token = trace_replay_token(trace)
        pblocks = self._pblock_cache.get(token)
        if pblocks is None:
            from ..host.dma import windows_for
            windows = windows_for(trace, self.system._capacity)
            vblocks = set()
            for window in windows:
                vblocks.update(window.in_blocks)
                vblocks.update(window.out_blocks)
            translate = self.system.page_table.translate
            pblocks = tuple(sorted({translate(block)
                                    for block in vblocks}))
            self._pblock_cache[token] = pblocks
        return pblocks

    def _l2_state(self, pblocks):
        lookup = self.host.l2.lookup
        state = []
        for pblock in pblocks:
            line = lookup(pblock, touch=False)
            state.append(None if line is None else line.dirty)
        return tuple(state)

    def capture(self, index, trace):
        axc = self.system._axc_of(trace)
        if self.system.scratchpads[axc].state_signature():
            return None         # non-empty scratchpad: cannot guard
        pblocks = self._pblocks_of(trace)
        return {
            "axc": axc,
            "pblocks": pblocks,
            "l2": self._l2_state(pblocks),
            "host": self.host.struct_version,
            "dram": self.host.dram.version,
        }

    def build(self, pre, post, t0, end, index, trace):
        if (post is None or pre["host"] != post["host"]
                or pre["dram"] != post["dram"]):
            return None
        dirty_marks = []
        for pblock, before, after in zip(pre["pblocks"], pre["l2"],
                                         post["l2"]):
            if (before is None) != (after is None):
                return None     # presence changed without a bump?
            if before != after:
                dirty_marks.append(pblock)
        return Recording(trace.name, {
            "axc": pre["axc"],
            "pblocks": pre["pblocks"],
            "l2": pre["l2"],
            "dirty_marks": tuple(dirty_marks),
            "host": pre["host"], "dram": pre["dram"],
        })

    def matches(self, recording, t0):
        payload = recording.payload
        host = self.host
        if (host.struct_version != payload["host"]
                or host.dram.version != payload["dram"]):
            return False
        if self.system.scratchpads[payload["axc"]].state_signature():
            return False
        return self._l2_state(payload["pblocks"]) == payload["l2"]

    def apply(self, recording, t0):
        lookup = self.host.l2.lookup
        for pblock in recording.payload["dirty_marks"]:
            lookup(pblock, touch=False).dirty = True


class IdealReplayAdapter:
    """IDEAL: no hierarchy state at all — pure timeline + stats replay."""

    def __init__(self, system):
        self.system = system

    def key_of(self, index, trace):
        system = self.system
        return (trace_replay_token(trace), system._axc_of(trace),
                system._mlp(trace))

    def capture(self, index, trace):
        return {}

    def state_signature(self):
        return ()

    def apply_transform(self, transform, t0):
        pass

    def build(self, pre, post, t0, end, index, trace):
        return Recording(trace.name, {})

    def matches(self, recording, t0):
        return True

    def apply(self, recording, t0):
        pass
