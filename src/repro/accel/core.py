"""The fixed-function accelerator cycle model.

The paper (Section 4) drives a constrained dynamic data-dependence graph
"on a cycle-by-cycle [basis], generating any requisite memory operations
in a cycle and stalling the appropriate operations as necessary", with an
aggressive non-blocking memory interface.  This model reproduces that
behaviour at trace granularity:

* compute chunks advance time by their dataflow-limited latency
  (activity / issue width);
* memory operations overlap up to the function's memory-level
  parallelism (MLP), with MSHR-style merging of accesses to a block
  whose fill is already outstanding;
* the memory system is a caller-provided ``access_fn(op, now) ->
  latency`` closure, so one core model serves every system design.

Energy: Aladdin-style activity counts are charged per compute chunk.
"""

import heapq
import math

from ..common.types import ComputeOp, MemOp
from ..energy.accel_energy import INVOCATION_OVERHEAD_PJ, compute_energy_pj


class AxcCore:
    """One fixed-function accelerator's datapath and memory interface."""

    def __init__(self, axc_id, stats, issue_width=4):
        self.axc_id = axc_id
        self.issue_width = issue_width
        self.stats = stats.scope("axc")
        self._core_stats = stats.scope("axc.core{}".format(axc_id))

    def run(self, trace, start_time, access_fn, mlp, issue_interval=1,
            charge_invocation=True):
        """Execute one invocation to completion; returns the end time.

        Args:
            trace: the :class:`FunctionTrace` to execute.
            start_time: tile clock at invocation start.
            access_fn: ``(MemOp, now) -> latency`` memory-system closure.
            mlp: maximum outstanding memory operations.
            issue_interval: cycles between memory-op issues — 1 for a
                local store (scratchpad/L0X), 2 when every op crosses a
                shared switch whose request and response flits serialise
                on the same link (the SHARED design).
            charge_invocation: charge the fixed per-invocation
                control/sequencing energy.  SCRATCH passes False for the
                continuation windows of one invocation — the datapath
                stays configured across DMA windows.
        """
        generator = self.iter_run(trace, start_time, access_fn, mlp,
                                  issue_interval, charge_invocation)
        while True:
            try:
                next(generator)
            except StopIteration as stop:
                return stop.value

    def iter_run(self, trace, start_time, access_fn, mlp,
                 issue_interval=1, charge_invocation=True):
        """Generator form of :meth:`run`: yields the local clock after
        every memory-op issue, so a scheduler can interleave several
        invocations on one tile (pipelined execution).  The generator's
        return value is the completion time."""
        mlp = max(1, int(mlp))
        now = start_time
        outstanding = []            # heap of completion times
        fill_time_of = {}           # block -> outstanding completion
        int_ops = 0
        fp_ops = 0
        mem_ops = 0
        for op in trace.ops:
            if isinstance(op, ComputeOp):
                int_ops += op.int_ops
                fp_ops += op.fp_ops
                now += max(1, math.ceil(op.total / self.issue_width))
                continue
            if not isinstance(op, MemOp):
                continue
            mem_ops += 1
            # Retire fills that have arrived.
            while outstanding and outstanding[0] <= now:
                heapq.heappop(outstanding)
            # MLP limit: wait for the earliest outstanding fill.
            if len(outstanding) >= mlp:
                earliest = heapq.heappop(outstanding)
                if earliest > now:
                    self._core_stats.add("mlp_stall_cycles", earliest - now)
                    now = earliest
            latency = access_fn(op, now)
            completion = now + latency
            # MSHR merge: an access cannot complete before an
            # already-outstanding fill of the same block.
            pending = fill_time_of.get(op.block)
            if pending is not None and pending > completion:
                completion = pending
                self._core_stats.add("mshr_merges")
            fill_time_of[op.block] = completion
            heapq.heappush(outstanding, completion)
            now += issue_interval  # issue slot(s)
            yield now
        if outstanding:
            now = max(now, max(outstanding))
        self._record(trace, now - start_time, int_ops, fp_ops, mem_ops,
                     charge_invocation)
        return now

    def _record(self, trace, cycles, int_ops, fp_ops, mem_ops,
                charge_invocation=True):
        energy = compute_energy_pj(int_ops, fp_ops)
        if charge_invocation:
            energy += INVOCATION_OVERHEAD_PJ
            self.stats.add("invocations")
        self.stats.add("compute.energy_pj", energy)
        self._core_stats.add("cycles", cycles)
        self._core_stats.add("mem_ops", mem_ops)
        self._core_stats.add("int_ops", int_ops)
        self._core_stats.add("fp_ops", fp_ops)
