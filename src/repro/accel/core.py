"""The fixed-function accelerator cycle model.

The paper (Section 4) drives a constrained dynamic data-dependence graph
"on a cycle-by-cycle [basis], generating any requisite memory operations
in a cycle and stalling the appropriate operations as necessary", with an
aggressive non-blocking memory interface.  This model reproduces that
behaviour at trace granularity:

* compute chunks advance time by their dataflow-limited latency
  (activity / issue width);
* memory operations overlap up to the function's memory-level
  parallelism (MLP), with MSHR-style merging of accesses to a block
  whose fill is already outstanding;
* the memory system is a caller-provided ``access_fn(op, now) ->
  latency`` closure, so one core model serves every system design.

Hot path: the core never walks the raw heterogeneous ``trace.ops`` list.
:mod:`repro.workloads.lowering` compiles each trace once into a flat
stream of ``(mem_op, block)`` / ``(None, latency)`` tuples — adjacent
compute ops pre-fused, line addresses pre-aligned — and both
:meth:`AxcCore.run` (tight loop) and :meth:`AxcCore.iter_run`
(generator, for the pipelined scheduler) interpret that stream with no
per-op type dispatch.  The two paths are exercised for equivalence by
``tests/test_lowering.py`` and both are pinned bit-identical to the
legacy interpreter by ``tests/test_golden_full.py``.

Energy: Aladdin-style activity counts are charged per compute chunk.
"""

import heapq

from ..energy.accel_energy import INVOCATION_OVERHEAD_PJ, compute_energy_pj
from ..workloads.lowering import lowered_trace


class AxcCore:
    """One fixed-function accelerator's datapath and memory interface."""

    def __init__(self, axc_id, stats, issue_width=4):
        self.axc_id = axc_id
        self.issue_width = issue_width
        self.stats = stats.scope("axc")
        self._core_stats = stats.scope("axc.core{}".format(axc_id))
        # Bound counter handles: dotted names resolved once, not per op.
        self._add_mlp_stall = self._core_stats.counter("mlp_stall_cycles")
        self._add_mshr_merge = self._core_stats.counter("mshr_merges")

    def run(self, trace, start_time, access_fn, mlp, issue_interval=1,
            charge_invocation=True):
        """Execute one invocation to completion; returns the end time.

        Args:
            trace: the :class:`FunctionTrace` to execute.
            start_time: tile clock at invocation start.
            access_fn: ``(MemOp, now) -> latency`` memory-system closure.
            mlp: maximum outstanding memory operations.
            issue_interval: cycles between memory-op issues — 1 for a
                local store (scratchpad/L0X), 2 when every op crosses a
                shared switch whose request and response flits serialise
                on the same link (the SHARED design).
            charge_invocation: charge the fixed per-invocation
                control/sequencing energy.  SCRATCH passes False for the
                continuation windows of one invocation — the datapath
                stays configured across DMA windows.
        """
        mlp = max(1, int(mlp))
        lowered = lowered_trace(trace, self.issue_width)
        now = start_time
        outstanding = []            # heap of completion times
        fill_time_of = {}           # block -> outstanding completion
        heappush = heapq.heappush
        heappop = heapq.heappop
        pending_fill = fill_time_of.get
        add_mlp_stall = self._add_mlp_stall
        add_mshr_merge = self._add_mshr_merge
        for op, arg in lowered.steps:
            if op is None:          # fused compute chunk
                now += arg
                continue
            # Retire fills that have arrived.
            while outstanding and outstanding[0] <= now:
                heappop(outstanding)
            # MLP limit: wait for the earliest outstanding fill.
            if len(outstanding) >= mlp:
                earliest = heappop(outstanding)
                if earliest > now:
                    add_mlp_stall(earliest - now)
                    now = earliest
            latency = access_fn(op, now)
            completion = now + latency
            # MSHR merge: an access cannot complete before an
            # already-outstanding fill of the same block.
            pending = pending_fill(arg)
            if pending is not None and pending > completion:
                completion = pending
                add_mshr_merge()
            fill_time_of[arg] = completion
            heappush(outstanding, completion)
            now += issue_interval  # issue slot(s)
        if outstanding:
            now = max(now, max(outstanding))
        self._record(lowered, now - start_time, charge_invocation)
        return now

    def iter_run(self, trace, start_time, access_fn, mlp,
                 issue_interval=1, charge_invocation=True):
        """Generator form of :meth:`run`: yields the local clock after
        every memory-op issue, so a scheduler can interleave several
        invocations on one tile (pipelined execution).  The generator's
        return value is the completion time."""
        mlp = max(1, int(mlp))
        lowered = lowered_trace(trace, self.issue_width)
        now = start_time
        outstanding = []
        fill_time_of = {}
        heappush = heapq.heappush
        heappop = heapq.heappop
        pending_fill = fill_time_of.get
        add_mlp_stall = self._add_mlp_stall
        add_mshr_merge = self._add_mshr_merge
        for op, arg in lowered.steps:
            if op is None:
                now += arg
                continue
            while outstanding and outstanding[0] <= now:
                heappop(outstanding)
            if len(outstanding) >= mlp:
                earliest = heappop(outstanding)
                if earliest > now:
                    add_mlp_stall(earliest - now)
                    now = earliest
            latency = access_fn(op, now)
            completion = now + latency
            pending = pending_fill(arg)
            if pending is not None and pending > completion:
                completion = pending
                add_mshr_merge()
            fill_time_of[arg] = completion
            heappush(outstanding, completion)
            now += issue_interval
            yield now
        if outstanding:
            now = max(now, max(outstanding))
        self._record(lowered, now - start_time, charge_invocation)
        return now

    def _record(self, lowered, cycles, charge_invocation=True):
        energy = compute_energy_pj(lowered.int_ops, lowered.fp_ops)
        if charge_invocation:
            energy += INVOCATION_OVERHEAD_PJ
            self.stats.add("invocations")
        self.stats.add("compute.energy_pj", energy)
        self._core_stats.add("cycles", cycles)
        self._core_stats.add("mem_ops", lowered.mem_ops)
        self._core_stats.add("int_ops", lowered.int_ops)
        self._core_stats.add("fp_ops", lowered.fp_ops)
