"""The fixed-function accelerator cycle model.

The paper (Section 4) drives a constrained dynamic data-dependence graph
"on a cycle-by-cycle [basis], generating any requisite memory operations
in a cycle and stalling the appropriate operations as necessary", with an
aggressive non-blocking memory interface.  This model reproduces that
behaviour at trace granularity:

* compute chunks advance time by their dataflow-limited latency
  (activity / issue width);
* memory operations overlap up to the function's memory-level
  parallelism (MLP), with MSHR-style merging of accesses to a block
  whose fill is already outstanding;
* the memory system is a caller-provided ``access_fn(op, now) ->
  latency`` closure, so one core model serves every system design.

Hot path: the core never walks the raw heterogeneous ``trace.ops`` list.
:mod:`repro.workloads.lowering` compiles each trace once into a flat
stream of ``(mem_op, block, count)`` / ``(None, latency, 1)`` tuples —
adjacent compute ops pre-fused, line addresses pre-aligned, consecutive
same-line same-kind memory ops grouped into *access runs* — and both
:meth:`AxcCore.run` (tight loop) and :meth:`AxcCore.iter_run`
(generator, for the pipelined scheduler) interpret that stream with no
per-op type dispatch.  The two paths are exercised for equivalence by
``tests/test_lowering.py`` and both are pinned bit-identical to the
legacy interpreter by ``tests/test_golden_full.py``.

Run coalescing: when the caller supplies an ``access_run`` entry point
(the protocol controllers' run-coalescing fast path), a whole run is
served by *one* protocol call returning the constant per-op latency;
the core then replays the issue timeline locally (heap bookkeeping
only — no per-op protocol traversal, no per-op stats) which is exact
because every op in the run has the same latency and the same block.
``access_run`` returns ``None`` to decline (guard failed), in which
case the run is expanded op-by-op through ``access_fn`` exactly as
before.  The module-level ``COALESCE_RUNS`` switch (read at call time)
force-disables the fast path — the coalesced-vs-per-op equivalence
property test flips it to prove bit-identity.

Steady-state phases: one level above runs, the phase compiler
(:mod:`repro.workloads.phases`) partitions the stream into windows that
are steady-state *candidates*.  When the caller supplies a
``phase_quote`` hook, each candidate window is offered to the protocol
controller as a whole: a non-``None`` quote means every op of the phase
was served and accounted in one protocol step (bulk sequence flusher,
exact LRU advance), and the core applies a
:class:`~repro.workloads.phases.PhaseTimeline` cached per relative
entry state (outstanding fills expressed as clock offsets) in O(1) —
a cache miss replays the issue timeline once, with no protocol calls,
and serves every later entry with the same signature.  A declined quote
drops the window to the per-run coalesced path, and below that the
per-op path: the fallback ladder of ``docs/simulator.md`` §10.  ``STEADY_PHASES`` (initialised
from the environment variable of the same name, read at call time like
``COALESCE_RUNS``) toggles the path for equivalence testing.

Energy: Aladdin-style activity counts are charged per compute chunk.
"""

import heapq
import os
import warnings

from ..energy.accel_energy import INVOCATION_OVERHEAD_PJ, compute_energy_pj
from ..workloads import vector as vector_mod
from ..workloads.lowering import lowered_trace
from ..workloads.phases import phase_plan
from ..workloads.vector import vector_plan

#: Global enable for the run-coalescing fast path; tests flip this to
#: run the same workload through both paths.
COALESCE_RUNS = True

#: Global enable for the steady-state phase fast path; the environment
#: variable ``STEADY_PHASES`` (0/false/off to disable) sets the initial
#: value, and the equivalence property tests flip the module attribute.
STEADY_PHASES = os.environ.get("STEADY_PHASES", "1").strip().lower() \
    not in ("0", "false", "off", "no")

#: Global enable for the vectorised phase-window fast path (the fifth
#: rung: whole sequences of lease-stable phases batch-quoted and
#: applied in one pass).  Same toggle discipline as ``STEADY_PHASES``;
#: requires numpy — on a numpy-less install the rung silently (after
#: one warning) degrades to the per-phase path, so results never
#: depend on whether numpy is importable.
VECTOR_PHASES = os.environ.get("VECTOR_PHASES", "1").strip().lower() \
    not in ("0", "false", "off", "no")

_warned_no_numpy = False


def _vector_available():
    """True when the vector rung can run; warns once when numpy is
    missing but ``VECTOR_PHASES`` asked for it."""
    global _warned_no_numpy
    if vector_mod.HAVE_NUMPY:
        return True
    if not _warned_no_numpy:
        _warned_no_numpy = True
        warnings.warn(
            "VECTOR_PHASES requested but numpy is not installed; "
            "falling back to the steady-state phase rung",
            RuntimeWarning, stacklevel=3)
    return False


class AxcCore:
    """One fixed-function accelerator's datapath and memory interface."""

    def __init__(self, axc_id, stats, issue_width=4):
        self.axc_id = axc_id
        self.issue_width = issue_width
        self.stats = stats.scope("axc")
        self._core_stats = stats.scope("axc.core{}".format(axc_id))
        # Bound counter handles: dotted names resolved once, not per op.
        self._add_mlp_stall = self._core_stats.counter("mlp_stall_cycles")
        self._add_mshr_merge = self._core_stats.counter("mshr_merges")

    def run(self, trace, start_time, access_fn, mlp, issue_interval=1,
            charge_invocation=True, access_run=None, phase_quote=None,
            leased_phases=True, phase_quote_batch=None):
        """Execute one invocation to completion; returns the end time.

        Args:
            trace: the :class:`FunctionTrace` to execute.
            start_time: tile clock at invocation start.
            access_fn: ``(MemOp, now) -> latency`` memory-system closure.
            mlp: maximum outstanding memory operations.
            issue_interval: cycles between memory-op issues — 1 for a
                local store (scratchpad/L0X), 2 when every op crosses a
                shared switch whose request and response flits serialise
                on the same link (the SHARED design).
            charge_invocation: charge the fixed per-invocation
                control/sequencing energy.  SCRATCH passes False for the
                continuation windows of one invocation — the datapath
                stays configured across DMA windows.
            access_run: optional ``(op, count, now, horizon,
                issue_interval) -> latency | None`` run-coalescing entry
                point, tried on every access run of length >= 2.
                Returning the (constant) per-op latency means all
                ``count`` remaining ops were served — counters flushed,
                state updated — in one protocol step, and the core
                replays the timeline locally.  Returning ``None``
                declines (guard failed): the core expands one op
                through ``access_fn`` and retries with the remainder,
                so a run whose first op installs the line still
                coalesces its tail.  ``horizon`` is
                ``max(now, max(outstanding))`` —
                an upper-bound anchor for the controller's lease-span
                guard (no per-op time inside the run can exceed
                ``horizon + count * (latency + issue_interval)``).
            phase_quote: optional ``(phase, now, horizon,
                issue_interval) -> (load_lat, store_lat) | None``
                steady-state phase entry point, tried on every compiled
                phase of the trace's :class:`~repro.workloads.phases.
                PhasePlan`.  A non-``None`` quote means the controller
                served and accounted *every* op of the phase (bulk
                ledger flush, LRU advance, dirty marks) at the two
                constant latencies returned; the core then applies the
                phase's timeline, cached per relative entry state, in
                O(1) (a cache miss replays once).  ``None`` declines:
                the window falls back to the per-run coalesced path.
            leased_phases: which compiled plan variant to interpret —
                ``True`` for lease-capped windows (ACC's cover guard
                wants short phases), ``False`` for the long structural
                windows an expiry-free controller can absorb whole.
            phase_quote_batch: optional ``(window, now, horizon,
                issue_interval) -> (accepted, load_lat, store_lat) |
                None`` vectorised entry point, tried on every
                :class:`~repro.workloads.vector.VectorWindow` of the
                plan (a maximal run of consecutive phases).  The
                controller evaluates the whole window's guard in one
                vectorised pass and serves/accounts the *accepted
                prefix* of its phases in bulk; the core then applies
                the accepted timelines — in one closed-form array
                reduction when the stall-free regime holds, else one
                cached timeline per phase — and the remaining entries
                drop down the ladder unchanged.  ``None`` (or an empty
                prefix) declines the window to the per-phase path.
                Only consulted when ``VECTOR_PHASES`` is on and numpy
                is importable.
        """
        mlp = max(1, int(mlp))
        lowered = lowered_trace(trace, self.issue_width)
        outstanding = []            # heap of completion times
        fill_time_of = {}           # block -> outstanding completion
        run_fn = access_run if COALESCE_RUNS else None
        plan = None
        if phase_quote is not None and STEADY_PHASES:
            plan = phase_plan(trace, self.issue_width, leased_phases)
            if not plan.num_phases:
                plan = None
        vplan = None
        if plan is not None and phase_quote_batch is not None \
                and VECTOR_PHASES and _vector_available():
            vplan = vector_plan(trace, self.issue_width, leased_phases)
            if vplan is not None and not vplan.windows:
                vplan = None
        if plan is None:
            now = self._interpret(
                lowered.steps, start_time, outstanding, fill_time_of,
                access_fn, run_fn, mlp, issue_interval)
        else:
            now = start_time
            entries = plan.entries
            num_entries = len(entries)
            window_at = vplan.window_at if vplan is not None else None
            index = 0
            while index < num_entries:
                phase, steps = entries[index]
                if phase is not None:
                    if window_at is not None:
                        window = window_at.get(index)
                        if window is not None:
                            accepted, now = self._run_window(
                                window, phase_quote_batch, now,
                                outstanding, fill_time_of, mlp,
                                issue_interval)
                            if accepted:
                                # The accepted prefix is served and
                                # applied; the remaining entries of the
                                # window (and everything after) drop
                                # down the per-phase ladder unchanged.
                                index += accepted
                                continue
                    horizon = now
                    if outstanding:
                        peak = max(outstanding)
                        if peak > horizon:
                            horizon = peak
                    quoted = phase_quote(phase, now, horizon,
                                         issue_interval)
                    if quoted is not None:
                        load_lat, store_lat = quoted
                        now = self._apply_phase_timeline(
                            phase, load_lat, store_lat, now,
                            outstanding, fill_time_of, mlp,
                            issue_interval)
                        index += 1
                        continue
                now = self._interpret(
                    steps, now, outstanding, fill_time_of, access_fn,
                    run_fn, mlp, issue_interval)
                index += 1
        if outstanding:
            now = max(now, max(outstanding))
        self._record(lowered, now - start_time, charge_invocation)
        return now

    def _apply_phase_timeline(self, phase, load_lat, store_lat, now,
                              outstanding, fill_time_of, mlp, interval):
        """Apply one accepted phase's cached timeline; returns ``now``.

        Retire fills that have arrived — exactly what the per-op path's
        next access would do first — then express the surviving entry
        state relative to the clock.  Every simulator time is dyadic,
        so relative replay + rebase is bit-identical to absolute
        replay, and the timeline cache hits whenever this phase was
        ever entered with the same relative state.
        """
        heappop = heapq.heappop
        while outstanding and outstanding[0] <= now:
            heappop(outstanding)
        rel_heap = tuple(sorted(
            completion - now for completion in outstanding))
        rel_fills = ()
        if fill_time_of:
            # Only pending fills of the phase's own lines can merge;
            # older entries (<= now) can never beat a future completion.
            pending = fill_time_of.get
            items = None
            for info in phase.block_info:
                fill = pending(info[0])
                if fill is not None and fill > now:
                    if items is None:
                        items = []
                    items.append((info[0], fill - now,
                                  info[5], info[6]))
            if items is not None:
                rel_fills = tuple(items)
        timeline = phase.timeline(load_lat, store_lat, mlp, interval,
                                  rel_heap, rel_fills)
        if timeline.mlp_stall:
            self._add_mlp_stall(timeline.mlp_stall)
        if timeline.mshr_merges:
            self._add_mshr_merge(timeline.mshr_merges)
        for block, rel in timeline.fill_residue:
            fill_time_of[block] = now + rel
        # Entries at or below the exit clock would be drained before
        # they could ever matter, so the pruned exit heap (sorted
        # ascending — a valid heap) replaces the live one wholesale.
        outstanding[:] = [now + rel for rel in timeline.exit_heap]
        return now + timeline.cycles

    def _run_window(self, window, batch_fn, now, outstanding,
                    fill_time_of, mlp, interval):
        """Offer a whole phase window to the batched quote; returns
        ``(accepted_phases, now)``.

        On a non-empty accepted prefix the controller has already
        served and accounted every op of those phases; this applies
        their cycle timelines.  When every accepted phase is in the
        stall-free closed-form regime — per-op latency at most the
        issue interval, entry heap below the MLP limit, no pending
        fill of any window line — the whole prefix collapses to one
        array-derived total (``cum_mem_ops * interval + cum_compute``)
        with the entry heap filtered once against the exit clock:
        bit-identical to chaining the per-phase closed forms, because
        each phase's closed form neither stalls, merges, writes fills,
        nor admits new heap entries, so the conditions persist and the
        survivors of the chained prunes are exactly the entries beyond
        the final clock.  Otherwise each accepted phase applies its
        cached timeline in order, exactly as the per-phase rung would.
        """
        horizon = now
        if outstanding:
            peak = max(outstanding)
            if peak > horizon:
                horizon = peak
        quoted = batch_fn(window, now, horizon, interval)
        if quoted is None:
            return 0, now
        accepted, load_lat, store_lat = quoted
        heappop = heapq.heappop
        while outstanding and outstanding[0] <= now:
            heappop(outstanding)
        bulk = len(outstanding) < mlp \
            and (not window.cum_loads[accepted] or load_lat <= interval) \
            and (not window.cum_stores[accepted]
                 or store_lat <= interval)
        if bulk and fill_time_of:
            pending = fill_time_of.get
            row_blocks = window.row_blocks
            for i in range(window.row_start[accepted]):
                fill = pending(row_blocks[i])
                if fill is not None and fill > now:
                    bulk = False
                    break
        if bulk:
            now += window.prefix_cycles(accepted, interval)
            if outstanding:
                outstanding[:] = sorted(
                    completion for completion in outstanding
                    if completion > now)
        else:
            phases = window.phases
            for j in range(accepted):
                now = self._apply_phase_timeline(
                    phases[j], load_lat, store_lat, now, outstanding,
                    fill_time_of, mlp, interval)
        return accepted, now

    def _interpret(self, steps, now, outstanding, fill_time_of,
                   access_fn, run_fn, mlp, issue_interval):
        """Interpret a window of lowered steps (per-op + coalesced-run
        paths), mutating the timeline state in place; returns ``now``."""
        heappush = heapq.heappush
        heappop = heapq.heappop
        pending_fill = fill_time_of.get
        add_mlp_stall = self._add_mlp_stall
        add_mshr_merge = self._add_mshr_merge
        for op, arg, count in steps:
            if op is None:          # fused compute chunk
                now += arg
                continue
            if count == 1:
                # Retire fills that have arrived.
                while outstanding and outstanding[0] <= now:
                    heappop(outstanding)
                # MLP limit: wait for the earliest outstanding fill.
                if len(outstanding) >= mlp:
                    earliest = heappop(outstanding)
                    if earliest > now:
                        add_mlp_stall(earliest - now)
                        now = earliest
                latency = access_fn(op, now)
                completion = now + latency
                # MSHR merge: an access cannot complete before an
                # already-outstanding fill of the same block.
                pending = pending_fill(arg)
                if pending is not None and pending > completion:
                    completion = pending
                    add_mshr_merge()
                fill_time_of[arg] = completion
                heappush(outstanding, completion)
                now += issue_interval  # issue slot(s)
                continue
            # Access run of length >= 2: serve as much of it as possible
            # through the coalesced fast path.  A declined attempt
            # expands ONE op through ``access_fn`` and retries with the
            # remainder — a run usually declines only because its first
            # op must miss (install the line) or upgrade (acquire a
            # write epoch); after that op the run is steady state and
            # the rest coalesces.  Each op is served by exactly one
            # path, so the expansion is bit-identical to the pure
            # per-op interpreter whatever the accept/decline pattern.
            remaining = count
            while remaining:
                latency = None
                if remaining > 1 and run_fn is not None:
                    horizon = now
                    if outstanding:
                        peak = max(outstanding)
                        if peak > horizon:
                            horizon = peak
                    latency = run_fn(op, remaining, now, horizon,
                                     issue_interval)
                if latency is not None:
                    # The protocol served (and accounted) the remaining
                    # ops at constant per-op latency; replay the issue
                    # timeline with heap bookkeeping only.
                    stall = 0
                    merges = 0
                    for _ in range(remaining):
                        while outstanding and outstanding[0] <= now:
                            heappop(outstanding)
                        if len(outstanding) >= mlp:
                            earliest = heappop(outstanding)
                            if earliest > now:
                                stall += earliest - now
                                now = earliest
                        completion = now + latency
                        pending = pending_fill(arg)
                        if pending is not None and pending > completion:
                            completion = pending
                            merges += 1
                        fill_time_of[arg] = completion
                        heappush(outstanding, completion)
                        now += issue_interval
                    if stall:
                        add_mlp_stall(stall)
                    if merges:
                        add_mshr_merge(merges)
                    break
                # Expand one op (ops in a run are interchangeable —
                # same kind, same line — so replaying the first op
                # preserves per-op semantics exactly).
                while outstanding and outstanding[0] <= now:
                    heappop(outstanding)
                if len(outstanding) >= mlp:
                    earliest = heappop(outstanding)
                    if earliest > now:
                        add_mlp_stall(earliest - now)
                        now = earliest
                latency = access_fn(op, now)
                completion = now + latency
                pending = pending_fill(arg)
                if pending is not None and pending > completion:
                    completion = pending
                    add_mshr_merge()
                fill_time_of[arg] = completion
                heappush(outstanding, completion)
                now += issue_interval
                remaining -= 1
        return now

    def iter_run(self, trace, start_time, access_fn, mlp,
                 issue_interval=1, charge_invocation=True):
        """Generator form of :meth:`run`: yields the local clock after
        every memory-op issue, so a scheduler can interleave several
        invocations on one tile (pipelined execution).  The generator's
        return value is the completion time.

        Access runs are always expanded op-by-op here: between yields
        another invocation may mutate shared protocol state (evict a
        line, expire a lease), so no run guard evaluated at the start of
        a run could remain valid across its span.
        """
        mlp = max(1, int(mlp))
        lowered = lowered_trace(trace, self.issue_width)
        now = start_time
        outstanding = []
        fill_time_of = {}
        heappush = heapq.heappush
        heappop = heapq.heappop
        pending_fill = fill_time_of.get
        add_mlp_stall = self._add_mlp_stall
        add_mshr_merge = self._add_mshr_merge
        for op, arg, count in lowered.steps:
            if op is None:
                now += arg
                continue
            for _ in range(count):
                while outstanding and outstanding[0] <= now:
                    heappop(outstanding)
                if len(outstanding) >= mlp:
                    earliest = heappop(outstanding)
                    if earliest > now:
                        add_mlp_stall(earliest - now)
                        now = earliest
                latency = access_fn(op, now)
                completion = now + latency
                pending = pending_fill(arg)
                if pending is not None and pending > completion:
                    completion = pending
                    add_mshr_merge()
                fill_time_of[arg] = completion
                heappush(outstanding, completion)
                now += issue_interval
                yield now
        if outstanding:
            now = max(now, max(outstanding))
        self._record(lowered, now - start_time, charge_invocation)
        return now

    def _record(self, lowered, cycles, charge_invocation=True):
        energy = compute_energy_pj(lowered.int_ops, lowered.fp_ops)
        if charge_invocation:
            energy += INVOCATION_OVERHEAD_PJ
            self.stats.add("invocations")
        self.stats.add("compute.energy_pj", energy)
        self._core_stats.add("cycles", cycles)
        self._core_stats.add("mem_ops", lowered.mem_ops)
        self._core_stats.add("int_ops", lowered.int_ops)
        self._core_stats.add("fp_ops", lowered.fp_ops)
