"""Per-invocation coherence policy engine (ROADMAP item 3).

The paper's four systems are static design points; this package selects
the coherence strategy *per invocation* — the Cohmeleon/HyDRA direction:

* :mod:`repro.policy.telemetry` — the :class:`InvocationTelemetry`
  record (reuse distance, footprint, lease expiries, contention stalls)
  every learning selector feeds on;
* :mod:`repro.policy.selectors` — static / schedule / epsilon-greedy /
  UCB selectors with an explicit seeded RNG;
* :mod:`repro.policy.engine` — the oracle evaluator (per-invocation
  argmin over strategies via the execution engine's cached batch path),
  in-process bandit training, and the ``policy`` experiment grid.

The POLICY system itself lives in :mod:`repro.systems.policy`.
"""

from .engine import evaluate_selectors, policy_grid, train_bandit
from .selectors import (BanditSelector, ScheduleSelector, Selector,
                        StaticSelector, make_selector)
from .telemetry import InvocationTelemetry, telemetry_from_delta

__all__ = [
    "BanditSelector", "InvocationTelemetry", "ScheduleSelector",
    "Selector", "StaticSelector", "evaluate_selectors", "make_selector",
    "policy_grid", "telemetry_from_delta", "train_bandit",
]
