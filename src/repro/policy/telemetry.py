"""Per-invocation telemetry the policy selectors learn from.

One :class:`InvocationTelemetry` record summarises what one invocation
cost under the strategy that ran it, combining *trace-derived* features
(reuse distance, footprint — known before the invocation runs, hence
usable as bandit context) with *observed* outcomes (cycles, energy,
lease expiries, contention stalls — known only afterwards, hence the
reward signal).

Observed fields are extracted from a stats-registry delta so the
production controllers need no new counters (the golden grids pin their
complete stats dicts); lease events come from the
:class:`repro.coherence.lease_policy.CountingLeasePolicy` decorator the
policy system installs on its fusion tile.
"""

from dataclasses import dataclass


@dataclass
class InvocationTelemetry:
    """What one invocation cost under one coherence strategy."""

    #: Invocation index in program order.
    index: int
    #: Accelerated function name.
    function: str
    #: Strategy key that ran it (see ``make_strategy``).
    strategy: str
    #: Invocation latency, cycles (flushes included).
    cycles: float
    #: Energy attributed to the invocation, pJ.
    energy_pj: float
    #: Invocations back to the nearest earlier toucher of this
    #: footprint (-1 = first touch).
    reuse_distance: int
    #: Touched cache blocks.
    footprint_blocks: int
    #: ACC leases that expired and were re-requested (renewal misses).
    lease_expiries: int
    #: Live-leased lines evicted for capacity.
    wasted_leases: int
    #: Cycles lost to contention (write-epoch, GTIME and MLP stalls).
    contention_stalls: float


def telemetry_from_delta(index, trace, strategy_key, cycles, delta,
                         reuse_distance, footprint_blocks,
                         lease_expiries=0, wasted_leases=0):
    """Build a record from a per-invocation stats delta.

    ``delta`` is ``stats.diff(snapshot_before)``; energy and contention
    are recovered from counter-name suffixes (every energy counter ends
    in ``energy_pj``, every stall-time counter in ``stall_cycles``),
    mirroring how ``BaseSystem._record_invocation`` attributes energy.
    """
    energy = 0.0
    stalls = 0.0
    for key, value in delta.items():
        if key.endswith("energy_pj"):
            energy += value
        elif key.endswith("stall_cycles"):
            stalls += value
    return InvocationTelemetry(
        index=index, function=trace.name, strategy=strategy_key,
        cycles=cycles, energy_pj=energy, reuse_distance=reuse_distance,
        footprint_blocks=footprint_blocks, lease_expiries=lease_expiries,
        wasted_leases=wasted_leases, contention_stalls=stalls)
