"""Oracle evaluation and bandit training for the policy subsystem.

The oracle question — *how much is left on the table by picking one
coherence design for the whole run?* — is answered constructively:

1. run every candidate strategy uniformly (single-entry schedule
   selector), all through the execution engine's cached batch path, so
   per-invocation cycle costs come out of ``policy.inv.<i>.cycles``;
2. build the *mixed* schedule taking the per-invocation argmin;
3. evaluate the mixed schedule as one more (cached) run, and define
   the oracle as the best of {mixed, all uniforms} — the mixed run is
   re-simulated, not summed from per-strategy costs, so cross-strategy
   interference (cold caches after a family switch, DMA recalls) is
   charged honestly, and including the uniforms guarantees
   ``oracle <= best static`` by construction.

Bandit training runs in-process: one seeded selector accumulates
telemetry across ``episodes`` full passes, then a frozen greedy
(``exploit``) pass produces the reported number.  Everything is a pure
function of (benchmark, size, config), so results stay deterministic
under ``--jobs`` and cacheable by content hash.
"""

from ..common.config import small_config
from ..sim.engine import RunRequest, get_engine
from ..sim.results import is_failure
from ..workloads.registry import BENCHMARKS, build_workload
from .selectors import BanditSelector

#: Candidate strategy keys and the legacy system each reproduces.
LEGACY_SYSTEM_OF = {
    "scratch": "SCRATCH",
    "shared": "SHARED",
    "fusion": "FUSION",
    "fusion-dx": "FUSION-Dx",
}

DEFAULT_STRATEGIES = tuple(LEGACY_SYSTEM_OF)


def _uniform_config(config, key, strategies):
    """Config running strategy ``key`` for every invocation (the
    schedule selector clamps past the last entry)."""
    return config.with_policy(selector="schedule", schedule=(key,),
                              strategies=tuple(strategies))


def _schedule_config(config, schedule, strategies):
    return config.with_policy(selector="schedule",
                              schedule=tuple(schedule),
                              strategies=tuple(strategies))


def policy_grid(size, benchmarks=BENCHMARKS,
                strategies=DEFAULT_STRATEGIES, config=None):
    """The statically-known simulation grid of the policy experiment:
    the legacy baselines plus every uniform-schedule POLICY run."""
    config = config or small_config()
    requests = []
    for benchmark in benchmarks:
        for key in strategies:
            legacy = LEGACY_SYSTEM_OF.get(key.partition(":")[0])
            if legacy is not None and ":" not in key:
                requests.append(RunRequest(legacy, benchmark, size,
                                           config))
            requests.append(RunRequest(
                "POLICY", benchmark, size,
                _uniform_config(config, key, strategies)))
    return requests


def invocation_cycles(result, num_invocations):
    """Per-invocation cycles recorded by a telemetry-recording POLICY
    run, in program order."""
    return [result.stat("policy.inv.{}.cycles".format(i))
            for i in range(num_invocations)]


def evaluate_selectors(benchmark, size="full", config=None,
                       strategies=DEFAULT_STRATEGIES):
    """Oracle-vs-static evaluation for one benchmark.

    Returns a dict with per-strategy uniform costs (accel cycles), the
    best static cost, the oracle schedule and its cost, and the
    per-invocation argmin table the oracle was built from.
    """
    config = config or small_config()
    strategies = tuple(strategies)
    workload = build_workload(benchmark, size)
    invocations = len(workload.invocations)

    requests = []
    for key in strategies:
        requests.append(RunRequest(
            "POLICY", benchmark, size,
            _uniform_config(config, key, strategies)))
    engine = get_engine()
    results = engine.run_batch(requests)
    uniform = {}
    for key, result in zip(strategies, results):
        if is_failure(result):
            raise RuntimeError(
                "uniform {} run failed on {}: {}".format(
                    key, benchmark, result))
        uniform[key] = result

    per_invocation = {
        key: invocation_cycles(result, invocations)
        for key, result in uniform.items()
    }
    mixed_schedule = tuple(
        min(strategies, key=lambda key: (per_invocation[key][i], key))
        for i in range(invocations))

    static_cycles = {key: uniform[key].accel_cycles
                     for key in strategies}
    best_static_key = min(strategies,
                          key=lambda key: (static_cycles[key], key))
    best_static = static_cycles[best_static_key]

    candidates = dict(static_cycles)
    if len(set(mixed_schedule)) > 1:
        mixed_result = engine.run_one(RunRequest(
            "POLICY", benchmark, size,
            _schedule_config(config, mixed_schedule, strategies)))
        if not is_failure(mixed_result):
            candidates["<mixed>"] = mixed_result.accel_cycles
    oracle_key = min(candidates,
                     key=lambda key: (candidates[key], key))
    oracle = candidates[oracle_key]

    return {
        "benchmark": benchmark,
        "size": size,
        "strategies": strategies,
        "invocations": invocations,
        "static_cycles": static_cycles,
        "best_static_key": best_static_key,
        "best_static": best_static,
        "mixed_schedule": mixed_schedule,
        "oracle_key": oracle_key,
        "oracle": oracle,
        "per_invocation": per_invocation,
    }


def train_bandit(benchmark, size="full", config=None,
                 strategies=DEFAULT_STRATEGIES, selector="bandit",
                 episodes=None, epsilon=None, ucb_c=None, seed=None):
    """Train a bandit over ``episodes`` passes, then evaluate greedily.

    Training runs in-process (one selector object accumulates telemetry
    across whole-workload passes — the engine cache would defeat
    learning); the returned dict reports the frozen-greedy evaluation
    pass's accel cycles.
    """
    config = config or small_config()
    policy = config.policy
    episodes = policy.episodes if episodes is None else episodes
    epsilon = policy.epsilon if epsilon is None else epsilon
    ucb_c = policy.ucb_c if ucb_c is None else ucb_c
    seed = policy.seed if seed is None else seed
    workload = build_workload(benchmark, size)
    if selector == "bandit":
        bandit = BanditSelector(strategies, workload, epsilon=epsilon,
                                ucb_c=0.0, seed=seed)
    elif selector == "ucb":
        bandit = BanditSelector(strategies, workload, epsilon=0.0,
                                ucb_c=ucb_c, seed=seed)
    else:
        raise ValueError(
            "unknown learning selector {!r}".format(selector))

    from ..systems.policy import PolicySystem
    run_config = config.with_policy(selector=selector,
                                    strategies=tuple(strategies),
                                    epsilon=epsilon,
                                    ucb_c=ucb_c if ucb_c else policy.ucb_c,
                                    seed=seed)
    episode_cycles = []
    for _episode in range(episodes):
        result = PolicySystem(run_config, workload,
                              selector=bandit).run()
        episode_cycles.append(result.accel_cycles)
    bandit.exploit = True
    final = PolicySystem(run_config, workload, selector=bandit).run()
    chosen = tuple(
        bandit.select(i, trace).key
        for i, trace in enumerate(workload.invocations))
    return {
        "benchmark": benchmark,
        "selector": selector,
        "episodes": episodes,
        "episode_cycles": episode_cycles,
        "cycles": final.accel_cycles,
        "schedule": chosen,
        "result": final,
    }


def gap_closed(best_static, oracle, learned):
    """Fraction of the static-to-oracle gap a learned selector closed.

    1.0 when the gap is zero and the learner matched the best static
    system (nothing to close, nothing lost); 0.0 when it did no better
    than the best static; negative when it did worse.
    """
    gap = best_static - oracle
    if gap <= 0:
        return 1.0 if learned <= best_static else 0.0
    return (best_static - learned) / gap
