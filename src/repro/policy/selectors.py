"""Strategy selectors: static, schedule, and contextual bandits.

Selectors answer one question per invocation — *which coherence strategy
runs it* — from nothing but the invocation's trace-derived context and
the telemetry of earlier invocations.  Randomness (the epsilon-greedy
explorer) flows exclusively through an explicit ``random.Random(seed)``
owned by the selector, so a policy run is a pure function of its config
and stays bit-identical under ``--jobs`` fan-out and cache replay.

The bandit is deliberately simple (Cohmeleon-style): arms are strategy
keys; the context is (function, reuse-distance bucket, footprint
bucket); the reward is negated invocation cycles, tracked as running
means per (context, arm) with global per-arm means as the cold-start
fallback.  Ties and argmins resolve by arm order, never by hash order.
"""

import math
import random

from ..common.errors import ConfigError
from ..coherence.strategy import make_strategy
from ..workloads.characterize import invocation_features


def _bucket(value):
    """Power-of-4 magnitude bucket; the -1 first-touch marker survives."""
    if value < 0:
        return -1
    bucket = 0
    while value > 3:
        value >>= 2
        bucket += 1
    return bucket


class Selector:
    """Base selector: a fixed choice, no learning, no telemetry."""

    #: Whether runs under this selector must record telemetry.
    records_telemetry = False

    def select(self, index, trace):
        """Return the :class:`CoherenceStrategy` for invocation ``index``."""
        raise NotImplementedError

    def observe(self, index, trace, strategy, cycles, record):
        """Digest the outcome of invocation ``index`` (no-op by default);
        ``record`` is the telemetry record or ``None`` when not recorded."""


class StaticSelector(Selector):
    """Always the same strategy — today's systems, as a selector."""

    def __init__(self, key):
        self.strategy = make_strategy(key)

    def select(self, index, trace):
        return self.strategy


class ScheduleSelector(Selector):
    """Invocation ``i`` runs ``schedule[i]`` (clamped to the last entry).

    The oracle evaluator's vehicle: an explicit per-invocation strategy
    assignment, replayable through the engine's cached batch path.  A
    single-entry schedule is a uniform run of that strategy.
    """

    records_telemetry = True

    def __init__(self, schedule):
        if not schedule:
            raise ConfigError("empty strategy schedule")
        self.strategies = [make_strategy(key) for key in schedule]

    def select(self, index, trace):
        if index < len(self.strategies):
            return self.strategies[index]
        return self.strategies[-1]


class BanditSelector(Selector):
    """Epsilon-greedy / UCB contextual bandit over strategy arms.

    Minimises invocation cycles.  With ``ucb_c > 0`` exploration uses
    the deterministic UCB bonus; otherwise it is epsilon-greedy from
    the seeded RNG.  Setting ``exploit = True`` freezes learning-free
    greedy selection (used for the post-training evaluation pass).
    """

    records_telemetry = True

    def __init__(self, arms, workload, epsilon=0.1, ucb_c=0.0,
                 seed=20150613):
        if not arms:
            raise ConfigError("bandit needs at least one strategy arm")
        self.arms = [make_strategy(key) for key in arms]
        self.epsilon = epsilon
        self.ucb_c = ucb_c
        self.rng = random.Random(seed)
        self.exploit = False
        self._features = invocation_features(workload)
        #: context -> per-arm [observations, mean cycles]
        self._context_stats = {}
        self._global = [[0, 0.0] for _ in self.arms]
        self._observations = 0

    # -- context ------------------------------------------------------------

    def _context(self, index, trace):
        if index < len(self._features):
            reuse, footprint = self._features[index]
        else:
            reuse, footprint = -1, 0
        return (trace.name, _bucket(reuse), _bucket(footprint))

    def _stats_for(self, context):
        stats = self._context_stats.get(context)
        if stats is None:
            stats = self._context_stats[context] = [
                [0, 0.0] for _ in self.arms]
        return stats

    # -- selection ----------------------------------------------------------

    def select(self, index, trace):
        stats = self._stats_for(self._context(index, trace))
        if self.exploit:
            return self.arms[self._greedy(stats)]
        for arm, (count, _mean) in enumerate(stats):
            if count == 0:
                return self.arms[arm]
        if self.ucb_c > 0:
            return self.arms[self._ucb(stats)]
        if self.epsilon > 0 and self.rng.random() < self.epsilon:
            return self.arms[self.rng.randrange(len(self.arms))]
        return self.arms[self._greedy(stats)]

    def _greedy(self, stats):
        """Lowest mean cycles; context stats, then global, then arm 0."""
        for table in (stats, self._global):
            tried = [arm for arm, (count, _mean) in enumerate(table)
                     if count > 0]
            if tried:
                return min(tried, key=lambda arm: (table[arm][1], arm))
        return 0

    def _ucb(self, stats):
        """UCB for minimisation: mean minus a scaled exploration bonus.

        The bonus is scaled by the global mean cycle count so ``ucb_c``
        stays dimensionless across workloads of different magnitudes.
        """
        scale = (sum(mean * count for count, mean in self._global)
                 / max(1, self._observations))
        total = sum(count for count, _mean in stats)

        def score(arm):
            count, mean = stats[arm]
            bonus = self.ucb_c * scale * math.sqrt(
                math.log(total + 1) / count)
            return mean - bonus

        return min(range(len(self.arms)), key=lambda arm: (score(arm),
                                                           arm))

    # -- learning -----------------------------------------------------------

    def observe(self, index, trace, strategy, cycles, record):
        if self.exploit:
            return
        try:
            arm = next(i for i, candidate in enumerate(self.arms)
                       if candidate.key == strategy.key)
        except StopIteration:
            return
        for table in (self._stats_for(self._context(index, trace)),
                      self._global):
            entry = table[arm]
            entry[0] += 1
            entry[1] += (cycles - entry[1]) / entry[0]
        self._observations += 1


def make_selector(policy, workload):
    """Build the selector a :class:`PolicyConfig` describes."""
    if policy.selector == "static":
        return StaticSelector(policy.static_strategy)
    if policy.selector == "schedule":
        return ScheduleSelector(policy.schedule)
    if policy.selector == "bandit":
        return BanditSelector(policy.strategies, workload,
                              epsilon=policy.epsilon, ucb_c=0.0,
                              seed=policy.seed)
    if policy.selector == "ucb":
        return BanditSelector(policy.strategies, workload,
                              epsilon=0.0, ucb_c=policy.ucb_c,
                              seed=policy.seed)
    raise ConfigError(
        "unknown policy selector {!r}".format(policy.selector))
