"""Command-line interface: run benchmarks and regenerate paper artefacts.

Examples::

    fusion-sim run FUSION histogram --size small
    fusion-sim experiment fig6b --size small --format csv
    fusion-sim experiment all --size full
    fusion-sim compare fft --size small
    fusion-sim area --axcs 6
    fusion-sim trace fft /tmp/fft.trace --size small
    fusion-sim multitenant adpcm filter --size tiny
    fusion-sim --jobs 4 experiment all --size full
    fusion-sim --no-cache run FUSION fft --size small
    fusion-sim --timeout 300 --retries 3 experiment all --size full
    fusion-sim cache stats
    fusion-sim profile FUSION fft --size small --top 20
    fusion-sim doctor --quick
    fusion-sim serve --port 7117
    fusion-sim submit --port 7117 --systems FUSION,SHARED \\
        --benchmarks fft --size tiny --axis lease=100,500 --wait
    fusion-sim status <job-id> --port 7117
    fusion-sim fetch <job-id> --port 7117 --format csv
"""

import argparse
import os
import sys

from .common.config import small_config
from .common.config_io import load_config
from .common.errors import ConfigError
from .energy.area import area_table, tile_area
from .sim import charts, export
from .sim import engine as engine_mod
from .sim.experiments import ALL_EXPERIMENTS, table2
from .sim.simulator import run
from .systems import SYSTEMS
from .systems.multitenant import MultiTenantFusionSystem
from .workloads import trace_io
from .workloads.registry import BENCHMARKS, build_workload


def _cmd_run(args):
    config = load_config(args.config) if args.config else None
    result = run(args.system, args.benchmark, args.size, config)
    if args.validate:
        from .sim.validate import check_or_raise
        check_or_raise(result)
    if args.format == "json":
        print(export.result_to_json(result, include_stats=args.stats))
        return 0
    print("system     : {}".format(result.system))
    print("benchmark  : {}".format(result.benchmark))
    print("accel cyc  : {}".format(result.accel_cycles))
    print("total cyc  : {}".format(result.total_cycles))
    print("energy (uJ): {:.3f}".format(result.energy.total_pj / 1e6))
    for component, value in sorted(result.energy.components.items()):
        if value:
            print("  {:<20s} {:.3f} uJ".format(component, value / 1e6))
    print("tile link  : {:.2f} flits/cycle".format(
        result.link_utilization()))
    return 0


def _render(table, fmt):
    if fmt == "csv":
        return export.table_to_csv(table)
    if fmt == "json":
        return export.table_to_json(table)
    return table.render()


def _cmd_experiment(args):
    names = (list(ALL_EXPERIMENTS) if args.name == "all"
             else [args.name])
    for name in names:
        experiment = ALL_EXPERIMENTS[name]
        table = experiment() if name == "table2" else \
            experiment(size=args.size)
        print(_render(table, args.format))
        print()
    return 0


def _cmd_compare(args):
    systems = ("SCRATCH", "SHARED", "FUSION", "FUSION-Dx", "IDEAL")
    results = {name: run(name, args.benchmark, args.size)
               for name in systems}
    ideal = results["IDEAL"].accel_cycles
    print("benchmark: {} (size={})\n".format(args.benchmark, args.size))
    print(charts.bar_chart(
        [(name, results[name].accel_cycles / 1000.0)
         for name in systems], label_width=10))
    print()
    print("{:<10s} {:>10s} {:>10s} {:>12s} {:>10s}".format(
        "system", "KCycles", "uJ", "efficiency", "link f/c"))
    for name in systems:
        result = results[name]
        print("{:<10s} {:>10.1f} {:>10.2f} {:>11.0f}% {:>10.2f}".format(
            name, result.accel_cycles / 1000.0,
            result.energy.total_pj / 1e6,
            100.0 * ideal / result.accel_cycles,
            result.link_utilization()))
    print()
    print(charts.figure6a_chart({
        args.benchmark: {name: results[name]
                         for name in ("SCRATCH", "SHARED", "FUSION")}}))
    return 0


def _cmd_area(args):
    config = small_config()
    print("{:<9s} {:<12s} {:>9s}".format("design", "component", "mm^2"))
    for system, name, area in area_table(config, args.axcs):
        print("{:<9s} {:<12s} {:>9.3f}".format(system, name, area))
    report = tile_area(config, args.axcs)
    print("\nFUSION tile leakage: {:.1f} mW "
          "({:.1f} pJ/cycle at 2 GHz)".format(
              report.leakage_mw(), report.leakage_pj_per_cycle()))
    print("dataflow wire length: {:.2f} mm".format(
        report.wire_length_mm()))
    return 0


def _cmd_trace(args):
    workload = build_workload(args.benchmark, args.size)
    trace_io.save_path(workload, args.path)
    ops = sum(len(t.ops) for t in workload.invocations)
    print("wrote {} ({} invocations, {} ops)".format(
        args.path, len(workload.invocations), ops))
    return 0


def _cmd_multitenant(args):
    from .systems.multitile import MultiTileFusionSystem
    workloads = [build_workload(name, args.size)
                 for name in args.benchmarks]
    if args.per_tile:
        system = MultiTileFusionSystem(small_config(), workloads)
        conflicts = "n/a (dedicated tiles)"
    else:
        system = MultiTenantFusionSystem(small_config(), workloads)
    result = system.run()
    if not args.per_tile:
        conflicts = int(result.stat("l1x.pid_conflicts"))
    print("processes        : {}".format(result.benchmark))
    print("tiles            : {}".format(
        len(workloads) if args.per_tile else 1))
    print("accel cycles     : {}".format(result.accel_cycles))
    print("energy (uJ)      : {:.3f}".format(result.energy.total_pj / 1e6))
    print("L1X PID conflicts: {}".format(conflicts))
    return 0


def _cmd_parallelism(args):
    from .workloads.dependence import parallelism_profile
    workload = build_workload(args.benchmark, args.size)
    critical, total, width = parallelism_profile(workload)
    sequential = run("FUSION", args.benchmark, args.size)
    pipelined = run("FUSION-PIPE", args.benchmark, args.size)
    print("benchmark          : {}".format(args.benchmark))
    print("invocations        : {}".format(total))
    print("critical path      : {} invocations".format(critical))
    print("max width          : {} concurrent".format(width))
    print("FUSION cycles      : {}".format(sequential.accel_cycles))
    print("FUSION-PIPE cycles : {}".format(pipelined.accel_cycles))
    print("overlap speedup    : {:.2f}x".format(
        sequential.accel_cycles / pipelined.accel_cycles))
    return 0


def _cmd_config(_args):
    print(table2().render())
    return 0


#: ``profile --phase`` buckets: module-path prefixes (under ``repro/``)
#: mapped to the pipeline phase whose cost they represent.  Matched in
#: order; the first hit wins.
_PROFILE_PHASES = (
    ("lowering", ("workloads/lowering",)),
    ("phases", ("workloads/phases",)),
    ("vector", ("workloads/vector",)),
    ("replay", ("accel/replay",)),
    ("policy", ("policy/",)),
    ("protocol", ("coherence/", "mem/", "interconnect/", "host/",
                  "energy/")),
    ("engine", ("accel/", "systems/", "sim/", "common/")),
)


def _profile_phase_of(filename):
    """Classify one profiled filename into a pipeline phase."""
    norm = filename.replace("\\", "/")
    marker = norm.rfind("/repro/")
    if marker < 0:
        return "other"
    tail = norm[marker + len("/repro/"):]
    for phase, prefixes in _PROFILE_PHASES:
        for prefix in prefixes:
            if tail.startswith(prefix):
                return phase
    return "other"


def _print_phase_breakdown(stats):
    """Aggregate a :class:`pstats.Stats` by pipeline phase (tottime)."""
    totals = {"lowering": 0.0, "phases": 0.0, "vector": 0.0,
              "replay": 0.0, "policy": 0.0, "protocol": 0.0,
              "engine": 0.0, "other": 0.0}
    calls = dict.fromkeys(totals, 0)
    for (filename, _line, _name), entry in stats.stats.items():
        _cc, nc, tt, _ct, _callers = entry
        phase = _profile_phase_of(filename)
        totals[phase] += tt
        calls[phase] += nc
    overall = sum(totals.values())
    print("phase breakdown (tottime):")
    for phase in ("lowering", "phases", "vector", "replay", "policy",
                  "protocol", "engine", "other"):
        share = totals[phase] / overall if overall else 0.0
        print("  {:<9} {:>8.3f}s  {:>5.1f}%  {:>12,} calls".format(
            phase, totals[phase], 100.0 * share, calls[phase]))
    print()


def _cmd_profile(args):
    """cProfile one uncached simulation and print the hottest functions.

    Bypasses the result cache and the engine entirely — the point is to
    see where a *fresh* simulation spends its time.  The workload build
    (kernel generators, DDG analysis, lowering) runs before the profiler
    starts so the report shows the simulation hot path, unless
    ``--include-build`` asks for the whole pipeline.  ``--phase``
    prepends an aggregate breakdown of where the time went: trace
    lowering, the invocation replay rung, the coherence-protocol/memory
    layers, or the execution engine (core model, systems, scheduler).
    """
    import cProfile
    import pstats

    config = load_config(args.config) if args.config else small_config()
    profiler = cProfile.Profile()
    if args.include_build:
        profiler.enable()
        workload = build_workload(args.benchmark, args.size)
        system = SYSTEMS[args.system](config, workload)
        result = system.run()
        profiler.disable()
    else:
        workload = build_workload(args.benchmark, args.size)
        system = SYSTEMS[args.system](config, workload)
        profiler.enable()
        result = system.run()
        profiler.disable()
    print("{} on {} (size={}): accel {} cycles, total {} cycles".format(
        args.system, args.benchmark, args.size, result.accel_cycles,
        result.total_cycles))
    stats = pstats.Stats(profiler, stream=sys.stdout)
    if args.phase:
        _print_phase_breakdown(stats)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    return 0


def _replay_telemetry(session):
    """Replay-rung counters for ``cache stats``: prefer this process's
    live mirror (nonzero only when a simulation ran in-process), else
    fall back to the snapshot persisted with the last session."""
    from .accel.replay import telemetry_snapshot

    live = telemetry_snapshot()
    if any(live.values()):
        return live
    return (session or {}).get("replay") or live


def _cmd_cache(args):
    engine = engine_mod.get_engine()
    cache = engine.cache
    if args.action == "clear":
        removed = cache.clear()
        print("removed {} cached file(s) (results + prepared traces) "
              "from {}".format(removed, cache.root))
        return 0
    entries, total_bytes = cache.disk_stats()
    trace_entries, trace_bytes = cache.trace_stats()
    temp_count, temp_bytes = cache.temp_stats()
    print("cache dir      : {}".format(cache.root))
    print("enabled        : {}".format("yes" if cache.enabled else
                                       "no (REPRO_NO_CACHE)"))
    print("schema version : {}".format(engine_mod.CACHE_SCHEMA_VERSION))
    print("entries        : {} ({:.1f} kB)".format(
        entries, total_bytes / 1024.0))
    print("trace entries  : {} ({:.1f} kB prepared workloads)".format(
        trace_entries, trace_bytes / 1024.0))
    phase_entries, phase_windows = cache.phase_stats()
    print("phase entries  : {} compiled plan(s), {} phase window(s)".format(
        phase_entries, phase_windows))
    vector_entries, vector_windows = cache.vector_stats()
    print("vector entries : {} SoA plan(s), {} vector window(s)".format(
        vector_entries, vector_windows))
    stale_entries, stale_bytes = cache.stale_schema_stats()
    if stale_entries:
        print("stale schema   : {} old-schema entrie(s) ({:.1f} kB; "
              "'cache clear' reaps them)".format(
                  stale_entries, stale_bytes / 1024.0))
    session = engine.load_session_stats()
    replay = _replay_telemetry(session)
    probes = replay.get("hits", 0) + replay.get("misses", 0)
    print("replay entries : {} recording(s) across {} key(s), "
          "{}/{} probe(s) hit{}".format(
              replay.get("recordings", 0), replay.get("keys", 0),
              replay.get("hits", 0), probes,
              " ({:.0%} hit rate)".format(replay["hits"] / probes)
              if probes else ""))
    print("temp files     : {} ({:.1f} kB orphaned; 'cache clear' "
          "sweeps them)".format(temp_count, temp_bytes / 1024.0))
    if session and "telemetry" in session:
        t = session["telemetry"]
        print("last session   : {} simulated, {} disk hits, "
              "{} memory hits, hit ratio {:.0%}".format(
                  t.get("computed", 0), t.get("disk_hits", 0),
                  t.get("memory_hits", 0), t.get("hit_ratio", 0.0)))
        recovery = {name: t.get(name, 0) for name in (
            "retries", "pool_respawns", "timeouts", "serial_fallbacks",
            "failed_points", "corrupt_drops")}
        if any(recovery.values()):
            print("recovery       : " + ", ".join(
                "{} {}".format(value, name.replace("_", " "))
                for name, value in recovery.items() if value))
    else:
        print("last session   : (no telemetry recorded)")
    return 0


def _cmd_doctor(args):
    """Engine health report plus live recovery drills.

    Quick mode reports configuration, cache health and the last
    session's telemetry.  Full mode additionally arms deterministic
    faults (``REPRO_FAULT_SPEC``) against private, cache-bypassing
    engines and verifies each recovery path end-to-end: parallel
    results match serial, a crashing worker pool converges via respawn
    plus serial fallback, and a hung point times out without poisoning
    the rest of its batch.
    """
    import contextlib

    from .sim import faults
    from .sim.engine import DiskCache, ExecutionEngine, RunRequest

    engine = engine_mod.get_engine()
    failures = []

    def report(name, ok, detail):
        if not ok:
            failures.append(name)
        print("  [{}] {:<16s} {}".format("ok " if ok else "FAIL",
                                         name, detail))

    timeout = engine_mod.resolve_timeout(engine.timeout)
    print("engine configuration")
    print("  jobs          : {}".format(
        engine_mod.resolve_jobs(engine.jobs)))
    print("  timeout       : {}".format(
        "{:g}s".format(timeout) if timeout is not None
        else "none (set REPRO_RUN_TIMEOUT or --timeout)"))
    print("  retries       : {} pool respawn(s) before serial fallback"
          .format(engine_mod.resolve_retries(engine.retries)))
    print("  retry backoff : {:g}s".format(engine_mod.resolve_backoff()))
    print("  fault spec    : {}".format(
        os.environ.get("REPRO_FAULT_SPEC", "").strip() or "(none armed)"))
    log_path = os.environ.get("REPRO_ENGINE_LOG", "").strip()
    print("  engine log    : {}".format(
        log_path or "(in-memory ring buffer only)"))
    if log_path and os.path.exists(log_path):
        records, torn = engine_mod.read_journal(log_path)
        print("                  {} event(s) on disk{}".format(
            len(records),
            ", {} torn line(s) skipped".format(torn) if torn else ""))

    cache = engine.cache
    entries, total_bytes = cache.disk_stats()
    temp_count, temp_bytes = cache.temp_stats()
    print("cache health")
    print("  dir           : {}".format(cache.root))
    print("  enabled       : {}".format("yes" if cache.enabled else "no"))
    print("  entries       : {} ({:.1f} kB)".format(
        entries, total_bytes / 1024.0))
    print("  temp files    : {} ({:.1f} kB orphaned{})".format(
        temp_count, temp_bytes / 1024.0,
        "; run 'fusion-sim cache clear'" if temp_count else ""))

    session = engine.load_session_stats()
    if session and "telemetry" in session:
        t = session["telemetry"]
        print("last session")
        print("  {} simulated, {} disk hits, {} memory hits".format(
            t.get("computed", 0), t.get("disk_hits", 0),
            t.get("memory_hits", 0)))
        print("  {} retries, {} pool respawns, {} timeouts, "
              "{} serial fallbacks, {} failed points, {} corrupt drops"
              .format(t.get("retries", 0), t.get("pool_respawns", 0),
                      t.get("timeouts", 0), t.get("serial_fallbacks", 0),
                      t.get("failed_points", 0), t.get("corrupt_drops", 0)))

    if args.quick:
        print("recovery drills skipped (--quick)")
        return 0

    @contextlib.contextmanager
    def patched(**pairs):
        saved = {name: os.environ.get(name) for name in pairs}
        try:
            for name, value in pairs.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
            yield
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value

    def drill_engine(jobs, timeout=None, retries=None):
        private = DiskCache()
        private.enabled_override = False
        return ExecutionEngine(jobs=jobs, cache=private,
                               timeout=timeout, retries=retries)

    requests = [RunRequest(system, benchmark, "tiny")
                for system in ("FUSION", "SHARED")
                for benchmark in ("adpcm", "fft", "filter")]
    print("recovery drills (size=tiny, private cache-bypassing engines)")

    baseline = None
    try:
        with patched(REPRO_FAULT_SPEC=None, REPRO_RETRY_BACKOFF="0"):
            baseline = drill_engine(jobs=1).run_batch(requests)
            parallel = drill_engine(jobs=2).run_batch(requests)
        report("determinism", parallel == baseline,
               "parallel (jobs=2) matches serial on {} points"
               .format(len(requests)))
    except Exception as exc:  # pragma: no cover - drill must not die
        report("determinism", False, repr(exc))

    drill = None
    try:
        with patched(REPRO_FAULT_SPEC="crash:every=1",
                     REPRO_RETRY_BACKOFF="0"):
            drill = drill_engine(jobs=2, retries=1)
            crashed = drill.run_batch(requests)
        snap = drill.telemetry.snapshot()
        ok = (baseline is not None and crashed == baseline
              and snap["pool_respawns"] >= 1
              and snap["serial_fallbacks"] >= 1)
        report("crash-recovery", ok,
               "{} pool respawn(s), {} serial fallback(s), "
               "results match serial baseline"
               .format(snap["pool_respawns"], snap["serial_fallbacks"]))
    except Exception as exc:  # pragma: no cover - drill must not die
        report("crash-recovery", False, repr(exc))

    try:
        with patched(REPRO_FAULT_SPEC="hang:key="
                     + faults.request_key(requests[0]),
                     REPRO_RETRY_BACKOFF="0"):
            drill = drill_engine(jobs=2, timeout=0.5)
            out = drill.run_batch(requests, strict=False)
        failed = [r for r in out if not r.ok]
        survivors_intact = (baseline is not None and all(
            r == b for r, b in zip(out, baseline) if r.ok))
        ok = (len(failed) == 1
              and failed[0].system == requests[0].system
              and failed[0].benchmark == requests[0].benchmark
              and survivors_intact)
        report("timeout", ok,
               "hung point -> FailedResult after {} attempt(s), "
               "{}/{} survivors intact".format(
                   failed[0].attempts if failed else 0,
                   sum(1 for r in out if r.ok), len(out) - 1))
        if drill is not None:
            print("drill journal tail")
            for event in drill.journal.tail(6):
                extra = {k: v for k, v in event.items()
                         if k not in ("seq", "t", "event")}
                print("  #{:<3d} {:<14s} {}".format(
                    event["seq"], event["event"], extra or ""))
    except Exception as exc:  # pragma: no cover - drill must not die
        report("timeout", False, repr(exc))

    if failures:
        print("doctor: {} check(s) FAILED: {}".format(
            len(failures), ", ".join(failures)))
        return 1
    print("doctor: all checks passed")
    return 0


def _cmd_serve(args):
    """Run the sweep-service daemon (see repro.sim.service)."""
    from .sim import store as store_mod
    from .sim.service import serve

    path = args.store or store_mod.default_store_path()
    return serve(path, host=args.host, port=args.port,
                 batch_size=args.batch, lease_s=args.lease,
                 poll_s=args.poll, announce=args.announce)


def _service_client(args):
    from .sim.service import ServiceClient

    if args.announce:
        return ServiceClient.from_announce(args.announce)
    return ServiceClient(args.host, args.port)


def _add_client_args(parser):
    parser.add_argument("--host", default="127.0.0.1",
                        help="service host (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=7117,
                        help="service port (default 7117)")
    parser.add_argument("--announce", default=None, metavar="FILE",
                        help="read host/port from a serve --announce "
                             "file instead")


def _print_status(counts):
    print("total {total}  done {done}  failed {failed}  "
          "claimed {claimed}  pending {pending}".format(**counts))


def _fetch_table(payload):
    """Render a fetch response as an ExperimentTable."""
    from .sim.reporting import ExperimentTable

    spec = payload["spec"]
    axis_names = [axis["kind"] for axis in spec["axes"]]
    metrics = spec["metrics"]
    table = ExperimentTable(
        "Job " + payload["job_id"],
        "sweep service results (size={})".format(spec["size"]),
        ["System", "Benchmark"] + axis_names + metrics + ["Status"])
    for row in payload["rows"]:
        point = row["point"]
        labels = [label for _kind, label in point["axes"]]
        if row["status"] == "done" and row["metrics"] is not None:
            cells = [row["metrics"][name] for name in metrics]
        else:
            cells = ["FAILED" if row["status"] == "failed" else "..."
                     for _ in metrics]
        table.add_row(point["system"], point["benchmark"], *labels,
                      *cells, row["status"])
    failures = [row for row in payload["rows"]
                if row["status"] == "failed"]
    for row in failures:
        table.add_note("failed {}:{}: {}".format(
            row["point"]["system"], row["point"]["benchmark"],
            row["error"]))
    return table


def _cmd_sweep(args):
    """Run a design-space sweep in-process (no daemon needed).

    ``--axis KIND=V1,V2`` adds a config axis (lease / l0x_kb / l1x_kb,
    as in ``submit``); ``--policy SPEC1,SPEC2`` sweeps policy selectors
    (``static:fusion``, ``static:fusion:lease=250``, ``bandit``,
    ``bandit:0.2``, ``ucb:1.5``) on the POLICY system.
    """
    from .sim.jobs import AXIS_KINDS
    from .sim.sweep import policy_axis, sweep
    axes = []
    for axis in args.axis or ():
        kind, _, values = axis.partition("=")
        kind = kind.strip()
        if kind not in AXIS_KINDS:
            raise ConfigError(
                "unknown axis kind {!r}; expected one of {}".format(
                    kind, ", ".join(sorted(AXIS_KINDS))))
        axes.append(AXIS_KINDS[kind](
            *[int(v) for v in values.split(",") if v.strip()]))
    systems = [s.strip() for s in args.systems.split(",") if s.strip()]
    if args.policy:
        specs = [s.strip() for s in args.policy.split(",") if s.strip()]
        axes.append(policy_axis(*specs))
        systems = ["POLICY"]
    benchmarks = [b.strip() for b in args.benchmarks.split(",")
                  if b.strip()]
    table, _results = sweep(
        systems=systems, benchmarks=benchmarks, axes=axes,
        metrics=[m.strip() for m in args.metrics.split(",")
                 if m.strip()],
        size=args.size, strict=not args.keep_going)
    print(_render(table, args.format))
    return 0


def _cmd_submit(args):
    spec = {
        "systems": args.systems.split(","),
        "benchmarks": args.benchmarks.split(","),
        "size": args.size,
        "axes": [],
        "metrics": (args.metrics.split(",") if args.metrics else None),
    }
    for axis in args.axis or ():
        kind, _, values = axis.partition("=")
        spec["axes"].append({"kind": kind.strip(),
                             "values": [v.strip() for v in
                                        values.split(",") if v.strip()]})
    with _service_client(args) as client:
        job_id = client.submit(spec, client="fusion-sim submit")
        print("job {}".format(job_id))
        if not args.wait:
            _print_status(client.status(job_id))
            return 0
        counts = client.wait(job_id, timeout=args.wait_timeout)
        _print_status(counts)
        payload = client.fetch(job_id)
    print(_render(_fetch_table(payload), args.format))
    return 1 if counts["failed"] else 0


def _cmd_status(args):
    with _service_client(args) as client:
        counts = client.status(args.job_id)
    _print_status(counts)
    return 0


def _cmd_fetch(args):
    with _service_client(args) as client:
        payload = client.fetch(args.job_id)
    if args.format == "raw":
        import json as json_mod

        print(json_mod.dumps(payload, indent=1, sort_keys=True))
    else:
        print(_render(_fetch_table(payload), args.format))
    return 0


def _cmd_check(args):
    """Coherence model checking: exhaustive bounded exploration, seeded
    random walks and litmus tests over the real controllers (or, with
    ``--self-test``, the mutation suite the checker must catch)."""
    import json

    from . import check as check_mod

    kinds = tuple(args.kind) if args.kind else None
    if args.self_test:
        report = check_mod.run_self_test(depth=args.depth, kinds=kinds)
        lines = check_mod.summarize_self_test(report)
    else:
        from .check.scenarios import KINDS
        report = check_mod.run_check(
            depth=args.depth if args.depth is not None else 8,
            seed=args.seed, schedules=args.schedules,
            kinds=kinds or KINDS,
            scenario_name=args.scenario,
            mutation_name=args.mutate)
        lines = check_mod.summarize(report)
    if args.json:
        print(json.dumps(report, indent=1, sort_keys=True))
    else:
        for line in lines:
            print(line)
    return 0 if report["ok"] else 1


def build_parser():
    parser = argparse.ArgumentParser(
        prog="fusion-sim",
        description="FUSION (ISCA 2015) reproduction simulator")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="simulation worker processes "
                             "(default: REPRO_JOBS or CPU count; "
                             "1 forces serial execution)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache "
                             "(equivalent to REPRO_NO_CACHE=1)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="S",
                        help="per-simulation wall-clock budget in "
                             "seconds (default: REPRO_RUN_TIMEOUT; "
                             "0 disables)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="pool respawns after worker crashes "
                             "before degrading to in-process serial "
                             "execution (default: REPRO_RETRIES or 2)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_size(p):
        p.add_argument("--size", default="full",
                       choices=("full", "small", "tiny"))

    run_p = sub.add_parser("run", help="run one system on one benchmark")
    run_p.add_argument("system", choices=sorted(SYSTEMS))
    run_p.add_argument("benchmark", choices=BENCHMARKS)
    add_size(run_p)
    run_p.add_argument("--format", default="text",
                       choices=("text", "json"))
    run_p.add_argument("--stats", action="store_true",
                       help="include raw counters in JSON output")
    run_p.add_argument("--config", default=None,
                       help="JSON config-override file "
                            "(see repro.common.config_io)")
    run_p.add_argument("--validate", action="store_true",
                       help="cross-check the result's internal "
                            "consistency (repro.sim.validate)")
    run_p.set_defaults(func=_cmd_run)

    exp_p = sub.add_parser("experiment",
                           help="regenerate a paper table/figure")
    exp_p.add_argument("name", choices=sorted(ALL_EXPERIMENTS) + ["all"])
    add_size(exp_p)
    exp_p.add_argument("--format", default="text",
                       choices=("text", "csv", "json"))
    exp_p.set_defaults(func=_cmd_experiment)

    swp_p = sub.add_parser("sweep",
                           help="run a design-space sweep in-process")
    swp_p.add_argument("--systems", default="FUSION",
                       help="comma-separated system names "
                            "(default: FUSION)")
    swp_p.add_argument("--benchmarks", default=",".join(BENCHMARKS),
                       help="comma-separated benchmarks (default: all)")
    swp_p.add_argument("--size", default="small",
                       choices=("full", "small", "tiny"))
    swp_p.add_argument("--axis", action="append", metavar="KIND=V1,V2",
                       help="config axis: lease, l0x_kb or l1x_kb "
                            "(repeatable)")
    swp_p.add_argument("--policy", default=None, metavar="SPECS",
                       help="sweep policy selectors on the POLICY "
                            "system: comma-separated specs like "
                            "static:fusion, static:fusion:lease=250, "
                            "bandit, bandit:0.2, ucb:1.5")
    swp_p.add_argument("--metrics", default="accel_cycles,energy_uj",
                       help="comma-separated metrics "
                            "(see repro.sim.sweep.METRICS)")
    swp_p.add_argument("--keep-going", action="store_true",
                       help="render FAILED holes instead of aborting "
                            "on the first failed point")
    swp_p.add_argument("--format", default="text",
                       choices=("text", "csv", "json"))
    swp_p.set_defaults(func=_cmd_sweep)

    cmp_p = sub.add_parser("compare",
                           help="all systems + IDEAL bound on one "
                                "benchmark, with charts")
    cmp_p.add_argument("benchmark", choices=BENCHMARKS)
    add_size(cmp_p)
    cmp_p.set_defaults(func=_cmd_compare)

    area_p = sub.add_parser("area", help="tile floorplan and leakage")
    area_p.add_argument("--axcs", type=int, default=4)
    area_p.set_defaults(func=_cmd_area)

    trace_p = sub.add_parser("trace",
                             help="dump a benchmark's trace to a file")
    trace_p.add_argument("benchmark", choices=BENCHMARKS)
    trace_p.add_argument("path")
    add_size(trace_p)
    trace_p.set_defaults(func=_cmd_trace)

    mt_p = sub.add_parser("multitenant",
                          help="co-run workloads on one PID-tagged tile")
    mt_p.add_argument("benchmarks", nargs="+", choices=BENCHMARKS)
    mt_p.add_argument("--per-tile", action="store_true",
                      help="give each workload its own tile instead of "
                           "time-sharing one")
    add_size(mt_p)
    mt_p.set_defaults(func=_cmd_multitenant)

    par_p = sub.add_parser("parallelism",
                           help="invocation-level parallelism profile "
                                "and pipelined speedup")
    par_p.add_argument("benchmark", choices=BENCHMARKS)
    add_size(par_p)
    par_p.set_defaults(func=_cmd_parallelism)

    cfg_p = sub.add_parser("config", help="print Table 2 parameters")
    cfg_p.set_defaults(func=_cmd_config)

    prof_p = sub.add_parser("profile",
                            help="cProfile one uncached simulation and "
                                 "print the hottest functions")
    prof_p.add_argument("system", choices=sorted(SYSTEMS))
    prof_p.add_argument("benchmark", choices=BENCHMARKS)
    add_size(prof_p)
    prof_p.add_argument("--top", type=int, default=25, metavar="N",
                        help="rows of the profile report (default 25)")
    prof_p.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "calls"),
                        help="pstats sort order (default cumulative)")
    prof_p.add_argument("--include-build", action="store_true",
                        help="profile workload construction and "
                             "lowering too, not just the simulation")
    prof_p.add_argument("--phase", action="store_true",
                        help="prepend an aggregate lowering / replay "
                             "/ protocol / engine phase breakdown")
    prof_p.add_argument("--config", default=None,
                        help="JSON config-override file")
    prof_p.set_defaults(func=_cmd_profile)

    cache_p = sub.add_parser("cache",
                             help="persistent result-cache maintenance")
    cache_p.add_argument("action", choices=("stats", "clear"))
    cache_p.set_defaults(func=_cmd_cache)

    chk_p = sub.add_parser("check",
                           help="coherence model checker: bounded "
                                "interleaving exploration, litmus tests "
                                "and the mutation self-test")
    chk_p.add_argument("--depth", type=int, default=None, metavar="N",
                       help="interleaving exploration depth bound "
                            "(default 8; self-test defaults to each "
                            "scenario's full script)")
    chk_p.add_argument("--seed", type=int, default=0, metavar="S",
                       help="seed for random scenarios and random-walk "
                            "schedules; a failure's printed seed "
                            "replays it exactly (default 0)")
    chk_p.add_argument("--schedules", type=int, default=20, metavar="K",
                       help="random-walk schedules per scenario "
                            "(default 20)")
    chk_p.add_argument("--kind", action="append", default=None,
                       choices=("acc", "shared", "dx"),
                       help="restrict to one protocol kind "
                            "(repeatable; default: all)")
    chk_p.add_argument("--scenario", default=None, metavar="NAME",
                       help="run only one catalog scenario (skips "
                            "litmus tests)")
    chk_p.add_argument("--mutate", default=None, metavar="NAME",
                       help="inject one named protocol mutation; the "
                            "run is then expected to fail (debugging "
                            "and repro aid)")
    chk_p.add_argument("--self-test", action="store_true",
                       help="verify every seeded mutation is caught "
                            "instead of checking the correct protocol")
    chk_p.add_argument("--json", action="store_true",
                       help="emit the full report as JSON")
    chk_p.set_defaults(func=_cmd_check)

    srv_p = sub.add_parser("serve",
                           help="run the sweep-service daemon: durable "
                                "job store + claim workers over the "
                                "batch engine")
    srv_p.add_argument("--host", default="127.0.0.1")
    srv_p.add_argument("--port", type=int, default=7117,
                       help="listen port (0 picks a free one; see "
                            "--announce)")
    srv_p.add_argument("--store", default=None, metavar="PATH",
                       help="experiment store database (default "
                            "<cache dir>/store.db)")
    srv_p.add_argument("--batch", type=int, default=4, metavar="N",
                       help="rows claimed per engine batch (default 4)")
    srv_p.add_argument("--lease", type=float, default=60.0, metavar="S",
                       help="claim lease seconds before other workers "
                            "may steal a row (default 60)")
    srv_p.add_argument("--poll", type=float, default=0.2, metavar="S",
                       help="idle store poll interval (default 0.2)")
    srv_p.add_argument("--announce", default=None, metavar="FILE",
                       help="write the bound host/port/pid as JSON "
                            "once listening")
    srv_p.set_defaults(func=_cmd_serve)

    sub_p = sub.add_parser("submit",
                           help="submit a sweep spec to a running "
                                "service")
    sub_p.add_argument("--systems", required=True,
                       help="comma-separated system list")
    sub_p.add_argument("--benchmarks", required=True,
                       help="comma-separated benchmark list")
    sub_p.add_argument("--size", default="tiny",
                       choices=("full", "small", "tiny"))
    sub_p.add_argument("--axis", action="append", metavar="KIND=V1,V2",
                       help="sweep axis, e.g. lease=100,500 or "
                            "l0x_kb=4,8 (repeatable)")
    sub_p.add_argument("--metrics", default=None,
                       help="comma-separated metric list (default "
                            "accel_cycles,energy_uj)")
    sub_p.add_argument("--wait", action="store_true",
                       help="stream progress until done, then fetch "
                            "and render the results")
    sub_p.add_argument("--wait-timeout", type=float, default=600.0,
                       metavar="S")
    sub_p.add_argument("--format", default="text",
                       choices=("text", "csv", "json"))
    _add_client_args(sub_p)
    sub_p.set_defaults(func=_cmd_submit)

    st_p = sub.add_parser("status",
                          help="per-status row counts for one job")
    st_p.add_argument("job_id")
    _add_client_args(st_p)
    st_p.set_defaults(func=_cmd_status)

    fe_p = sub.add_parser("fetch",
                          help="fetch one job's rows and results")
    fe_p.add_argument("job_id")
    fe_p.add_argument("--format", default="text",
                      choices=("text", "csv", "json", "raw"))
    _add_client_args(fe_p)
    fe_p.set_defaults(func=_cmd_fetch)

    doc_p = sub.add_parser("doctor",
                           help="engine health report and live "
                                "fault-recovery drills")
    doc_p.add_argument("--quick", action="store_true",
                       help="report configuration and telemetry only; "
                            "skip the recovery drills")
    doc_p.set_defaults(func=_cmd_doctor)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if (args.jobs is not None or args.no_cache
            or args.timeout is not None or args.retries is not None):
        engine_mod.configure(
            jobs=args.jobs,
            cache_enabled=False if args.no_cache else None,
            timeout=args.timeout,
            retries=args.retries)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
