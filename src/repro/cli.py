"""Command-line interface: run benchmarks and regenerate paper artefacts.

Examples::

    fusion-sim run FUSION histogram --size small
    fusion-sim experiment fig6b --size small --format csv
    fusion-sim experiment all --size full
    fusion-sim compare fft --size small
    fusion-sim area --axcs 6
    fusion-sim trace fft /tmp/fft.trace --size small
    fusion-sim multitenant adpcm filter --size tiny
    fusion-sim --jobs 4 experiment all --size full
    fusion-sim --no-cache run FUSION fft --size small
    fusion-sim cache stats
    fusion-sim profile FUSION fft --size small --top 20
"""

import argparse
import sys

from .common.config import small_config
from .common.config_io import load_config
from .energy.area import area_table, tile_area
from .sim import charts, export
from .sim import engine as engine_mod
from .sim.experiments import ALL_EXPERIMENTS, table2
from .sim.simulator import run
from .systems import SYSTEMS
from .systems.multitenant import MultiTenantFusionSystem
from .workloads import trace_io
from .workloads.registry import BENCHMARKS, build_workload


def _cmd_run(args):
    config = load_config(args.config) if args.config else None
    result = run(args.system, args.benchmark, args.size, config)
    if args.validate:
        from .sim.validate import check_or_raise
        check_or_raise(result)
    if args.format == "json":
        print(export.result_to_json(result, include_stats=args.stats))
        return 0
    print("system     : {}".format(result.system))
    print("benchmark  : {}".format(result.benchmark))
    print("accel cyc  : {}".format(result.accel_cycles))
    print("total cyc  : {}".format(result.total_cycles))
    print("energy (uJ): {:.3f}".format(result.energy.total_pj / 1e6))
    for component, value in sorted(result.energy.components.items()):
        if value:
            print("  {:<20s} {:.3f} uJ".format(component, value / 1e6))
    print("tile link  : {:.2f} flits/cycle".format(
        result.link_utilization()))
    return 0


def _render(table, fmt):
    if fmt == "csv":
        return export.table_to_csv(table)
    if fmt == "json":
        return export.table_to_json(table)
    return table.render()


def _cmd_experiment(args):
    names = (list(ALL_EXPERIMENTS) if args.name == "all"
             else [args.name])
    for name in names:
        experiment = ALL_EXPERIMENTS[name]
        table = experiment() if name == "table2" else \
            experiment(size=args.size)
        print(_render(table, args.format))
        print()
    return 0


def _cmd_compare(args):
    systems = ("SCRATCH", "SHARED", "FUSION", "FUSION-Dx", "IDEAL")
    results = {name: run(name, args.benchmark, args.size)
               for name in systems}
    ideal = results["IDEAL"].accel_cycles
    print("benchmark: {} (size={})\n".format(args.benchmark, args.size))
    print(charts.bar_chart(
        [(name, results[name].accel_cycles / 1000.0)
         for name in systems], label_width=10))
    print()
    print("{:<10s} {:>10s} {:>10s} {:>12s} {:>10s}".format(
        "system", "KCycles", "uJ", "efficiency", "link f/c"))
    for name in systems:
        result = results[name]
        print("{:<10s} {:>10.1f} {:>10.2f} {:>11.0f}% {:>10.2f}".format(
            name, result.accel_cycles / 1000.0,
            result.energy.total_pj / 1e6,
            100.0 * ideal / result.accel_cycles,
            result.link_utilization()))
    print()
    print(charts.figure6a_chart({
        args.benchmark: {name: results[name]
                         for name in ("SCRATCH", "SHARED", "FUSION")}}))
    return 0


def _cmd_area(args):
    config = small_config()
    print("{:<9s} {:<12s} {:>9s}".format("design", "component", "mm^2"))
    for system, name, area in area_table(config, args.axcs):
        print("{:<9s} {:<12s} {:>9.3f}".format(system, name, area))
    report = tile_area(config, args.axcs)
    print("\nFUSION tile leakage: {:.1f} mW "
          "({:.1f} pJ/cycle at 2 GHz)".format(
              report.leakage_mw(), report.leakage_pj_per_cycle()))
    print("dataflow wire length: {:.2f} mm".format(
        report.wire_length_mm()))
    return 0


def _cmd_trace(args):
    workload = build_workload(args.benchmark, args.size)
    trace_io.save_path(workload, args.path)
    ops = sum(len(t.ops) for t in workload.invocations)
    print("wrote {} ({} invocations, {} ops)".format(
        args.path, len(workload.invocations), ops))
    return 0


def _cmd_multitenant(args):
    from .systems.multitile import MultiTileFusionSystem
    workloads = [build_workload(name, args.size)
                 for name in args.benchmarks]
    if args.per_tile:
        system = MultiTileFusionSystem(small_config(), workloads)
        conflicts = "n/a (dedicated tiles)"
    else:
        system = MultiTenantFusionSystem(small_config(), workloads)
    result = system.run()
    if not args.per_tile:
        conflicts = int(result.stat("l1x.pid_conflicts"))
    print("processes        : {}".format(result.benchmark))
    print("tiles            : {}".format(
        len(workloads) if args.per_tile else 1))
    print("accel cycles     : {}".format(result.accel_cycles))
    print("energy (uJ)      : {:.3f}".format(result.energy.total_pj / 1e6))
    print("L1X PID conflicts: {}".format(conflicts))
    return 0


def _cmd_parallelism(args):
    from .workloads.dependence import parallelism_profile
    workload = build_workload(args.benchmark, args.size)
    critical, total, width = parallelism_profile(workload)
    sequential = run("FUSION", args.benchmark, args.size)
    pipelined = run("FUSION-PIPE", args.benchmark, args.size)
    print("benchmark          : {}".format(args.benchmark))
    print("invocations        : {}".format(total))
    print("critical path      : {} invocations".format(critical))
    print("max width          : {} concurrent".format(width))
    print("FUSION cycles      : {}".format(sequential.accel_cycles))
    print("FUSION-PIPE cycles : {}".format(pipelined.accel_cycles))
    print("overlap speedup    : {:.2f}x".format(
        sequential.accel_cycles / pipelined.accel_cycles))
    return 0


def _cmd_config(_args):
    print(table2().render())
    return 0


def _cmd_profile(args):
    """cProfile one uncached simulation and print the hottest functions.

    Bypasses the result cache and the engine entirely — the point is to
    see where a *fresh* simulation spends its time.  The workload build
    (kernel generators, DDG analysis, lowering) runs before the profiler
    starts so the report shows the simulation hot path, unless
    ``--include-build`` asks for the whole pipeline.
    """
    import cProfile
    import pstats

    config = load_config(args.config) if args.config else small_config()
    profiler = cProfile.Profile()
    if args.include_build:
        profiler.enable()
        workload = build_workload(args.benchmark, args.size)
        system = SYSTEMS[args.system](config, workload)
        result = system.run()
        profiler.disable()
    else:
        workload = build_workload(args.benchmark, args.size)
        system = SYSTEMS[args.system](config, workload)
        profiler.enable()
        result = system.run()
        profiler.disable()
    print("{} on {} (size={}): accel {} cycles, total {} cycles".format(
        args.system, args.benchmark, args.size, result.accel_cycles,
        result.total_cycles))
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort)
    stats.print_stats(args.top)
    return 0


def _cmd_cache(args):
    engine = engine_mod.get_engine()
    cache = engine.cache
    if args.action == "clear":
        removed = cache.clear()
        print("removed {} cached file(s) (results + prepared traces) "
              "from {}".format(removed, cache.root))
        return 0
    entries, total_bytes = cache.disk_stats()
    trace_entries, trace_bytes = cache.trace_stats()
    print("cache dir      : {}".format(cache.root))
    print("enabled        : {}".format("yes" if cache.enabled else
                                       "no (REPRO_NO_CACHE)"))
    print("schema version : {}".format(engine_mod.CACHE_SCHEMA_VERSION))
    print("entries        : {} ({:.1f} kB)".format(
        entries, total_bytes / 1024.0))
    print("trace entries  : {} ({:.1f} kB prepared workloads)".format(
        trace_entries, trace_bytes / 1024.0))
    session = engine.load_session_stats()
    if session and "telemetry" in session:
        t = session["telemetry"]
        print("last session   : {} simulated, {} disk hits, "
              "{} memory hits, hit ratio {:.0%}".format(
                  t.get("computed", 0), t.get("disk_hits", 0),
                  t.get("memory_hits", 0), t.get("hit_ratio", 0.0)))
    else:
        print("last session   : (no telemetry recorded)")
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="fusion-sim",
        description="FUSION (ISCA 2015) reproduction simulator")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="simulation worker processes "
                             "(default: REPRO_JOBS or CPU count; "
                             "1 forces serial execution)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the persistent result cache "
                             "(equivalent to REPRO_NO_CACHE=1)")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_size(p):
        p.add_argument("--size", default="full",
                       choices=("full", "small", "tiny"))

    run_p = sub.add_parser("run", help="run one system on one benchmark")
    run_p.add_argument("system", choices=sorted(SYSTEMS))
    run_p.add_argument("benchmark", choices=BENCHMARKS)
    add_size(run_p)
    run_p.add_argument("--format", default="text",
                       choices=("text", "json"))
    run_p.add_argument("--stats", action="store_true",
                       help="include raw counters in JSON output")
    run_p.add_argument("--config", default=None,
                       help="JSON config-override file "
                            "(see repro.common.config_io)")
    run_p.add_argument("--validate", action="store_true",
                       help="cross-check the result's internal "
                            "consistency (repro.sim.validate)")
    run_p.set_defaults(func=_cmd_run)

    exp_p = sub.add_parser("experiment",
                           help="regenerate a paper table/figure")
    exp_p.add_argument("name", choices=sorted(ALL_EXPERIMENTS) + ["all"])
    add_size(exp_p)
    exp_p.add_argument("--format", default="text",
                       choices=("text", "csv", "json"))
    exp_p.set_defaults(func=_cmd_experiment)

    cmp_p = sub.add_parser("compare",
                           help="all systems + IDEAL bound on one "
                                "benchmark, with charts")
    cmp_p.add_argument("benchmark", choices=BENCHMARKS)
    add_size(cmp_p)
    cmp_p.set_defaults(func=_cmd_compare)

    area_p = sub.add_parser("area", help="tile floorplan and leakage")
    area_p.add_argument("--axcs", type=int, default=4)
    area_p.set_defaults(func=_cmd_area)

    trace_p = sub.add_parser("trace",
                             help="dump a benchmark's trace to a file")
    trace_p.add_argument("benchmark", choices=BENCHMARKS)
    trace_p.add_argument("path")
    add_size(trace_p)
    trace_p.set_defaults(func=_cmd_trace)

    mt_p = sub.add_parser("multitenant",
                          help="co-run workloads on one PID-tagged tile")
    mt_p.add_argument("benchmarks", nargs="+", choices=BENCHMARKS)
    mt_p.add_argument("--per-tile", action="store_true",
                      help="give each workload its own tile instead of "
                           "time-sharing one")
    add_size(mt_p)
    mt_p.set_defaults(func=_cmd_multitenant)

    par_p = sub.add_parser("parallelism",
                           help="invocation-level parallelism profile "
                                "and pipelined speedup")
    par_p.add_argument("benchmark", choices=BENCHMARKS)
    add_size(par_p)
    par_p.set_defaults(func=_cmd_parallelism)

    cfg_p = sub.add_parser("config", help="print Table 2 parameters")
    cfg_p.set_defaults(func=_cmd_config)

    prof_p = sub.add_parser("profile",
                            help="cProfile one uncached simulation and "
                                 "print the hottest functions")
    prof_p.add_argument("system", choices=sorted(SYSTEMS))
    prof_p.add_argument("benchmark", choices=BENCHMARKS)
    add_size(prof_p)
    prof_p.add_argument("--top", type=int, default=25, metavar="N",
                        help="rows of the profile report (default 25)")
    prof_p.add_argument("--sort", default="cumulative",
                        choices=("cumulative", "tottime", "calls"),
                        help="pstats sort order (default cumulative)")
    prof_p.add_argument("--include-build", action="store_true",
                        help="profile workload construction and "
                             "lowering too, not just the simulation")
    prof_p.add_argument("--config", default=None,
                        help="JSON config-override file")
    prof_p.set_defaults(func=_cmd_profile)

    cache_p = sub.add_parser("cache",
                             help="persistent result-cache maintenance")
    cache_p.add_argument("action", choices=("stats", "clear"))
    cache_p.set_defaults(func=_cmd_cache)
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.jobs is not None or args.no_cache:
        engine_mod.configure(
            jobs=args.jobs,
            cache_enabled=False if args.no_cache else None)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
