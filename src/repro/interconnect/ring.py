"""The host's 8-tile NUCA ring (Table 2: "8 tile NUCA, ring, avg. 20 cycles").

L2 banks are home-mapped by block address; a request from the requester
node traverses the ring to the bank and back.  The base latency plus the
average hop count reproduces the paper's 20-cycle average access.
"""

from ..common.units import LINE_SIZE

#: pJ per byte per ring hop (short on-die segments).
RING_HOP_PJ_PER_BYTE = 0.05


class NucaRing:
    """Bidirectional ring connecting NUCA L2 banks."""

    def __init__(self, num_banks, stats, base_latency=16, hop_latency=2,
                 requester_node=0):
        self.num_banks = num_banks
        self.base_latency = base_latency
        self.hop_latency = hop_latency
        self.requester_node = requester_node
        self.stats = stats.scope("ring")
        # Bound counter handles: traverse() runs once per host-side
        # block transfer (DMA streams, host produce/consume), so the
        # dotted-name resolution is hoisted out of the loop.
        self._add_traversals = self.stats.counter("traversals")
        self._add_hops = self.stats.counter("hops")
        self._add_energy = self.stats.counter("energy_pj")

    def bank_of(self, block):
        """Home bank of a block (line-interleaved)."""
        return (block // LINE_SIZE) % self.num_banks

    def hops_to(self, bank):
        """Minimum-direction hop count from the requester to ``bank``."""
        distance = abs(bank - self.requester_node)
        return min(distance, self.num_banks - distance)

    def traverse(self, block, num_bytes=LINE_SIZE):
        """Route one transfer to the block's home bank and back.

        Returns the round-trip latency in cycles; records hop energy.
        """
        hops = self.hops_to(self.bank_of(block))
        round_trip_hops = 2 * hops
        self._add_traversals()
        self._add_hops(round_trip_hops)
        self._add_energy(round_trip_hops * num_bytes * RING_HOP_PJ_PER_BYTE)
        return self.base_latency + round_trip_hops * self.hop_latency

    def average_latency(self):
        """Average round-trip latency over all banks (sanity anchor)."""
        total = sum(self.base_latency + 2 * self.hops_to(b) * self.hop_latency
                    for b in range(self.num_banks))
        return total / self.num_banks
