"""Interconnect: energy-accounted links and the host NUCA ring."""

from .link import Link, tile_links
from .ring import RING_HOP_PJ_PER_BYTE, NucaRing

__all__ = ["Link", "tile_links", "NucaRing", "RING_HOP_PJ_PER_BYTE"]
