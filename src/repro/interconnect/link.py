"""Point-to-point interconnect links with per-byte energy accounting.

The paper's energy story hinges on three links (Table 2):

* accelerator <-> shared L1X: 0.4 pJ/byte (short tile-internal wires)
* shared L1X <-> host L2:     6 pJ/byte   (long cross-chip wires)
* L0X <-> L0X forwarding:     0.1 pJ/byte (adjacent accelerators)

Each link separately tracks control *messages* (requests, acks, eviction
notices — Figure 6c's MSG series) and *data* transfers (Figure 6c's DATA
series), because Lesson 4 is precisely that pull-based request messages
can squander the energy a cache hierarchy saves.

Every coherence transition crosses a link, so the four counters each
transfer touches use bound handles (names resolved once at link
construction) rather than per-call dotted-name formatting.
"""

from ..common.units import CONTROL_MSG_SIZE, FLIT_SIZE


class Link:
    """One direction-agnostic link; counts messages, bytes, flits, energy."""

    def __init__(self, name, pj_per_byte, stats):
        self.name = name
        self.pj_per_byte = pj_per_byte
        self.stats = stats.scope("link." + name)
        scope = self.stats
        self._add_msgs = scope.counter("msgs")
        self._add_msg_bytes = scope.counter("msg_bytes")
        self._add_msg_energy = scope.counter("msg_energy_pj")
        self._add_data_transfers = scope.counter("data_transfers")
        self._add_data_bytes = scope.counter("data_bytes")
        self._add_data_energy = scope.counter("data_energy_pj")
        self._add_flits = scope.counter("flits")

    def send_msg(self, num_bytes=CONTROL_MSG_SIZE):
        """Transfer one control message (request/ack/eviction notice)."""
        self._add_msgs()
        self._add_msg_bytes(num_bytes)
        self._add_flits((num_bytes + FLIT_SIZE - 1) // FLIT_SIZE)
        self._add_msg_energy(num_bytes * self.pj_per_byte)

    def send_data(self, num_bytes):
        """Transfer a data payload (word response, line fill, writeback)."""
        self._add_data_transfers()
        self._add_data_bytes(num_bytes)
        self._add_flits((num_bytes + FLIT_SIZE - 1) // FLIT_SIZE)
        self._add_data_energy(num_bytes * self.pj_per_byte)

    def counter_pairs(self, num_bytes, is_data):
        """The ``(qualified_name, amount)`` increments one transfer makes.

        Used to prebuild bulk flushers (:meth:`StatsRegistry.flusher`)
        for fixed-size messages on hot protocol paths; the energy amount
        is the same ``num_bytes * pj_per_byte`` float the per-call path
        computes, so flushed accounting stays bit-identical.
        """
        scope = self.stats
        flits = (num_bytes + FLIT_SIZE - 1) // FLIT_SIZE
        energy = num_bytes * self.pj_per_byte
        if is_data:
            return [(scope.qualified("data_transfers"), 1),
                    (scope.qualified("data_bytes"), num_bytes),
                    (scope.qualified("flits"), flits),
                    (scope.qualified("data_energy_pj"), energy)]
        return [(scope.qualified("msgs"), 1),
                (scope.qualified("msg_bytes"), num_bytes),
                (scope.qualified("flits"), flits),
                (scope.qualified("msg_energy_pj"), energy)]

    @property
    def registry(self):
        """The root stats registry this link's counters live in."""
        return self.stats.registry

    @property
    def total_energy_pj(self):
        return (self.stats.get("msg_energy_pj")
                + self.stats.get("data_energy_pj"))


def tile_links(link_config, stats):
    """Construct the three standard links of an accelerator tile.

    Returns ``(axc_l1x, l1x_l2, fwd)``.
    """
    return (Link("axc_l1x", link_config.axc_l1x_pj_per_byte, stats),
            Link("l1x_l2", link_config.l1x_l2_pj_per_byte, stats),
            Link("fwd", link_config.l0x_l0x_pj_per_byte, stats))
