"""Point-to-point interconnect links with per-byte energy accounting.

The paper's energy story hinges on three links (Table 2):

* accelerator <-> shared L1X: 0.4 pJ/byte (short tile-internal wires)
* shared L1X <-> host L2:     6 pJ/byte   (long cross-chip wires)
* L0X <-> L0X forwarding:     0.1 pJ/byte (adjacent accelerators)

Each link separately tracks control *messages* (requests, acks, eviction
notices — Figure 6c's MSG series) and *data* transfers (Figure 6c's DATA
series), because Lesson 4 is precisely that pull-based request messages
can squander the energy a cache hierarchy saves.
"""

from ..common.units import CONTROL_MSG_SIZE, bytes_to_flits


class Link:
    """One direction-agnostic link; counts messages, bytes, flits, energy."""

    def __init__(self, name, pj_per_byte, stats):
        self.name = name
        self.pj_per_byte = pj_per_byte
        self.stats = stats.scope("link." + name)

    def send_msg(self, num_bytes=CONTROL_MSG_SIZE):
        """Transfer one control message (request/ack/eviction notice)."""
        self.stats.add("msgs")
        self.stats.add("msg_bytes", num_bytes)
        self.stats.add("flits", bytes_to_flits(num_bytes))
        self.stats.add("msg_energy_pj", num_bytes * self.pj_per_byte)

    def send_data(self, num_bytes):
        """Transfer a data payload (word response, line fill, writeback)."""
        self.stats.add("data_transfers")
        self.stats.add("data_bytes", num_bytes)
        self.stats.add("flits", bytes_to_flits(num_bytes))
        self.stats.add("data_energy_pj", num_bytes * self.pj_per_byte)

    @property
    def total_energy_pj(self):
        return (self.stats.get("msg_energy_pj")
                + self.stats.get("data_energy_pj"))


def tile_links(link_config, stats):
    """Construct the three standard links of an accelerator tile.

    Returns ``(axc_l1x, l1x_l2, fwd)``.
    """
    return (Link("axc_l1x", link_config.axc_l1x_pj_per_byte, stats),
            Link("l1x_l2", link_config.l1x_l2_pj_per_byte, stats),
            Link("fwd", link_config.l0x_l0x_pj_per_byte, stats))
