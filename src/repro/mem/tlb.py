"""Virtual memory: page table and the accelerator tile's AX-TLB.

FUSION runs the accelerator tile on virtual addresses and places a TLB
(AX-TLB) on the shared L1X's *miss path*, off the accelerators' critical
path (Section 3.2, Lesson 8).  Table 6 counts its lookups.
"""

from ..common.errors import TranslationError

PAGE_SIZE = 4096
PAGE_SHIFT = 12

#: Physical frames start at this offset so that virtual and physical
#: addresses are visibly distinct in traces and tests.
PHYSICAL_BASE_FRAME = 1 << 20

#: Latency of a page-table walk on an AX-TLB miss, cycles.
WALK_LATENCY = 40

#: Per-lookup energy anchors (pJ); small relative to cache accesses —
#: the paper reports < 1 % of energy in AX-TLB + AX-RMAP.
TLB_LOOKUP_PJ = 1.2


class PageTable:
    """A per-process linear page table.

    Mappings are created on demand (the host OS would have allocated the
    arrays before offloading); the mapping is a fixed frame offset plus a
    per-PID stride so distinct processes never alias.
    """

    def __init__(self, pid=0):
        self.pid = pid
        self._map = {}

    def map_page(self, vpn):
        ppn = PHYSICAL_BASE_FRAME + (self.pid << 28) + vpn
        self._map[vpn] = ppn
        return ppn

    def translate(self, vaddr):
        """Return the physical address for ``vaddr``, mapping on demand."""
        vpn = vaddr >> PAGE_SHIFT
        ppn = self._map.get(vpn)
        if ppn is None:
            ppn = self.map_page(vpn)
        return (ppn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1))

    def reverse(self, paddr):
        """Return the virtual address for ``paddr``.

        Raises :class:`TranslationError` when no mapping exists — the host
        should never forward a request for an unmapped page.
        """
        ppn = paddr >> PAGE_SHIFT
        vpn = ppn - PHYSICAL_BASE_FRAME - (self.pid << 28)
        if self._map.get(vpn) != ppn:
            raise TranslationError(
                "no reverse mapping for paddr {:#x}".format(paddr))
        return (vpn << PAGE_SHIFT) | (paddr & (PAGE_SIZE - 1))


class AxTlb:
    """The accelerator tile's TLB, consulted on L1X misses only."""

    def __init__(self, page_table, num_entries, stats):
        self.page_table = page_table
        self.num_entries = num_entries
        self.stats = stats.scope("ax_tlb")
        self._entries = {}
        self._use_clock = 0

    def translate(self, vaddr):
        """Translate ``vaddr``; returns ``(paddr, latency_cycles)``."""
        vpn = vaddr >> PAGE_SHIFT
        self.stats.add("lookups")
        self.stats.add("energy_pj", TLB_LOOKUP_PJ)
        self._use_clock += 1
        if vpn in self._entries:
            self.stats.add("hits")
            ppn, _ = self._entries[vpn]
            self._entries[vpn] = (ppn, self._use_clock)
            latency = 1
        else:
            self.stats.add("misses")
            ppn = self.page_table.translate(vpn << PAGE_SHIFT) >> PAGE_SHIFT
            if len(self._entries) >= self.num_entries:
                lru_vpn = min(self._entries,
                              key=lambda v: self._entries[v][1])
                del self._entries[lru_vpn]
            self._entries[vpn] = (ppn, self._use_clock)
            latency = 1 + WALK_LATENCY
        return (ppn << PAGE_SHIFT) | (vaddr & (PAGE_SIZE - 1)), latency
