"""Main memory model (Table 2: 4-channel, open-page, 200-cycle latency).

The model tracks the open row per channel; a hit on the open row pays the
shorter open-page latency.  Statistics feed the DRAM component of the
Figure 6a energy breakdown.
"""

from ..common.types import block_address

#: Energy per DRAM line access, pJ.  Anchored well above any on-chip
#: access so that DRAM-bound behaviour dominates when working sets
#: overflow the LLC, as in the paper's HIST workload.
DRAM_ACCESS_PJ = 2000.0


class MainMemory:
    """Open-page DRAM latency/energy model."""

    def __init__(self, config, stats):
        self.config = config
        self.stats = stats.scope("dram")
        self._open_rows = {}
        #: Monotonic version for the invocation replay cache: any access
        #: may move the open-row state (latency-affecting), so replay
        #: guards require the version untouched since recording.
        self.version = 0

    def _channel_of(self, block):
        return (block // self.config.page_size) % self.config.channels

    def _row_of(self, block):
        return block // self.config.page_size

    def access(self, addr, is_store=False):
        """Access one line; return latency in cycles and record stats."""
        block = block_address(addr)
        self.version += 1
        channel = self._channel_of(block)
        row = self._row_of(block)
        if self._open_rows.get(channel) == row:
            latency = self.config.open_page_latency
            self.stats.add("row_hits")
        else:
            latency = self.config.latency
            self._open_rows[channel] = row
            self.stats.add("row_misses")
        self.stats.add("accesses")
        if is_store:
            self.stats.add("writes")
        else:
            self.stats.add("reads")
        self.stats.add("energy_pj", DRAM_ACCESS_PJ)
        return latency

    def reset(self):
        self.version += 1
        self._open_rows.clear()
