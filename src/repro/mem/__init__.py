"""Memory substrate: caches, scratchpads, DRAM, MSHRs and translation."""

from .cache import CacheLine, SetAssocCache
from .dram import DRAM_ACCESS_PJ, MainMemory
from .mshr import MshrFile
from .rmap import AxRmap
from .scratchpad import Scratchpad, window_capacity
from .tlb import PAGE_SIZE, AxTlb, PageTable

__all__ = [
    "CacheLine", "SetAssocCache", "DRAM_ACCESS_PJ", "MainMemory",
    "MshrFile", "AxRmap", "Scratchpad", "window_capacity",
    "PAGE_SIZE", "AxTlb", "PageTable",
]
