"""Generic set-associative cache model.

One class serves every cache in the hierarchy — host L1, host L2 data
array, accelerator L0X and shared L1X.  Coherence protocols layer their
state on top of :class:`CacheLine` fields (``state`` for MESI,
``lease``/``gtime`` for ACC) rather than subclassing, keeping the
mechanical parts (indexing, LRU, eviction) in one tested place.
"""

from dataclasses import dataclass, field

from ..common.errors import SimulationError
from ..common.types import block_address


@dataclass
class CacheLine:
    """One cache line's bookkeeping state.

    Attributes:
        block: line-aligned address (the tag).
        dirty: set by stores under write-back policy.
        pid: process id tag (the tile caches are virtually indexed and
            PID-tagged so accelerators from different processes co-exist).
        state: MESI/MEI state character for protocol-managed caches.
        lease: ACC local timestamp (LTIME) — the line is valid until this
            time; ``None`` for non-ACC caches.
        gtime: ACC global timestamp (GTIME, L1X only) — the time by which
            every L0X will have self-invalidated the line.
        write_epoch_end: end of an ACC write epoch; the line is locked
            until then (L1X only).
        paddr: physical line address backing a virtually-indexed line
            (L1X only; ``None`` for physically-indexed caches).
    """

    block: int
    dirty: bool = False
    pid: int = 0
    state: str = "V"
    lease: int = None
    gtime: int = None
    write_epoch_end: int = None
    paddr: int = None
    last_use: int = 0


class SetAssocCache:
    """A set-associative cache with true-LRU replacement.

    The cache is a pure state container: it does not know about latency,
    energy or coherence.  Systems compose it with the energy models and
    protocol engines.
    """

    def __init__(self, config, name="cache"):
        self.config = config
        self.name = name
        self._sets = [dict() for _ in range(config.num_sets)]
        self._use_clock = 0

    # -- indexing ---------------------------------------------------------

    def _set_for(self, addr):
        return self._sets[self.config.set_index(addr)]

    def _tick(self):
        self._use_clock += 1
        return self._use_clock

    # -- queries ----------------------------------------------------------

    def lookup(self, addr, touch=True):
        """Return the resident :class:`CacheLine` for ``addr`` or ``None``.

        ``touch`` updates LRU state; pass ``False`` for protocol probes
        that must not perturb replacement (e.g. forwarded-request checks).
        """
        block = block_address(addr, self.config.line_size)
        line = self._set_for(addr).get(block)
        if line is not None and touch:
            line.last_use = self._tick()
        return line

    def contains(self, addr):
        """Return whether ``addr``'s line is resident (no LRU update)."""
        return self.lookup(addr, touch=False) is not None

    def resident_blocks(self):
        """Return a list of all resident line addresses."""
        return [block for cache_set in self._sets for block in cache_set]

    def lines(self):
        """Iterate over all resident :class:`CacheLine` objects."""
        for cache_set in self._sets:
            yield from cache_set.values()

    @property
    def occupancy(self):
        return sum(len(cache_set) for cache_set in self._sets)

    # -- mutation ---------------------------------------------------------

    def insert(self, addr, **line_fields):
        """Insert a line for ``addr``, returning the evicted line or None.

        Raises if the line is already resident — callers must use
        :meth:`lookup` first; double-insertion indicates a protocol bug.
        """
        block = block_address(addr, self.config.line_size)
        cache_set = self._set_for(addr)
        if block in cache_set:
            raise SimulationError(
                "{}: double insert of block {:#x}".format(self.name, block))
        victim = None
        if len(cache_set) >= self.config.ways:
            victim = self._evict_lru(cache_set)
        line = CacheLine(block=block, last_use=self._tick(), **line_fields)
        cache_set[block] = line
        return victim

    def _evict_lru(self, cache_set):
        lru_block = min(cache_set, key=lambda b: cache_set[b].last_use)
        return cache_set.pop(lru_block)

    def invalidate(self, addr):
        """Remove ``addr``'s line, returning it (or ``None`` if absent)."""
        block = block_address(addr, self.config.line_size)
        return self._set_for(addr).pop(block, None)

    def invalidate_all(self):
        """Flush every line, returning the list of removed lines."""
        removed = []
        for cache_set in self._sets:
            removed.extend(cache_set.values())
            cache_set.clear()
        return removed

    def dirty_lines(self):
        """Return all resident dirty lines."""
        return [line for line in self.lines() if line.dirty]

    def __repr__(self):
        return "SetAssocCache({}, {}B, {}-way, {}/{} lines)".format(
            self.name, self.config.size_bytes, self.config.ways,
            self.occupancy, self.config.num_lines)
