"""Generic set-associative cache model.

One class serves every cache in the hierarchy — host L1, host L2 data
array, accelerator L0X and shared L1X.  Coherence protocols layer their
state on top of :class:`CacheLine` fields (``state`` for MESI,
``lease``/``gtime`` for ACC) rather than subclassing, keeping the
mechanical parts (indexing, LRU, eviction) in one tested place.

This sits on the per-access hot path of every simulation, so the
mechanics are deliberately low-level: :class:`CacheLine` is a
``__slots__`` class (no dataclass machinery), and the line mask / set
shift are precomputed at construction so :meth:`lookup` does two integer
ops and one dict probe instead of chasing ``config`` attributes (the
``num_sets`` *property* re-divides on every call).
"""

from ..common.errors import SimulationError


class CacheLine:
    """One cache line's bookkeeping state.

    Attributes:
        block: line-aligned address (the tag).
        dirty: set by stores under write-back policy.
        pid: process id tag (the tile caches are virtually indexed and
            PID-tagged so accelerators from different processes co-exist).
        state: MESI/MEI state character for protocol-managed caches.
        lease: ACC local timestamp (LTIME) — the line is valid until this
            time; ``None`` for non-ACC caches.
        gtime: ACC global timestamp (GTIME, L1X only) — the time by which
            every L0X will have self-invalidated the line.
        write_epoch_end: end of an ACC write epoch; the line is locked
            until then (L1X only).
        paddr: physical line address backing a virtually-indexed line
            (L1X only; ``None`` for physically-indexed caches).
    """

    __slots__ = ("block", "dirty", "pid", "state", "lease", "gtime",
                 "write_epoch_end", "paddr", "last_use")

    def __init__(self, block, dirty=False, pid=0, state="V", lease=None,
                 gtime=None, write_epoch_end=None, paddr=None, last_use=0):
        self.block = block
        self.dirty = dirty
        self.pid = pid
        self.state = state
        self.lease = lease
        self.gtime = gtime
        self.write_epoch_end = write_epoch_end
        self.paddr = paddr
        self.last_use = last_use

    def __repr__(self):
        return ("CacheLine(block={:#x}, dirty={}, pid={}, state={!r}, "
                "lease={}, gtime={}, write_epoch_end={}, paddr={}, "
                "last_use={})").format(
                    self.block, self.dirty, self.pid, self.state,
                    self.lease, self.gtime, self.write_epoch_end,
                    self.paddr, self.last_use)


class SetAssocCache:
    """A set-associative cache with true-LRU replacement.

    The cache is a pure state container: it does not know about latency,
    energy or coherence.  Systems compose it with the energy models and
    protocol engines.
    """

    def __init__(self, config, name="cache"):
        self.config = config
        self.name = name
        self._sets = [dict() for _ in range(config.num_sets)]
        # Flat residency index over all sets: the block address already
        # determines the set, so `lookup` (by far the hottest query) can
        # do ONE dict probe with no set-index arithmetic.  The per-set
        # dicts remain the source of truth for ways limits and LRU
        # victim selection; every mutation maintains both.
        self._lines = {}
        self._use_clock = 0
        # Incremental resident-line count: maintained by insert/evict/
        # invalidate so `occupancy` (read on stats paths) never rescans
        # the sets.
        self._occupancy = 0
        # Hot-path constants (line size and set count are powers of two,
        # enforced by CacheConfig validation).
        self._block_mask = ~(config.line_size - 1)
        self._set_shift = config.line_size.bit_length() - 1
        self._set_mask = config.num_sets - 1
        self._ways = config.ways

    # -- indexing ---------------------------------------------------------

    def _set_for(self, addr):
        return self._sets[(addr >> self._set_shift) & self._set_mask]

    def _tick(self):
        self._use_clock += 1
        return self._use_clock

    # -- queries ----------------------------------------------------------

    def lookup(self, addr, touch=True):
        """Return the resident :class:`CacheLine` for ``addr`` or ``None``.

        ``touch`` updates LRU state; pass ``False`` for protocol probes
        that must not perturb replacement (e.g. forwarded-request checks).
        """
        line = self._lines.get(addr & self._block_mask)
        if line is not None and touch:
            self._use_clock = clock = self._use_clock + 1
            line.last_use = clock
        return line

    def touch_run(self, line, count):
        """Apply ``count`` LRU touches to ``line`` in one step.

        Equivalent to ``count`` consecutive ``lookup(line.block)`` calls:
        the use clock advances by ``count`` and the line records the last
        tick, so replacement order (and therefore every downstream stat)
        is identical to the per-access path.  Used by the run-coalescing
        fast paths.
        """
        self._use_clock = clock = self._use_clock + count
        line.last_use = clock

    def touch_phase(self, line_positions, total):
        """Apply a whole phase's LRU touches in one step.

        ``line_positions`` is an iterable of ``(line, last_pos)`` pairs
        where ``last_pos`` is the 1-based ordinal of the line's *last*
        access among the phase's ``total`` accesses.  Equivalent to
        ticking the use clock once per access in program order: each
        line ends on the clock value of its final touch and the clock
        advances by ``total`` — replacement order is bit-identical to
        the per-op path.  Used by the steady-state phase fast path.
        """
        base = self._use_clock
        for line, last_pos in line_positions:
            line.last_use = base + last_pos
        self._use_clock = base + total

    def contains(self, addr):
        """Return whether ``addr``'s line is resident (no LRU update)."""
        return self.lookup(addr, touch=False) is not None

    def resident_blocks(self):
        """Return a list of all resident line addresses."""
        return [block for cache_set in self._sets for block in cache_set]

    def lines(self):
        """Iterate over all resident :class:`CacheLine` objects."""
        for cache_set in self._sets:
            yield from cache_set.values()

    @property
    def occupancy(self):
        return self._occupancy

    # -- replay capture ---------------------------------------------------

    def set_index_of(self, addr):
        """Return the set index ``addr`` maps to (replay footprints)."""
        return (addr >> self._set_shift) & self._set_mask

    def capture_sets(self, set_indices=None):
        """Raw state snapshot for the invocation replay cache.

        Returns ``(use_clock, [(set_index, entries), ...])`` where each
        entry is a ``(line, block, pid, state, dirty, lease, gtime,
        write_epoch_end, paddr, last_use)`` tuple captured *in per-set
        dict order* — the order :meth:`lines` (and therefore
        ``dirty_lines``/flush walks) observe, which the replay guard
        must pin exactly.  ``set_indices=None`` captures every non-empty
        set (recording); a recording's frozen index list captures just
        its footprint (probing).  The live line object rides along so
        the diff pass can tell survivors from re-installs.
        """
        if set_indices is None:
            selected = [(index, cache_set) for index, cache_set
                        in enumerate(self._sets) if cache_set]
        else:
            sets = self._sets
            selected = [(index, sets[index]) for index in set_indices]
        return (self._use_clock, [
            (index, [(line, line.block, line.pid, line.state, line.dirty,
                      line.lease, line.gtime, line.write_epoch_end,
                      line.paddr, line.last_use)
                     for line in cache_set.values()])
            for index, cache_set in selected])

    # -- mutation ---------------------------------------------------------

    def insert(self, addr, **line_fields):
        """Insert a line for ``addr``, returning the evicted line or None.

        Raises if the line is already resident — callers must use
        :meth:`lookup` first; double-insertion indicates a protocol bug.
        """
        return self.install(addr, **line_fields)[1]

    def install(self, addr, **line_fields):
        """Like :meth:`insert` but returns ``(line, victim)``.

        Protocol code that needs the just-installed line (e.g. the ACC
        miss path recording a store into it) uses this to skip a
        redundant post-insert lookup.
        """
        block = addr & self._block_mask
        cache_set = self._sets[(addr >> self._set_shift) & self._set_mask]
        if block in cache_set:
            raise SimulationError(
                "{}: double insert of block {:#x}".format(self.name, block))
        victim = None
        if len(cache_set) >= self._ways:
            victim = self._evict_lru(cache_set)
        self._use_clock = clock = self._use_clock + 1
        cache_set[block] = line = CacheLine(block=block, last_use=clock,
                                            **line_fields)
        self._lines[block] = line
        self._occupancy += 1
        return line, victim

    def _evict_lru(self, cache_set):
        lru_block = min(cache_set, key=lambda b: cache_set[b].last_use)
        del self._lines[lru_block]
        self._occupancy -= 1
        return cache_set.pop(lru_block)

    def invalidate(self, addr):
        """Remove ``addr``'s line, returning it (or ``None`` if absent)."""
        block = addr & self._block_mask
        line = self._set_for(addr).pop(block, None)
        if line is not None:
            del self._lines[block]
            self._occupancy -= 1
        return line

    def invalidate_all(self):
        """Flush every line, returning the list of removed lines."""
        removed = []
        for cache_set in self._sets:
            removed.extend(cache_set.values())
            cache_set.clear()
        self._lines.clear()
        self._occupancy = 0
        return removed

    def dirty_lines(self):
        """Return all resident dirty lines."""
        return [line for line in self.lines() if line.dirty]

    def __repr__(self):
        return "SetAssocCache({}, {}B, {}-way, {}/{} lines)".format(
            self.name, self.config.size_bytes, self.config.ways,
            self.occupancy, self.config.num_lines)
