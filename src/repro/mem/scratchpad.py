"""Per-accelerator scratchpad (explicitly managed local store).

The SCRATCH baseline gives each accelerator a small RAM into which the
oracle DMA engine pushes read data before a window executes, and from
which it drains dirty blocks afterwards.  The scratchpad itself is a
plain block-presence container — all management intelligence lives in
:mod:`repro.host.dma`.
"""

from ..common.errors import SimulationError
from ..common.types import block_address
from ..common.units import LINE_SIZE


class Scratchpad:
    """A software-managed local store holding whole cache lines."""

    def __init__(self, config, name="scratchpad"):
        self.config = config
        self.name = name
        self._blocks = {}

    @property
    def capacity_blocks(self):
        return self.config.num_blocks

    @property
    def occupancy(self):
        return len(self._blocks)

    @property
    def free_blocks(self):
        return self.capacity_blocks - self.occupancy

    def contains(self, addr):
        return block_address(addr) in self._blocks

    def fill(self, block):
        """Install ``block`` (DMA-in). Raises when capacity is exceeded —
        the DMA window generator is responsible for sizing windows."""
        block = block_address(block)
        if block in self._blocks:
            return
        if self.occupancy >= self.capacity_blocks:
            raise SimulationError(
                "{}: overflow installing {:#x}".format(self.name, block))
        self._blocks[block] = False

    def access(self, addr, is_store):
        """Record an accelerator access; the block must be resident."""
        block = block_address(addr)
        if block not in self._blocks:
            raise SimulationError(
                "{}: access to non-resident block {:#x} "
                "(oracle DMA failed to stage it)".format(self.name, block))
        if is_store:
            self._blocks[block] = True

    def serve(self, block, is_store):
        """Hot-path access with a pre-aligned ``block``.

        Semantically ``fill`` (stores to absent blocks — write-first
        blocks need no DMA staging) followed by ``access``, in one dict
        probe.  Loads to non-resident blocks raise exactly like
        :meth:`access`; the same call serves one access or a whole
        coalesced run (repetition changes no further state).
        """
        blocks = self._blocks
        if block in blocks:
            if is_store:
                blocks[block] = True
            return
        if is_store:
            if len(blocks) >= self.config.num_blocks:
                raise SimulationError(
                    "{}: overflow installing {:#x}".format(self.name,
                                                           block))
            blocks[block] = True
            return
        raise SimulationError(
            "{}: access to non-resident block {:#x} "
            "(oracle DMA failed to stage it)".format(self.name, block))

    def dirty_blocks(self):
        """Return the addresses of blocks written since their fill."""
        return [block for block, dirty in self._blocks.items() if dirty]

    def drain(self):
        """Empty the scratchpad (end of a DMA window), returning the list
        of dirty block addresses that must be DMA-ed back out."""
        dirty = self.dirty_blocks()
        self._blocks.clear()
        return dirty

    # -- invocation replay surface (repro.accel.replay) ----------------------

    def state_signature(self):
        """Replay-guard signature: the resident block/dirty map.

        SCRATCH invocations start and end at drained (empty) scratchpads,
        so the guard only accepts a falsy signature.
        """
        return tuple(self._blocks.items())

    def apply_transform(self, transform, t0):
        """No-op: a guardable invocation leaves the scratchpad empty."""

    def __repr__(self):
        return "Scratchpad({}, {}/{} blocks)".format(
            self.name, self.occupancy, self.capacity_blocks)


def window_capacity(config, line_size=LINE_SIZE):
    """Number of distinct blocks one DMA window may stage."""
    return config.size_bytes // line_size
