"""Miss Status Holding Registers.

The accelerator cycle model uses an MSHR file to merge concurrent misses
to the same block: only the primary miss pays the downstream access, and
secondary misses complete when the primary's fill returns.  This mirrors
the paper's "aggressive non-blocking interface to memory".
"""

from ..common.errors import SimulationError


class MshrFile:
    """Tracks outstanding misses, one entry per missing block."""

    def __init__(self, num_entries=16, name="mshr"):
        self.num_entries = num_entries
        self.name = name
        self._entries = {}

    @property
    def occupancy(self):
        return len(self._entries)

    @property
    def full(self):
        return self.occupancy >= self.num_entries

    def outstanding(self, block):
        """Return the fill-completion time for ``block`` or ``None``."""
        return self._entries.get(block)

    def allocate(self, block, complete_at):
        """Allocate a primary-miss entry. Raises when full or duplicate."""
        if self.full:
            raise SimulationError("{}: allocation while full".format(self.name))
        if block in self._entries:
            raise SimulationError(
                "{}: duplicate primary miss for {:#x}".format(
                    self.name, block))
        self._entries[block] = complete_at

    def release_completed(self, now):
        """Release entries whose fills have arrived by ``now``."""
        done = [block for block, t in self._entries.items() if t <= now]
        for block in done:
            del self._entries[block]
        return done

    def earliest_completion(self):
        """Return the soonest outstanding completion time, or ``None``."""
        if not self._entries:
            return None
        return min(self._entries.values())

    def clear(self):
        self._entries.clear()
