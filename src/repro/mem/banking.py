"""Bank-conflict contention model for banked caches.

Table 2's shared L1X is 16-banked; banking is where its access energy
advantage comes from, but banks are also a *throughput* resource: two
accesses landing in the same bank in the same cycle serialise.  With
one accelerator running at a time the effect is negligible (accesses
are already a cycle apart), which is why the default configuration
leaves it off — but the FUSION-PIPE extension overlaps accelerators,
and the SHARED design funnels every operation of every AXC through the
one cache, so the knob exists (``model_bank_conflicts``).

The model keeps a busy-until time per bank; an access that arrives
while its bank is busy waits out the remainder and the wait is counted.
"""


class BankContention:
    """Per-bank occupancy tracking with conflict accounting."""

    def __init__(self, num_banks, occupancy, stats, name="banks"):
        self.num_banks = max(1, num_banks)
        self.occupancy = occupancy
        self.stats = stats.scope(name)
        self._busy_until = [0] * self.num_banks

    def bank_of(self, set_index):
        """Sets are interleaved across banks."""
        return set_index % self.num_banks

    def access(self, set_index, now):
        """Occupy the bank serving ``set_index``; returns the conflict
        delay (0 when the bank is free)."""
        bank = self.bank_of(set_index)
        start = self._busy_until[bank]
        delay = max(0, start - now)
        self._busy_until[bank] = max(now, start) + self.occupancy
        self.stats.add("accesses")
        if delay:
            self.stats.add("conflicts")
            self.stats.add("conflict_cycles", delay)
        return delay

    @property
    def conflicts(self):
        return self.stats.get("conflicts")

    def reset(self):
        self._busy_until = [0] * self.num_banks
