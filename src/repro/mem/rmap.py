"""AX-RMAP: the accelerator tile's reverse (physical-to-L1X) map.

Forwarded MESI requests from the host's shared L2 arrive at the tile with
*physical* addresses, but the shared L1X is virtually indexed.  Rather
than widening every host coherence message with the virtual address, the
paper dedicates a per-tile reverse map indexed by physical block address
that stores a pointer to the L1X line (Section 3.2).  Table 6 counts its
lookups.  The Appendix's synonym rule is also enforced here: at most one
virtual synonym of any physical block may live in the tile.
"""

from ..common.types import block_address

#: Per-lookup energy anchor (pJ).
RMAP_LOOKUP_PJ = 1.5


class AxRmap:
    """Maps physical block address to the virtual block cached in the L1X."""

    def __init__(self, stats):
        self.stats = stats.scope("ax_rmap")
        self._map = {}

    def record_fill(self, pblock, vblock):
        """Record that physical block ``pblock`` is cached as ``vblock``.

        Returns the previously-mapped virtual synonym when a different
        virtual address already maps to this physical block — the caller
        must evict the duplicate (only one synonym permitted in the tile).
        """
        pblock = block_address(pblock)
        vblock = block_address(vblock)
        previous = self._map.get(pblock)
        self._map[pblock] = vblock
        if previous is not None and previous != vblock:
            self.stats.add("synonym_evictions")
            return previous
        return None

    def lookup(self, pblock):
        """Translate a forwarded request's physical block to its virtual
        block in the L1X; counts the lookup.  Returns ``None`` when the
        tile does not cache the block (should not happen — the host
        directory filters requests — but forwarding races are tolerated)."""
        self.stats.add("lookups")
        self.stats.add("energy_pj", RMAP_LOOKUP_PJ)
        return self._map.get(block_address(pblock))

    def remove(self, pblock):
        """Drop the mapping when the L1X evicts the line."""
        self._map.pop(block_address(pblock), None)

    @property
    def occupancy(self):
        return len(self._map)
