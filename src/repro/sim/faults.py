"""Deterministic fault injection for the execution engine.

Every recovery path in :mod:`repro.sim.engine` — pool respawn after a
worker crash, per-run timeouts, corrupt-cache-entry recompute — must be
exercisable in CI without flaky sleeps or real crashes happening by
accident.  ``REPRO_FAULT_SPEC`` arms a deterministic fault plan:

* ``crash:every=N`` — every Nth simulation a pool worker executes calls
  ``os._exit``, killing the worker mid-task (the parent sees a
  ``BrokenProcessPool``).  The counter is per worker process, so a
  respawned pool starts clean and retries converge.
* ``hang:key=<prefix>`` — any request whose descriptor
  (``SYSTEM:benchmark:size``) starts with ``<prefix>`` sleeps forever
  in the worker, exercising the timeout/cancellation path.
* ``corrupt-cache:rate=R`` — a deterministic fraction ``R`` of disk
  cache reads (keyed by a hash of the file name, so the same entries
  "corrupt" every time) are treated as torn pickles, exercising the
  drop-and-recompute path.

Clauses are comma-separated: ``crash:every=7,corrupt-cache:rate=0.25``.
Crash and hang faults fire **only** in pool workers
(:func:`repro.sim.engine._execute_timed`); the in-process serial path
never injects, which is what makes serial fallback a guaranteed-success
last resort and keeps fault runs bit-identical to clean ones.
"""

import hashlib
import os
import time
from dataclasses import dataclass
from functools import lru_cache

from ..common.errors import ConfigError

#: Exit status used by injected worker crashes (visible in journals).
CRASH_EXIT_STATUS = 17

#: Executions performed by *this* process while a crash fault is armed.
_EXECUTIONS = 0


@dataclass(frozen=True)
class FaultPlan:
    """Parsed ``REPRO_FAULT_SPEC``; falsy when no fault is armed."""

    crash_every: int = 0
    hang_key: str = ""
    corrupt_rate: float = 0.0

    def __bool__(self):
        return bool(self.crash_every or self.hang_key
                    or self.corrupt_rate)


def request_key(request):
    """The descriptor ``hang:key=`` prefixes match against."""
    return "{}:{}:{}".format(request.system, request.benchmark,
                             request.size)


@lru_cache(maxsize=8)
def _parse(spec):
    crash_every, hang_key, corrupt_rate = 0, "", 0.0
    for clause in filter(None, (c.strip() for c in spec.split(","))):
        # Only the first ":" separates the kind from its single
        # name=value parameter — the value itself may contain ":"
        # (hang:key=FUSION:adpcm:tiny).
        kind, _, rest = clause.partition(":")
        params = {}
        if rest:
            name, _, value = rest.partition("=")
            params[name.strip()] = value.strip()
        if kind == "crash":
            try:
                crash_every = int(params.get("every", "1"))
            except ValueError:
                raise ConfigError(
                    "crash:every= must be an integer, got {!r}"
                    .format(params.get("every")))
            if crash_every < 1:
                raise ConfigError("crash:every= must be >= 1")
        elif kind == "hang":
            hang_key = params.get("key", "")
            if not hang_key:
                raise ConfigError("hang fault needs key=<prefix>")
        elif kind == "corrupt-cache":
            try:
                corrupt_rate = float(params.get("rate", "1"))
            except ValueError:
                raise ConfigError(
                    "corrupt-cache:rate= must be a float, got {!r}"
                    .format(params.get("rate")))
            if not 0.0 <= corrupt_rate <= 1.0:
                raise ConfigError("corrupt-cache:rate= must be in [0, 1]")
        else:
            raise ConfigError(
                "unknown fault kind {!r} in REPRO_FAULT_SPEC (expected "
                "crash, hang or corrupt-cache)".format(kind))
    return FaultPlan(crash_every, hang_key, corrupt_rate)


def fault_plan():
    """The active :class:`FaultPlan` (re-read from the environment)."""
    return _parse(os.environ.get("REPRO_FAULT_SPEC", "").strip())


def on_worker_execute(request):
    """Crash/hang hook, called before each pool-worker simulation."""
    plan = fault_plan()
    if not plan:
        return
    if plan.hang_key and request_key(request).startswith(plan.hang_key):
        while True:  # pragma: no cover - the parent terminates us
            time.sleep(60)
    if plan.crash_every:
        global _EXECUTIONS
        _EXECUTIONS += 1
        if _EXECUTIONS % plan.crash_every == 0:
            os._exit(CRASH_EXIT_STATUS)


def should_corrupt(name):
    """Deterministically pick ``corrupt_rate`` of cache files by name."""
    plan = fault_plan()
    if not plan.corrupt_rate:
        return False
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()
    return (int(digest[:8], 16) % 10000) < plan.corrupt_rate * 10000
