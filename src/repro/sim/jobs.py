"""Serializable sweep specifications for the durable experiment store.

A :func:`repro.sim.sweep.sweep` grid is described by *callables*
(config transforms), which cannot cross a process boundary or survive a
daemon restart.  This module defines the wire/store format: a **job
spec** is a plain dict — systems, benchmarks, size, and named axes with
value lists — that expands deterministically to the exact same grid of
:class:`~repro.sim.engine.RunRequest`\\ s a direct ``sweep()`` call
would submit (both go through :func:`repro.sim.sweep.grid_points`).

Each grid point also gets a stable **run key**: a content hash of the
canonical point JSON (system, benchmark, size, axis labels).  Unlike
the engine's cache key it is *not* salted with the code fingerprint —
the store row identifies "the point the user asked for" across daemon
restarts and code changes; the code/config fingerprints at completion
time are recorded separately as provenance columns.
"""

import hashlib
import json

from ..common.errors import ConfigError
from ..systems import SYSTEMS
from ..workloads.registry import BENCHMARKS
from .sweep import METRICS, grid_points, l0x_axis, l1x_axis, lease_axis

#: Axis kinds a serializable spec may use, mapped to the sweep-axis
#: constructors that rebuild the config transforms on the daemon side.
AXIS_KINDS = {
    "lease": lease_axis,
    "l0x_kb": l0x_axis,
    "l1x_kb": l1x_axis,
}

SIZES = ("full", "small", "tiny")

DEFAULT_METRICS = ("accel_cycles", "energy_uj")


def normalize_spec(spec):
    """Validate a job-spec dict; returns the canonical copy.

    Raises :class:`ConfigError` on anything the daemon could not
    expand: unknown systems/benchmarks/sizes, unknown axis kinds or
    metrics, empty grids.  Canonicalisation keeps submission hashes
    stable: axis values become strings (the sweep's point labels),
    metrics default to :data:`DEFAULT_METRICS`.
    """
    if not isinstance(spec, dict):
        raise ConfigError("job spec must be a dict, got {!r}"
                          .format(type(spec).__name__))
    systems = list(spec.get("systems") or ())
    benchmarks = list(spec.get("benchmarks") or ())
    if not systems or not benchmarks:
        raise ConfigError("job spec needs non-empty 'systems' and "
                          "'benchmarks' lists")
    for system in systems:
        if system not in SYSTEMS:
            raise ConfigError("unknown system {!r}; expected one of {}"
                              .format(system, ", ".join(SYSTEMS)))
    for benchmark in benchmarks:
        if benchmark not in BENCHMARKS:
            raise ConfigError(
                "unknown benchmark {!r}; expected one of {}"
                .format(benchmark, ", ".join(BENCHMARKS)))
    size = spec.get("size", "tiny")
    if size not in SIZES:
        raise ConfigError("unknown size {!r}; expected one of {}"
                          .format(size, ", ".join(SIZES)))
    axes = []
    for axis in spec.get("axes") or ():
        kind = axis.get("kind") if isinstance(axis, dict) else None
        if kind not in AXIS_KINDS:
            raise ConfigError(
                "unknown axis kind {!r}; expected one of {}"
                .format(kind, ", ".join(sorted(AXIS_KINDS))))
        values = [str(value) for value in (axis.get("values") or ())]
        if not values:
            raise ConfigError("axis {!r} needs a non-empty 'values' "
                              "list".format(kind))
        axes.append({"kind": kind, "values": values})
    metrics = list(spec.get("metrics") or DEFAULT_METRICS)
    for metric in metrics:
        if metric not in METRICS:
            raise ConfigError("unknown metric {!r}; choose from {}"
                              .format(metric, ", ".join(sorted(METRICS))))
    return {"systems": systems, "benchmarks": benchmarks, "size": size,
            "axes": axes, "metrics": metrics}


def _build_axes(spec):
    axes = []
    for axis in spec["axes"]:
        values = [int(value) for value in axis["values"]]
        axes.append(AXIS_KINDS[axis["kind"]](*values))
    return axes


def expand_spec(spec):
    """Expand a (normalized) spec to ``(points, requests)``.

    ``points`` are ``(system, benchmark, labels)`` tuples aligned with
    the :class:`RunRequest` list — exactly what
    :func:`repro.sim.sweep.grid_points` produces for the equivalent
    direct sweep, so daemon results are bit-identical to local ones.
    """
    spec = normalize_spec(spec)
    return grid_points(spec["systems"], spec["benchmarks"],
                       _build_axes(spec), spec["size"])


def point_dict(system, benchmark, size, axes, labels):
    """The canonical JSON-able identity of one grid point."""
    return {
        "system": system,
        "benchmark": benchmark,
        "size": size,
        "axes": [[axis["kind"], label]
                 for axis, label in zip(axes, labels)],
    }


def run_key(point):
    """Stable content-hash key for one grid point (store primary key)."""
    payload = json.dumps(point, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def point_request(point):
    """Rebuild the :class:`RunRequest` one stored point describes."""
    axes = []
    for kind, label in point["axes"]:
        if kind not in AXIS_KINDS:
            raise ConfigError("stored point has unknown axis kind {!r}"
                              .format(kind))
        axes.append(AXIS_KINDS[kind](int(label)))
    points, requests = grid_points(
        [point["system"]], [point["benchmark"]], axes, point["size"])
    assert len(requests) == 1
    return requests[0]


def spec_points(spec):
    """Yield ``(run_key, point_dict, request)`` for every grid point."""
    spec = normalize_spec(spec)
    points, requests = expand_spec(spec)
    for (system, benchmark, labels), request in zip(points, requests):
        point = point_dict(system, benchmark, spec["size"],
                           spec["axes"], labels)
        yield run_key(point), point, request
