"""Terminal charts: render the paper's figures as unicode bar charts.

Figure 6a is a stacked-bar energy chart and Figure 6b a grouped-bar
performance chart; these helpers draw faithful text versions so the CLI
and examples can show the *picture*, not just the rows.
"""

from .results import is_failure

#: Glyph per energy component, in stacking order.
STACK_GLYPHS = (
    ("local", "#"),
    ("l1x", "@"),
    ("l2", "%"),
    ("dram", "D"),
    ("link_axc_l1x_msg", "-"),
    ("link_axc_l1x_data", "="),
    ("link_fwd", ">"),
    ("link_l1x_l2", "+"),
    ("xlat", "x"),
    ("compute", "."),
)


def hbar(value, scale, width=50, glyph="#"):
    """One horizontal bar: ``value`` rendered against ``scale``."""
    if scale <= 0:
        return ""
    length = int(round(width * value / scale))
    return glyph * max(0, min(width, length))


def stacked_bar(components, scale, width=50):
    """A stacked horizontal bar from an energy-component dict."""
    if scale <= 0:
        return ""
    bar = []
    carried = 0.0
    for key, glyph in STACK_GLYPHS:
        carried += components.get(key, 0.0)
        target = int(round(width * carried / scale))
        bar.extend(glyph * (target - len(bar)))
    return "".join(bar[:width])


def bar_chart(rows, width=50, label_width=18):
    """Render ``[(label, value), ...]`` as an aligned bar chart."""
    if not rows:
        return ""
    scale = max(value for _, value in rows) or 1.0
    lines = []
    for label, value in rows:
        lines.append("{:<{lw}s} {:>8.2f} |{}".format(
            label, value, hbar(value, scale, width), lw=label_width))
    return "\n".join(lines)


def stacked_chart(rows, width=50, label_width=18):
    """Render ``[(label, components_dict), ...]`` as stacked bars,
    all scaled to the largest total."""
    if not rows:
        return ""
    scale = max(sum(components.values())
                for _, components in rows) or 1.0
    lines = []
    for label, components in rows:
        total = sum(components.values())
        lines.append("{:<{lw}s} {:>8.2f} |{}".format(
            label, total, stacked_bar(components, scale, width),
            lw=label_width))
    legend = "legend: " + "  ".join(
        "{}={}".format(glyph, key) for key, glyph in STACK_GLYPHS)
    lines.append(legend)
    return "\n".join(lines)


def figure6a_chart(results_by_benchmark, width=44):
    """The Figure 6a picture: per benchmark, one stacked bar per system
    normalised to that benchmark's SCRATCH total.

    ``results_by_benchmark`` maps label -> {system: RunResult}.
    Failure holes render as a ``FAILED`` row instead of a bar; when the
    SCRATCH baseline itself failed, the other bars fall back to
    unnormalised totals (scale 1 pJ) rather than dying.
    """
    lines = []
    for label, results in results_by_benchmark.items():
        scratch = results.get("SCRATCH")
        if scratch is not None and not is_failure(scratch):
            base = scratch.energy.total_pj or 1.0
        else:
            base = 1.0
        lines.append(label)
        for system, result in results.items():
            if is_failure(result):
                lines.append("  {:<10s} {:>5s} |{}".format(
                    system, "-", "FAILED: " + (result.error or "?")))
                continue
            normalised = {key: value / base for key, value
                          in result.energy.components.items()}
            lines.append("  {:<10s} {:>5.2f} |{}".format(
                system, sum(normalised.values()),
                stacked_bar(normalised, 1.0, width)))
    legend = "legend: " + "  ".join(
        "{}={}".format(glyph, key) for key, glyph in STACK_GLYPHS)
    lines.append(legend)
    return "\n".join(lines)
