"""Simulation driver, results, experiments and reporting."""

from . import charts, export, sweep, validate
from .engine import DiskCache, ExecutionEngine, RunRequest, get_engine
from .experiments import ALL_EXPERIMENTS, prefetch
from .reporting import ExperimentTable
from .results import RunResult
from .simulator import FIGURE6_SYSTEMS, clear_cache, run, run_all

__all__ = ["charts", "export", "sweep", "validate", "ALL_EXPERIMENTS", "ExperimentTable", "RunResult",
           "FIGURE6_SYSTEMS", "clear_cache", "run", "run_all",
           "DiskCache", "ExecutionEngine", "RunRequest", "get_engine",
           "prefetch"]
