"""Durable experiment store: one SQLite row per requested run.

The engine's disk cache answers "have we computed this exact point with
this exact code?"; the store answers the *operational* questions a
long-lived service needs: what was asked for, by whom, what state is it
in, who is working on it, what went wrong, and what produced the result
(py_experimenter-style keyfield/status/error columns).

Layout (``<cache root>/store.db`` by default):

* ``runs`` — one row per unique grid point (the :func:`jobs.run_key`
  content hash of its canonical point JSON).  ``status`` walks
  ``pending -> claimed -> done | failed``; ``owner``/``claim_expires``
  implement leases; ``code_fingerprint``/``config_fingerprint`` record
  provenance at completion; ``error``/``attempts`` are the error
  columns; ``result`` holds the pickled :class:`RunResult` (or
  :class:`FailedResult`) so a fetch never depends on the volatile
  result cache.
* ``jobs`` / ``job_runs`` — one submission (a serializable sweep spec)
  and its ordered mapping onto run rows.  Overlapping submissions
  *share* rows: a point another job already finished is served done.
* ``events`` — an append-only journal (service lifecycle plus engine
  recovery events bridged from :class:`EngineJournal.on_record`).

Claiming is compare-and-swap: ``UPDATE ... WHERE status='pending' OR
(claimed AND lease expired)`` under ``BEGIN IMMEDIATE``, so two workers
(threads, processes, or daemons on a shared filesystem) can never both
own a row inside one lease window.  A daemon killed ``-9`` leaves its
rows ``claimed``; they return to ``pending`` on lease expiry, or
immediately when a restarting daemon sweeps rows whose owner pid (on
this host) is dead — that is what makes a half-finished grid resume.
"""

import json
import os
import pickle
import socket
import sqlite3
import threading
import time
import uuid

from ..common.errors import ConfigError
from . import jobs as jobs_mod

#: Bump on incompatible schema changes; the store recreates itself.
STORE_SCHEMA_VERSION = 1

#: Default seconds a claim is honoured before other workers may steal it.
DEFAULT_LEASE_S = 60.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY, value TEXT);
CREATE TABLE IF NOT EXISTS runs (
    key TEXT PRIMARY KEY,
    point TEXT NOT NULL,
    status TEXT NOT NULL DEFAULT 'pending'
        CHECK (status IN ('pending', 'claimed', 'done', 'failed')),
    owner TEXT,
    attempts INTEGER NOT NULL DEFAULT 0,
    created REAL NOT NULL,
    updated REAL NOT NULL,
    claim_expires REAL,
    code_fingerprint TEXT,
    config_fingerprint TEXT,
    error TEXT,
    result BLOB);
CREATE INDEX IF NOT EXISTS runs_status ON runs (status);
CREATE TABLE IF NOT EXISTS jobs (
    job_id TEXT PRIMARY KEY,
    spec TEXT NOT NULL,
    client TEXT,
    created REAL NOT NULL);
CREATE TABLE IF NOT EXISTS job_runs (
    job_id TEXT NOT NULL,
    position INTEGER NOT NULL,
    run_key TEXT NOT NULL,
    PRIMARY KEY (job_id, position));
CREATE INDEX IF NOT EXISTS job_runs_key ON job_runs (run_key);
CREATE TABLE IF NOT EXISTS events (
    seq INTEGER PRIMARY KEY AUTOINCREMENT,
    t REAL NOT NULL,
    source TEXT NOT NULL,
    event TEXT NOT NULL,
    detail TEXT);
"""


def default_owner():
    """``host:pid:nonce`` — liveness-checkable on the owning host."""
    return "{}:{}:{}".format(socket.gethostname(), os.getpid(),
                             uuid.uuid4().hex[:8])


def owner_pid_alive(owner):
    """Best-effort liveness of an owner string *on this host*.

    Returns ``None`` (unknown) for owners from other hosts or
    unparseable strings, else True/False for the pid.
    """
    parts = (owner or "").split(":")
    if len(parts) < 3 or parts[0] != socket.gethostname():
        return None
    try:
        pid = int(parts[1])
    except ValueError:
        return None
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return None
    return True


class ExperimentStore:
    """SQLite-backed durable run table (thread- and process-safe).

    All access is serialized through one connection per instance plus
    an in-process lock; cross-process writers are serialized by SQLite
    itself (WAL + busy timeout + ``BEGIN IMMEDIATE`` claims).
    """

    def __init__(self, path, timeout=30.0):
        self.path = str(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            self.path, timeout=timeout, check_same_thread=False,
            isolation_level=None)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.execute(
                "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(STORE_SCHEMA_VERSION)))

    def close(self):
        with self._lock:
            self._conn.close()

    # -- submissions -------------------------------------------------------

    def submit(self, spec, client=None):
        """Register one sweep spec; returns ``(job_id, new_rows)``.

        Expands the spec to grid points, inserts missing run rows as
        ``pending`` and maps the job onto the (possibly pre-existing)
        rows in grid order.  Overlap with earlier jobs is free: rows
        already ``done`` are not re-run, rows in flight are shared.
        """
        spec = jobs_mod.normalize_spec(spec)
        job_id = uuid.uuid4().hex[:12]
        now = time.time()
        entries = list(jobs_mod.spec_points(spec))
        if not entries:
            raise ConfigError("job spec expands to an empty grid")
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT INTO jobs (job_id, spec, client, created) "
                    "VALUES (?, ?, ?, ?)",
                    (job_id, json.dumps(spec, sort_keys=True),
                     client, now))
                new_rows = 0
                for position, (key, point, _request) in \
                        enumerate(entries):
                    cursor = self._conn.execute(
                        "INSERT OR IGNORE INTO runs "
                        "(key, point, status, created, updated) "
                        "VALUES (?, ?, 'pending', ?, ?)",
                        (key, json.dumps(point, sort_keys=True),
                         now, now))
                    new_rows += cursor.rowcount
                    self._conn.execute(
                        "INSERT INTO job_runs (job_id, position, "
                        "run_key) VALUES (?, ?, ?)",
                        (job_id, position, key))
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        self.record_event("store", "job_submitted", job_id=job_id,
                          rows=len(entries), new_rows=new_rows,
                          client=client)
        return job_id, new_rows

    # -- worker protocol ---------------------------------------------------

    def claim(self, owner, limit=1, lease_s=DEFAULT_LEASE_S):
        """Atomically claim up to ``limit`` runnable rows for ``owner``.

        Compare-and-swap under ``BEGIN IMMEDIATE``: a row is runnable
        when ``pending``, or ``claimed`` with an expired lease (its
        worker died mid-run).  Returns the claimed rows as
        ``(key, point_dict)`` pairs; attempts are incremented here so
        abandoned claims are visible in the error columns.
        """
        now = time.time()
        claimed = []
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                rows = self._conn.execute(
                    "SELECT key, point FROM runs WHERE "
                    "status = 'pending' OR "
                    "(status = 'claimed' AND claim_expires < ?) "
                    "ORDER BY created LIMIT ?", (now, limit)).fetchall()
                for row in rows:
                    cursor = self._conn.execute(
                        "UPDATE runs SET status = 'claimed', "
                        "owner = ?, attempts = attempts + 1, "
                        "updated = ?, claim_expires = ? "
                        "WHERE key = ? AND (status = 'pending' OR "
                        "(status = 'claimed' AND claim_expires < ?))",
                        (owner, now, now + lease_s, row["key"], now))
                    if cursor.rowcount:
                        claimed.append((row["key"],
                                        json.loads(row["point"])))
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return claimed

    def renew(self, keys, owner, lease_s=DEFAULT_LEASE_S):
        """Extend the lease on rows ``owner`` still holds."""
        now = time.time()
        with self._lock:
            for key in keys:
                self._conn.execute(
                    "UPDATE runs SET claim_expires = ?, updated = ? "
                    "WHERE key = ? AND owner = ? AND status = 'claimed'",
                    (now + lease_s, now, key, owner))

    def complete(self, key, result, code_fingerprint=None,
                 config_fingerprint=None):
        """Mark one row ``done`` with its pickled result + provenance."""
        now = time.time()
        with self._lock:
            self._conn.execute(
                "UPDATE runs SET status = 'done', updated = ?, "
                "claim_expires = NULL, error = NULL, result = ?, "
                "code_fingerprint = ?, config_fingerprint = ? "
                "WHERE key = ?",
                (now, pickle.dumps(result, pickle.HIGHEST_PROTOCOL),
                 code_fingerprint, config_fingerprint, key))

    def fail(self, key, error, code_fingerprint=None):
        """Mark one row ``failed`` with its error column filled in."""
        now = time.time()
        with self._lock:
            self._conn.execute(
                "UPDATE runs SET status = 'failed', updated = ?, "
                "claim_expires = NULL, error = ?, "
                "code_fingerprint = ? WHERE key = ?",
                (now, str(error)[:2000], code_fingerprint, key))

    def release(self, keys, owner=None):
        """Return claimed rows to ``pending`` (crashed/abandoned work)."""
        now = time.time()
        with self._lock:
            for key in keys:
                if owner is None:
                    self._conn.execute(
                        "UPDATE runs SET status = 'pending', "
                        "owner = NULL, claim_expires = NULL, "
                        "updated = ? WHERE key = ? AND "
                        "status = 'claimed'", (now, key))
                else:
                    self._conn.execute(
                        "UPDATE runs SET status = 'pending', "
                        "owner = NULL, claim_expires = NULL, "
                        "updated = ? WHERE key = ? AND owner = ? AND "
                        "status = 'claimed'", (now, key, owner))

    def recover_dead_owners(self):
        """Startup sweep: re-queue rows whose owner is a dead local pid.

        Lease expiry alone would also recover them — this just skips
        the wait when the previous daemon on *this* host was killed.
        Returns the number of rows released.
        """
        released = 0
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, owner FROM runs WHERE status = 'claimed'"
            ).fetchall()
        for row in rows:
            if owner_pid_alive(row["owner"]) is False:
                self.release([row["key"]])
                released += 1
        if released:
            self.record_event("store", "dead_owner_recovery",
                              released=released)
        return released

    # -- queries -----------------------------------------------------------

    def job_spec(self, job_id):
        with self._lock:
            row = self._conn.execute(
                "SELECT spec FROM jobs WHERE job_id = ?",
                (job_id,)).fetchone()
        if row is None:
            raise KeyError("unknown job {!r}".format(job_id))
        return json.loads(row["spec"])

    def job_status(self, job_id):
        """``{status: count}`` plus totals for one job."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT r.status AS status, COUNT(*) AS n "
                "FROM job_runs j JOIN runs r ON r.key = j.run_key "
                "WHERE j.job_id = ? GROUP BY r.status",
                (job_id,)).fetchall()
        if not rows:
            raise KeyError("unknown job {!r}".format(job_id))
        counts = {status: 0 for status in
                  ("pending", "claimed", "done", "failed")}
        for row in rows:
            counts[row["status"]] = row["n"]
        total = sum(counts.values())
        counts["total"] = total
        counts["finished"] = counts["done"] + counts["failed"]
        return counts

    def job_rows(self, job_id):
        """Ordered full rows for one job (results still pickled)."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT j.position AS position, r.* "
                "FROM job_runs j JOIN runs r ON r.key = j.run_key "
                "WHERE j.job_id = ? ORDER BY j.position",
                (job_id,)).fetchall()
        if not rows:
            raise KeyError("unknown job {!r}".format(job_id))
        return rows

    def job_results(self, job_id):
        """``[(position, point, status, result_or_None, error)]``."""
        out = []
        for row in self.job_rows(job_id):
            result = (pickle.loads(row["result"])
                      if row["result"] is not None else None)
            out.append((row["position"], json.loads(row["point"]),
                        row["status"], result, row["error"]))
        return out

    def counts(self):
        """Store-wide ``{status: count}``."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM runs "
                "GROUP BY status").fetchall()
        counts = {status: 0 for status in
                  ("pending", "claimed", "done", "failed")}
        for row in rows:
            counts[row["status"]] = row["n"]
        return counts

    def runnable_count(self):
        now = time.time()
        with self._lock:
            row = self._conn.execute(
                "SELECT COUNT(*) AS n FROM runs WHERE "
                "status = 'pending' OR (status = 'claimed' AND "
                "claim_expires < ?)", (now,)).fetchone()
        return row["n"]

    # -- events (journal bridge) -------------------------------------------

    def record_event(self, source, event, **detail):
        """Append one event row (engine-journal bridge + lifecycle)."""
        payload = json.dumps(detail, default=str) if detail else None
        with self._lock:
            self._conn.execute(
                "INSERT INTO events (t, source, event, detail) "
                "VALUES (?, ?, ?, ?)",
                (time.time(), source, event, payload))

    def events_tail(self, count=20):
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM events ORDER BY seq DESC LIMIT ?",
                (count,)).fetchall()
        return [dict(row) for row in reversed(rows)]


def default_store_path(cache_root=None):
    """``<cache root>/store.db`` (the engine cache's root by default)."""
    if cache_root is None:
        from .engine import get_engine
        cache_root = get_engine().cache.root
    return os.path.join(str(cache_root), "store.db")
