"""Top-level simulation driver.

``run(system, benchmark)`` builds the workload, assembles the system and
executes it, returning a :class:`repro.sim.results.RunResult`.  Results
are memoised in-process — every experiment that needs the same (system,
benchmark, size, config) triple shares one simulation — and each point
is routed through the process-wide :class:`repro.sim.engine`
:class:`~repro.sim.engine.ExecutionEngine`, which adds a persistent
on-disk result cache and, for batch submitters (``prefetch``, sweeps,
the benchmark harness), process-pool parallelism.
"""

from functools import lru_cache

from ..common.config import small_config
from ..common.errors import ConfigError
from ..systems import SYSTEMS
from ..workloads import registry
from .engine import RunRequest, get_engine

#: The three systems compared in Figure 6 (FUSION-Dx is studied
#: separately in Table 5).
FIGURE6_SYSTEMS = ("SCRATCH", "SHARED", "FUSION")


def run(system_name, benchmark, size="full", config=None):
    """Run one system on one benchmark; returns a :class:`RunResult`."""
    if config is None:
        config = small_config()
    return _run_cached(system_name, benchmark, size, config)


@lru_cache(maxsize=None)
def _run_cached(system_name, benchmark, size, config):
    if system_name not in SYSTEMS:
        raise ConfigError(
            "unknown system {!r}; expected one of {}".format(
                system_name, ", ".join(SYSTEMS)))
    return get_engine().run_one(
        RunRequest(system_name, benchmark, size, config))


def run_all(benchmark, size="full", config=None, systems=FIGURE6_SYSTEMS):
    """Run several systems on one benchmark; returns {system: result}."""
    return {name: run(name, benchmark, size, config) for name in systems}


def clear_cache():
    """Drop every memoised result (used by tests that mutate global models).

    Clears the in-process result memo, the workload-build caches in
    :mod:`repro.workloads.registry`, and the disk-cache layer's
    in-memory index; it also bumps the engine's cache epoch so the
    *on-disk* store cannot serve results computed before the mutation
    (fresh processes, whose globals are pristine, still hit it).
    """
    _run_cached.cache_clear()
    registry.clear_caches()
    get_engine().bump_epoch()
