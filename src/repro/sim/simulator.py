"""Top-level simulation driver.

``run(system, benchmark)`` builds the workload, assembles the system and
executes it, returning a :class:`repro.sim.results.RunResult`.  Results
are memoised — every experiment that needs the same (system, benchmark,
size, config) triple shares one simulation, which is what makes the
full table/figure suite affordable.
"""

from functools import lru_cache

from ..common.config import small_config
from ..common.errors import ConfigError
from ..systems import SYSTEMS
from ..workloads.registry import build_workload

#: The three systems compared in Figure 6 (FUSION-Dx is studied
#: separately in Table 5).
FIGURE6_SYSTEMS = ("SCRATCH", "SHARED", "FUSION")


def run(system_name, benchmark, size="full", config=None):
    """Run one system on one benchmark; returns a :class:`RunResult`."""
    if config is None:
        config = small_config()
    return _run_cached(system_name, benchmark, size, config)


@lru_cache(maxsize=None)
def _run_cached(system_name, benchmark, size, config):
    if system_name not in SYSTEMS:
        raise ConfigError(
            "unknown system {!r}; expected one of {}".format(
                system_name, ", ".join(SYSTEMS)))
    workload = build_workload(benchmark, size)
    system = SYSTEMS[system_name](config, workload)
    return system.run()


def run_all(benchmark, size="full", config=None, systems=FIGURE6_SYSTEMS):
    """Run several systems on one benchmark; returns {system: result}."""
    return {name: run(name, benchmark, size, config) for name in systems}


def clear_cache():
    """Drop memoised results (used by tests that mutate global models)."""
    _run_cached.cache_clear()
