"""Design-space sweep utilities.

The simulator exists to make studies like Figure 7 cheap; this module
makes them one-liners.  A sweep is a grid of configuration transforms
evaluated over systems and benchmarks, returning an
:class:`ExperimentTable` plus the raw results for programmatic use.

Example::

    from repro.sim.sweep import sweep, lease_axis, config_axis

    table, results = sweep(
        systems=("FUSION",),
        benchmarks=("filter",),
        axes=[lease_axis(100, 500, 2000)],
        metrics=("accel_cycles", "energy_uj"),
    )
"""

from dataclasses import replace

from ..common.config import CacheConfig, small_config
from ..common.units import KB
from .engine import RunRequest, get_engine
from .reporting import ExperimentTable, result_cells

#: Metric extractors available to sweeps.
METRICS = {
    "accel_cycles": lambda r: r.accel_cycles,
    "total_cycles": lambda r: r.total_cycles,
    "energy_uj": lambda r: r.energy.total_pj / 1e6,
    "cache_compute_ratio": lambda r: r.energy.cache_to_compute_ratio(),
    "l1x_misses": lambda r: r.stat("l1x.misses"),
    "dma_kb": lambda r: r.dma_kb,
    "axc_link_msgs": lambda r: r.axc_link_msgs,
    "link_utilization": lambda r: r.link_utilization(),
    "edp": lambda r: r.edp,
}


def config_axis(name, transforms):
    """A sweep axis: ``transforms`` maps point-label -> config transform
    (a callable ``config -> config``)."""
    return (name, list(transforms.items()))


def lease_axis(*leases):
    """Axis over ACC lease lengths."""
    return config_axis("lease", {
        str(lease): (lambda cfg, value=lease: cfg.with_lease(value))
        for lease in leases})


def l0x_axis(*sizes_kb):
    """Axis over L0X capacities (kB)."""

    def transform(config, size_kb):
        tile = replace(config.tile, l0x=CacheConfig(
            size_kb * KB, 4, hit_latency=1, timestamp_bits=32))
        return replace(config, tile=tile)

    return config_axis("l0x_kb", {
        str(size): (lambda cfg, value=size: transform(cfg, value))
        for size in sizes_kb})


def l1x_axis(*sizes_kb):
    """Axis over shared-L1X capacities (kB)."""

    def transform(config, size_kb):
        tile = replace(config.tile, l1x=CacheConfig(
            size_kb * KB, 8, banks=16,
            hit_latency=4 + (size_kb // 128), timestamp_bits=32))
        return replace(config, tile=tile)

    return config_axis("l1x_kb", {
        str(size): (lambda cfg, value=size: transform(cfg, value))
        for size in sizes_kb})


def _apply_policy_spec(config, spec):
    """Turn one ``--policy`` spec string into a POLICY config.

    Specs: ``static:KEY`` (KEY is a strategy key, e.g. ``fusion`` or
    ``fusion:lease=250``), ``bandit`` / ``bandit:EPSILON``, and
    ``ucb`` / ``ucb:C``.
    """
    kind, _, arg = spec.partition(":")
    if kind == "static":
        return config.with_policy(selector="static",
                                  static_strategy=arg or "fusion")
    if kind == "bandit":
        kwargs = {"selector": "bandit"}
        if arg:
            kwargs["epsilon"] = float(arg)
        return config.with_policy(**kwargs)
    if kind == "ucb":
        kwargs = {"selector": "ucb"}
        if arg:
            kwargs["ucb_c"] = float(arg)
        return config.with_policy(**kwargs)
    from ..common.errors import ConfigError
    raise ConfigError(
        "unknown policy spec {!r}; expected static:KEY, bandit[:eps] "
        "or ucb[:c]".format(spec))


def policy_axis(*specs):
    """Axis over policy selectors (``static:fusion``, ``bandit``, ...).

    Points run as the POLICY system; combine with
    ``systems=("POLICY",)``.
    """
    return config_axis("policy", {
        spec: (lambda cfg, value=spec: _apply_policy_spec(cfg, value))
        for spec in specs})


def _grid(axes):
    """Yield (labels_tuple, transforms_tuple) over the axis product."""
    if not axes:
        yield (), ()
        return
    name, points = axes[0]
    for label, transform in points:
        for labels, transforms in _grid(axes[1:]):
            yield (label,) + labels, (transform,) + transforms


def grid_points(systems, benchmarks, axes, size="small",
                base_config=None):
    """Materialise the axis product as engine requests.

    Returns ``(points, requests)`` where ``points`` is a list of
    ``(system, benchmark, labels)`` tuples aligned with ``requests``.
    Shared by :func:`sweep` and the service's serializable job specs
    (:mod:`repro.sim.jobs`), so a daemon-expanded grid is bit-identical
    to the one a direct ``sweep()`` call would submit.
    """
    base_config = base_config or small_config()
    points, requests = [], []
    for system in systems:
        for benchmark in benchmarks:
            for labels, transforms in _grid(axes):
                config = base_config
                for transform in transforms:
                    config = transform(config)
                config = replace(config, name="sweep:" + ":".join(
                    labels) if labels else config.name)
                points.append((system, benchmark, labels))
                requests.append(RunRequest(system, benchmark, size,
                                           config))
    return points, requests


def sweep(systems, benchmarks, axes, metrics=("accel_cycles",
                                              "energy_uj"),
          size="small", base_config=None, strict=True, timeout=None):
    """Run the grid; returns ``(ExperimentTable, {key: RunResult})``.

    ``key`` is ``(system, benchmark) + axis_labels``.  With
    ``strict=False`` a point the engine could not complete (worker
    crash past the retry budget, per-run timeout) becomes a
    :class:`~repro.sim.results.FailedResult` in ``results`` and a
    ``FAILED`` hole in the table instead of aborting the whole grid —
    a 200-point overnight sweep should not die at point 73.
    """
    for metric in metrics:
        if metric not in METRICS:
            raise KeyError("unknown metric {!r}; choose from {}".format(
                metric, ", ".join(sorted(METRICS))))
    axis_names = [name for name, _ in axes]
    table = ExperimentTable(
        "Sweep", "design-space sweep (size={})".format(size),
        ["System", "Benchmark"] + axis_names + list(metrics))

    # Materialise the whole axis product first and submit it to the
    # execution engine as one batch — deduplicated, disk-cached and
    # fanned out over REPRO_JOBS workers — then fill the table from
    # the returned (order-preserving) results.
    points, requests = grid_points(systems, benchmarks, axes, size,
                                   base_config)
    run_results = get_engine().run_batch(requests, strict=strict,
                                         timeout=timeout)

    results = {}
    extractors = [METRICS[m] for m in metrics]
    for (system, benchmark, labels), result in zip(points, run_results):
        results[(system, benchmark) + labels] = result
        table.add_row(system, benchmark, *labels,
                      *result_cells(result, extractors))
    return table, results
