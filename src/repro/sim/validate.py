"""Post-run consistency validation.

A simulator's statistics are only as trustworthy as their internal
consistency.  :func:`validate` cross-checks a :class:`RunResult` against
the conservation laws the models must obey — access accounting, byte/flit
arithmetic, energy-component coverage — and returns a list of violation
strings (empty = clean).  The test suite runs it on every system; users
can run it on their own configurations via ``check_or_raise``.
"""

from ..common.errors import SimulationError
from ..common.units import FLIT_SIZE


def _close(a, b, tolerance=1e-6):
    return abs(a - b) <= tolerance * max(1.0, abs(a), abs(b))


def validate(result):
    """Return a list of consistency-violation descriptions."""
    violations = []
    stats = result.stats

    def stat(name):
        return stats.get(name, 0)

    # -- cycles are sane ----------------------------------------------------
    if result.accel_cycles <= 0:
        violations.append("non-positive accelerator cycle count")
    if result.total_cycles < result.accel_cycles:
        violations.append("total cycles below accelerator cycles")

    # -- per-L0X hit/miss accounting -----------------------------------------
    axc = 0
    while "l0x.axc{}.accesses".format(axc) in stats:
        prefix = "l0x.axc{}.".format(axc)
        accesses = stat(prefix + "accesses")
        hits = stat(prefix + "hits")
        misses = stat(prefix + "misses")
        if hits + misses != accesses:
            violations.append(
                "axc{}: hits({}) + misses({}) != accesses({})".format(
                    axc, hits, misses, accesses))
        axc += 1

    # -- L1X accounting --------------------------------------------------------
    l1x_hits = stat("l1x.hits")
    l1x_misses = stat("l1x.misses")
    epochs = stat("l1x.read_epochs") + stat("l1x.write_epochs")
    if epochs and l1x_hits + l1x_misses != epochs:
        violations.append(
            "L1X epochs({}) != hits({}) + misses({})".format(
                epochs, l1x_hits, l1x_misses))

    # -- link byte/flit arithmetic ----------------------------------------------
    for link in ("axc_l1x", "l1x_l2", "fwd"):
        total_bytes = (stat("link.{}.msg_bytes".format(link))
                       + stat("link.{}.data_bytes".format(link)))
        flits = stat("link.{}.flits".format(link))
        if flits and not _close(flits, -(-total_bytes // FLIT_SIZE),
                                tolerance=0.01):
            violations.append(
                "link {}: {} flits vs {} bytes".format(
                    link, flits, total_bytes))

    # -- DMA byte accounting ------------------------------------------------------
    dma_blocks = stat("dma.blocks_in") + stat("dma.blocks_out")
    dma_bytes = stat("dma.bytes_in") + stat("dma.bytes_out")
    if dma_blocks and dma_bytes != dma_blocks * 64:
        violations.append("DMA bytes({}) != 64 * blocks({})".format(
            dma_bytes, dma_blocks))

    # -- energy components are non-negative and cover the total --------------------
    for name, value in result.energy.components.items():
        if value < 0:
            violations.append(
                "negative energy component {}: {}".format(name, value))
    if result.energy.total_pj < 0:
        violations.append("negative total energy")

    # -- protocol safety nets stayed quiet -------------------------------------------
    if stat("l1x.fwd_misses") > stat("mesi.fwd_to_tile"):
        violations.append("more forward misses than forwards")

    return violations


def check_or_raise(result):
    """Raise :class:`SimulationError` when validation fails."""
    violations = validate(result)
    if violations:
        raise SimulationError(
            "inconsistent run result:\n  " + "\n  ".join(violations))
    return result
