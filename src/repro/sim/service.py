"""Long-lived sweep service: many clients, one warm result store.

``fusion-sim serve`` turns the batch engine into a daemon.  Clients
connect over TCP and speak newline-delimited JSON (one request object
per line, one response object — or a ``watch`` stream — back):

* ``{"op": "submit", "spec": {...}}`` -> ``{"ok": true, "job_id": ..}``
* ``{"op": "status", "job_id": ..}``  -> per-status row counts
* ``{"op": "watch", "job_id": ..}``   -> streamed status lines until
  the job finishes (the poll-free way to wait)
* ``{"op": "fetch", "job_id": ..}``   -> every row: point, status,
  spec metrics, exported result or error columns
* ``{"op": "ping"}`` / ``{"op": "counts"}`` / ``{"op": "shutdown"}``

Execution is a claim loop over the durable
:class:`~repro.sim.store.ExperimentStore`: the worker claims runnable
rows with compare-and-swap leases, rebuilds their
:class:`RunRequest`\\ s from the stored point JSON, and routes them
through the ordinary :class:`ExecutionEngine` batch path — so the
content-hash result cache, crash recovery, timeouts and the fallback
ladder are all reused unchanged, and a row another process already
computed is a cache hit, not a re-simulation.  Leases are renewed while
a batch runs; a daemon killed ``-9`` mid-grid leaves only ``claimed``
rows behind, which the next daemon re-queues (dead-owner sweep on
startup, lease expiry otherwise) and finishes — resume is a property of
the store, not of daemon memory.

Engine recovery events are bridged into the store's ``events`` table
via :attr:`EngineJournal.on_record`, so ``fetch``/``doctor`` can see
*why* a row needed three attempts even after the daemon restarted.
"""

import asyncio
import json
import os
import socket
import tempfile
import time

from ..common.errors import ConfigError
from . import export
from . import jobs as jobs_mod
from .engine import ExecutionEngine, cache_key, code_fingerprint
from .results import is_failure
from .store import DEFAULT_LEASE_S, ExperimentStore, default_owner
from .sweep import METRICS

#: Max line length (fetch responses carry whole result exports).
_LIMIT = 32 * 1024 * 1024


class SweepService:
    """The daemon: an asyncio socket server plus one store-claim worker."""

    def __init__(self, store, engine=None, host="127.0.0.1", port=0,
                 batch_size=4, lease_s=DEFAULT_LEASE_S, poll_s=0.2,
                 owner=None):
        self.store = store
        self.engine = engine if engine is not None else ExecutionEngine()
        self.host = host
        self.port = port
        self.batch_size = max(1, int(batch_size))
        self.lease_s = float(lease_s)
        self.poll_s = float(poll_s)
        self.owner = owner or default_owner()
        self._server = None
        self._worker = None
        self._wake = None
        self._stopping = None
        # Journal -> store bridge: every engine recovery event (retry,
        # respawn, timeout, corrupt drop, ...) lands in the durable
        # events table with this daemon's owner id attached.
        self.engine.journal.on_record = self._bridge_event

    def _bridge_event(self, record):
        detail = {k: v for k, v in record.items()
                  if k not in ("event", "seq")}
        detail["owner"] = self.owner
        self.store.record_event("engine", record["event"], **detail)

    # -- lifecycle ---------------------------------------------------------

    async def start(self):
        self._wake = asyncio.Event()
        self._stopping = asyncio.Event()
        recovered = self.store.recover_dead_owners()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=_LIMIT)
        self.port = self._server.sockets[0].getsockname()[1]
        self.store.record_event(
            "service", "started", owner=self.owner, host=self.host,
            port=self.port, recovered_rows=recovered)
        self._worker = asyncio.ensure_future(self._worker_loop())
        return self

    async def serve_forever(self):
        await self._stopping.wait()
        await self.stop()

    async def stop(self):
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._worker is not None:
            self._wake.set()
            try:
                await asyncio.wait_for(self._worker, timeout=30.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._worker.cancel()
        self.store.record_event("service", "stopped", owner=self.owner)

    def announce(self, path):
        """Atomically write connection coordinates for clients/tests."""
        payload = {"host": self.host, "port": self.port,
                   "pid": os.getpid(), "owner": self.owner,
                   "store": self.store.path}
        handle = tempfile.NamedTemporaryFile(
            mode="w", dir=os.path.dirname(path) or ".", prefix=".tmp-",
            delete=False)
        with handle as fileobj:
            json.dump(payload, fileobj)
        os.replace(handle.name, path)

    # -- the claim/execute worker ------------------------------------------

    async def _worker_loop(self):
        loop = asyncio.get_event_loop()
        while not self._stopping.is_set():
            claimed = self.store.claim(self.owner, self.batch_size,
                                       self.lease_s)
            if not claimed:
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(),
                                           timeout=self.poll_s)
                except asyncio.TimeoutError:
                    pass
                continue
            await self._run_claimed(loop, claimed)

    async def _run_claimed(self, loop, claimed):
        keys = [key for key, _point in claimed]
        try:
            requests = [jobs_mod.point_request(point)
                        for _key, point in claimed]
        except (ConfigError, KeyError, ValueError) as exc:
            for key in keys:
                self.store.fail(key, "unexpandable point: {!r}"
                                .format(exc), code_fingerprint())
            return
        future = loop.run_in_executor(
            None, lambda: self.engine.run_batch(requests, strict=False))
        # Renew the leases while the batch runs so a slow grid is not
        # stolen by another live worker mid-simulation.
        renew_every = max(self.lease_s / 3.0, 0.5)
        while True:
            done, _pending = await asyncio.wait([future],
                                                timeout=renew_every)
            if done:
                break
            self.store.renew(keys, self.owner, self.lease_s)
        try:
            results = future.result()
        except Exception as exc:
            # strict=False should keep this unreachable; belt-and-braces
            # so one poisoned batch cannot wedge its rows as claimed.
            for key in keys:
                self.store.fail(key, repr(exc), code_fingerprint())
            self.store.record_event("service", "batch_error",
                                    error=repr(exc), rows=len(keys))
            return
        for (key, _point), request, result in zip(claimed, requests,
                                                  results):
            if is_failure(result):
                self.store.fail(key, result.error, code_fingerprint())
            else:
                self.store.complete(
                    key, result,
                    code_fingerprint=code_fingerprint(),
                    config_fingerprint=cache_key(request.normalized()))

    # -- client protocol ---------------------------------------------------

    async def _handle_client(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line.decode("utf-8"))
                    if not isinstance(request, dict):
                        raise ValueError("request must be an object")
                except (ValueError, UnicodeDecodeError) as exc:
                    await self._send(writer, {"ok": False,
                                              "error": repr(exc)})
                    continue
                op = request.get("op")
                if op == "watch":
                    keep_going = await self._op_watch(writer, request)
                else:
                    response = self._dispatch(op, request)
                    await self._send(writer, response)
                    keep_going = op != "shutdown"
                if not keep_going:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _send(self, writer, payload):
        writer.write(json.dumps(payload, default=str).encode("utf-8")
                     + b"\n")
        await writer.drain()

    def _dispatch(self, op, request):
        try:
            if op == "ping":
                return {"ok": True, "owner": self.owner,
                        "store": self.store.path, "t": time.time()}
            if op == "submit":
                job_id, new_rows = self.store.submit(
                    request.get("spec"), client=request.get("client"))
                self._wake.set()
                return {"ok": True, "job_id": job_id,
                        "new_rows": new_rows}
            if op == "status":
                job_id = request.get("job_id")
                counts = self.store.job_status(job_id)
                counts["ok"] = True
                counts["finished_all"] = (
                    counts["finished"] == counts["total"])
                return counts
            if op == "counts":
                counts = self.store.counts()
                counts["ok"] = True
                return counts
            if op == "fetch":
                return self._op_fetch(request)
            if op == "events":
                return {"ok": True, "events": self.store.events_tail(
                    int(request.get("count", 20)))}
            if op == "shutdown":
                self._stopping.set()
                self._wake.set()
                return {"ok": True, "stopping": True}
            return {"ok": False,
                    "error": "unknown op {!r}".format(op)}
        except (ConfigError, KeyError) as exc:
            return {"ok": False, "error": str(exc)}
        except Exception as exc:  # daemon must not die on one request
            return {"ok": False, "error": repr(exc)}

    def _op_fetch(self, request):
        job_id = request.get("job_id")
        spec = self.store.job_spec(job_id)
        extractors = [(name, METRICS[name]) for name in spec["metrics"]]
        rows = []
        for position, point, status, result, error in \
                self.store.job_results(job_id):
            row = {"position": position, "point": point,
                   "status": status, "error": error, "metrics": None,
                   "result": None}
            if result is not None and not is_failure(result):
                row["metrics"] = {name: extract(result)
                                  for name, extract in extractors}
                row["result"] = export.result_to_dict(
                    result, include_stats=bool(
                        request.get("include_stats")))
            rows.append(row)
        return {"ok": True, "job_id": job_id, "spec": spec,
                "rows": rows}

    async def _op_watch(self, writer, request):
        """Stream status snapshots until the job finishes."""
        job_id = request.get("job_id")
        interval = max(0.05, float(request.get("interval", 0.2)))
        while True:
            try:
                counts = self.store.job_status(job_id)
            except KeyError as exc:
                await self._send(writer, {"ok": False,
                                          "error": str(exc)})
                return True
            counts["ok"] = True
            counts["finished_all"] = (
                counts["finished"] == counts["total"])
            await self._send(writer, counts)
            if counts["finished_all"]:
                return True
            await asyncio.sleep(interval)


class ServiceClient:
    """Blocking line-protocol client (the CLI's and tests' view)."""

    def __init__(self, host="127.0.0.1", port=None, timeout=30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = None
        self._file = None

    @classmethod
    def from_announce(cls, path, timeout=30.0):
        with open(path) as fileobj:
            info = json.load(fileobj)
        return cls(info["host"], info["port"], timeout)

    def _connect(self):
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout)
            self._file = self._sock.makefile("rwb")
        return self._file

    def close(self):
        if self._sock is not None:
            try:
                self._file.close()
                self._sock.close()
            except OSError:
                pass
            self._sock = self._file = None

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    def _read_line(self):
        line = self._file.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        return json.loads(line.decode("utf-8"))

    def request(self, payload):
        stream = self._connect()
        stream.write(json.dumps(payload).encode("utf-8") + b"\n")
        stream.flush()
        return self._read_line()

    def _checked(self, payload):
        response = self.request(payload)
        if not response.get("ok"):
            raise RuntimeError("service error: {}".format(
                response.get("error", "unknown")))
        return response

    def ping(self):
        return self._checked({"op": "ping"})

    def submit(self, spec, client=None):
        return self._checked({"op": "submit", "spec": spec,
                              "client": client})["job_id"]

    def status(self, job_id):
        return self._checked({"op": "status", "job_id": job_id})

    def counts(self):
        return self._checked({"op": "counts"})

    def fetch(self, job_id, include_stats=False):
        return self._checked({"op": "fetch", "job_id": job_id,
                              "include_stats": include_stats})

    def events(self, count=20):
        return self._checked({"op": "events", "count": count})["events"]

    def shutdown(self):
        return self._checked({"op": "shutdown"})

    def wait(self, job_id, timeout=300.0, interval=0.2):
        """Stream ``watch`` updates until the job finishes; returns the
        final status counts."""
        stream = self._connect()
        stream.write(json.dumps(
            {"op": "watch", "job_id": job_id,
             "interval": interval}).encode("utf-8") + b"\n")
        stream.flush()
        deadline = time.monotonic() + timeout
        self._sock.settimeout(max(1.0, interval * 10))
        try:
            while True:
                if time.monotonic() > deadline:
                    raise TimeoutError(
                        "job {} did not finish within {:g}s"
                        .format(job_id, timeout))
                try:
                    counts = self._read_line()
                except socket.timeout:
                    continue
                if not counts.get("ok"):
                    raise RuntimeError("service error: {}".format(
                        counts.get("error", "unknown")))
                if counts.get("finished_all"):
                    return counts
        finally:
            self._sock.settimeout(self.timeout)


async def _serve_async(service, announce=None):
    await service.start()
    if announce:
        service.announce(announce)
    print("fusion-sim service on {}:{} (store {}, owner {})".format(
        service.host, service.port, service.store.path, service.owner),
        flush=True)
    await service.serve_forever()


def serve(store_path, host="127.0.0.1", port=0, batch_size=4,
          lease_s=DEFAULT_LEASE_S, poll_s=0.2, announce=None,
          engine=None):
    """Blocking entry point for ``fusion-sim serve``."""
    store = ExperimentStore(store_path)
    service = SweepService(store, engine=engine, host=host, port=port,
                           batch_size=batch_size, lease_s=lease_s,
                           poll_s=poll_s)
    try:
        asyncio.run(_serve_async(service, announce))
    except KeyboardInterrupt:
        pass
    finally:
        store.close()
    return 0
