"""Experiment definitions — one function per table/figure in the paper.

Each function runs whatever simulations it needs (memoised by the
driver) and returns an :class:`ExperimentTable` whose rows mirror the
paper's.  The benchmark harness (``benchmarks/``) prints these and
asserts the headline *shapes*; EXPERIMENTS.md records paper-vs-measured.
"""

import math
import warnings

from ..common.config import WritePolicy, large_config, small_config
from ..workloads.characterize import characterize, working_set_kb
from ..workloads.registry import BENCHMARKS, LABELS, build_workload
from .engine import RunRequest, get_engine
from .reporting import ExperimentTable
from .simulator import FIGURE6_SYSTEMS, run


def _geomean(values):
    values = list(values)
    positives = [v for v in values if v > 0]
    if not positives:
        if values:
            warnings.warn(
                "geomean of all-non-positive input {!r}; returning 0.0"
                .format(values), RuntimeWarning, stacklevel=2)
        return 0.0
    return math.exp(sum(math.log(v) for v in positives) / len(positives))


# ---------------------------------------------------------------------------
# Prefetch: each table/figure submits its whole grid up front
# ---------------------------------------------------------------------------
#
# Every experiment below knows its simulation grid before it renders a
# single row, so it hands the full batch to the execution engine first
# (deduplicated, disk-cached, fanned out over REPRO_JOBS workers) and
# then assembles the table from what are now all cache hits.

def _grid_figure6(size, benchmarks=BENCHMARKS):
    return [RunRequest(system, name, size)
            for name in benchmarks for system in FIGURE6_SYSTEMS]


def _grid_fusion(size, benchmarks=BENCHMARKS):
    return [RunRequest("FUSION", name, size) for name in benchmarks]


def _grid_scratch(size, benchmarks=BENCHMARKS):
    return [RunRequest("SCRATCH", name, size) for name in benchmarks]


def _grid_table4(size, benchmarks=BENCHMARKS):
    wb_config = small_config()
    wt_config = wb_config.with_l0x_write_policy(WritePolicy.WRITE_THROUGH)
    return [RunRequest("FUSION", name, size, config)
            for name in benchmarks for config in (wb_config, wt_config)]


def _grid_table5(size, benchmarks=("fft", "tracking")):
    return [RunRequest(system, name, size)
            for name in benchmarks for system in ("FUSION", "FUSION-Dx")]


def _grid_figure7(size, benchmarks=BENCHMARKS):
    return [RunRequest("FUSION", name, size, config)
            for name in benchmarks
            for config in (small_config(), large_config())]


def _grid_policy(size, benchmarks=BENCHMARKS):
    # Lazy import: repro.policy imports this module's engine pathway.
    from ..policy.engine import policy_grid
    return policy_grid(size, benchmarks)


#: Simulation grid of each experiment that runs the simulator (table1
#: only characterises traces; table2 echoes the config).
EXPERIMENT_GRIDS = {
    "table3": _grid_fusion,
    "table4": _grid_table4,
    "table5": _grid_table5,
    "table6": _grid_fusion,
    "fig6a": _grid_figure6,
    "fig6b": _grid_figure6,
    "fig6c": _grid_figure6,
    "fig6d": _grid_scratch,
    "fig7": _grid_figure7,
    "headline": _grid_figure6,
    "policy": _grid_policy,
}


def _prefetch(requests):
    """Submit one experiment's grid as a single engine batch."""
    if requests:
        get_engine().run_batch(requests)


def prefetch(size="full", names=None, benchmarks=None):
    """Warm the engine's caches for the named experiments in one batch.

    ``names`` defaults to every simulating experiment; ``benchmarks``
    overrides each experiment's default benchmark list.  Returns the
    engine's aggregate telemetry snapshot after the batch, so callers
    (e.g. the benchmark harness) can report hit/miss counts.
    """
    names = list(EXPERIMENT_GRIDS) if names is None else list(names)
    requests = []
    for name in names:
        grid = EXPERIMENT_GRIDS[name]
        requests.extend(grid(size) if benchmarks is None
                        else grid(size, benchmarks))
    _prefetch(requests)
    return get_engine().telemetry.snapshot()


# ---------------------------------------------------------------------------
# Table 1: accelerator characteristics
# ---------------------------------------------------------------------------

def table1(size="full", benchmarks=BENCHMARKS):
    table = ExperimentTable(
        "Table 1", "Accelerator characteristics",
        ["Benchmark", "Function", "%Time", "%INT", "%FP", "%LD", "%ST",
         "MLP", "%SHR", "LT"])
    for name in benchmarks:
        workload = build_workload(name, size)
        for profile in characterize(workload):
            table.add_row(LABELS[name], profile.name, profile.time_pct,
                          profile.int_pct, profile.fp_pct, profile.ld_pct,
                          profile.st_pct, profile.mlp, profile.shr_pct,
                          profile.lease)
    table.add_note("%Time is the share of dynamic operations "
                   "(the paper profiled wall-clock on an i5).")
    return table


# ---------------------------------------------------------------------------
# Table 3: accelerator execution metrics (FUSION)
# ---------------------------------------------------------------------------

def table3(size="full", benchmarks=BENCHMARKS):
    table = ExperimentTable(
        "Table 3", "Accelerator execution metrics (FUSION)",
        ["Benchmark", "Cache/Compute", "Function", "KCyc", "LT", "%En"])
    _prefetch(_grid_fusion(size, benchmarks))
    for name in benchmarks:
        result = run("FUSION", name, size)
        workload = build_workload(name, size)
        leases = {t.name: t.lease_time for t in workload.invocations}
        functions = result.function_names()
        total_energy = sum(result.invocation_energy_pj(f)
                           for f in functions) or 1.0
        ratio = result.energy.cache_to_compute_ratio()
        for function in functions:
            table.add_row(
                LABELS[name], ratio, function,
                result.invocation_cycles(function) / 1000.0,
                leases.get(function, "-"),
                100.0 * result.invocation_energy_pj(function)
                / total_energy)
    return table


# ---------------------------------------------------------------------------
# Table 4: write-through vs writeback at the L0X
# ---------------------------------------------------------------------------

def table4(size="full", benchmarks=BENCHMARKS):
    table = ExperimentTable(
        "Table 4", "L0X write policy: bandwidth in flits (8 B/flit)",
        ["Benchmark", "Write-Through", "Writeback", "%DirtyBlocks",
         "WT/WB"])
    wb_config = small_config()
    wt_config = wb_config.with_l0x_write_policy(WritePolicy.WRITE_THROUGH)
    _prefetch([RunRequest("FUSION", name, size, config)
               for name in benchmarks for config in (wb_config, wt_config)])
    for name in benchmarks:
        wb = run("FUSION", name, size, wb_config)
        wt = run("FUSION", name, size, wt_config)
        workload = build_workload(name, size)
        all_blocks = workload.working_set_blocks()
        dirty = set()
        for trace in workload.invocations:
            dirty |= trace.dirty_blocks()
        pct_dirty = (100.0 * len(dirty) / len(all_blocks)
                     if all_blocks else 0.0)
        ratio = (wt.write_flits / wb.write_flits
                 if wb.write_flits else float("inf"))
        table.add_row(LABELS[name], wt.write_flits, wb.write_flits,
                      pct_dirty, ratio)
    table.add_note("Lesson 5: write-through multiplies store traffic on "
                   "the L0X->L1X link by orders of magnitude.")
    return table


# ---------------------------------------------------------------------------
# Table 5: FUSION-Dx write forwarding
# ---------------------------------------------------------------------------

def table5(size="full", benchmarks=("fft", "tracking")):
    table = ExperimentTable(
        "Table 5", "Inter-AXC forwarded blocks and % energy reduction",
        ["Benchmark", "#FWD Blocks", "AXC Cache", "AXC Link"])
    _prefetch(_grid_table5(size, benchmarks))
    for name in benchmarks:
        base = run("FUSION", name, size)
        dx = run("FUSION-Dx", name, size)

        def tile_cache_pj(result):
            return (result.energy["local"] + result.energy["l1x"])

        def tile_link_pj(result):
            return (result.energy["link_axc_l1x_msg"]
                    + result.energy["link_axc_l1x_data"]
                    + result.energy["link_fwd"])

        cache_saving = 100.0 * (1 - tile_cache_pj(dx) / tile_cache_pj(base))
        link_saving = 100.0 * (1 - tile_link_pj(dx) / tile_link_pj(base))
        table.add_row(LABELS[name], dx.forwarded_lines,
                      "{:.1f}%".format(cache_saving),
                      "{:.1f}%".format(link_saving))
    return table


# ---------------------------------------------------------------------------
# Table 6: address translation lookups
# ---------------------------------------------------------------------------

def table6(size="full", benchmarks=BENCHMARKS):
    table = ExperimentTable(
        "Table 6", "Virtual memory table lookup counts (FUSION)",
        ["Benchmark", "AX-TLB", "AX-RMAP"])
    _prefetch(_grid_fusion(size, benchmarks))
    for name in benchmarks:
        result = run("FUSION", name, size)
        table.add_row(LABELS[name], result.ax_tlb_lookups,
                      result.ax_rmap_lookups)
    table.add_note("AX-TLB sits on the L1X miss path; AX-RMAP is touched "
                   "only by directory-forwarded host requests.")
    return table


# ---------------------------------------------------------------------------
# Figure 6a: energy breakdown
# ---------------------------------------------------------------------------

def figure6_energy(size="full", benchmarks=BENCHMARKS):
    table = ExperimentTable(
        "Figure 6a", "Dynamic energy normalised to SCRATCH",
        ["Benchmark", "System", "Total", "Local", "L1X", "L2", "DRAM",
         "LinkTile", "LinkHost", "Compute"])
    _prefetch(_grid_figure6(size, benchmarks))
    for name in benchmarks:
        baseline = run("SCRATCH", name, size)
        for system in FIGURE6_SYSTEMS:
            result = run(system, name, size)
            norm = result.energy.normalized_to(baseline.energy)
            table.add_row(
                LABELS[name], system,
                result.energy.total_pj / baseline.energy.total_pj,
                norm.get("local", 0.0), norm.get("l1x", 0.0),
                norm.get("l2", 0.0), norm.get("dram", 0.0),
                norm.get("link_axc_l1x_msg", 0.0)
                + norm.get("link_axc_l1x_data", 0.0)
                + norm.get("link_fwd", 0.0),
                norm.get("link_l1x_l2", 0.0),
                norm.get("compute", 0.0))
    return table


# ---------------------------------------------------------------------------
# Figure 6b: performance
# ---------------------------------------------------------------------------

def figure6_performance(size="full", benchmarks=BENCHMARKS):
    table = ExperimentTable(
        "Figure 6b", "Cycle time normalised to SCRATCH (lower is better)",
        ["Benchmark", "SCRATCH", "SHARED", "FUSION", "DMA%ofSCRATCH"])
    _prefetch(_grid_figure6(size, benchmarks))
    for name in benchmarks:
        results = {s: run(s, name, size) for s in FIGURE6_SYSTEMS}
        base = results["SCRATCH"].accel_cycles
        dma_pct = (100.0 * results["SCRATCH"].stat("dma.cycles")
                   / base if base else 0.0)
        table.add_row(LABELS[name], 1.0,
                      results["SHARED"].accel_cycles / base,
                      results["FUSION"].accel_cycles / base,
                      dma_pct)
    return table


# ---------------------------------------------------------------------------
# Figure 6c: link traffic
# ---------------------------------------------------------------------------

def figure6_traffic(size="full", benchmarks=BENCHMARKS):
    table = ExperimentTable(
        "Figure 6c", "Link message/data counts",
        ["Benchmark", "System", "AXC->L1X msg", "L1X->AXC data",
         "L1X<->L2 msg", "L1X<->L2 data"])
    _prefetch(_grid_figure6(size, benchmarks))
    for name in benchmarks:
        for system in FIGURE6_SYSTEMS:
            result = run(system, name, size)
            table.add_row(LABELS[name], system,
                          result.axc_link_msgs, result.axc_link_data,
                          result.tile_l2_msgs, result.tile_l2_data)
    return table


# ---------------------------------------------------------------------------
# Figure 6d: working set and DMA traffic
# ---------------------------------------------------------------------------

def figure6_dma(size="full", benchmarks=BENCHMARKS):
    table = ExperimentTable(
        "Figure 6d", "Working set vs oracle-DMA traffic (SCRATCH)",
        ["Benchmark", "WSet(kB)", "DMA(kB)", "#DMA", "DMA/WSet"])
    _prefetch(_grid_scratch(size, benchmarks))
    for name in benchmarks:
        workload = build_workload(name, size)
        wset = working_set_kb(workload)
        result = run("SCRATCH", name, size)
        table.add_row(LABELS[name], wset, result.dma_kb, result.dma_count,
                      result.dma_kb / wset if wset else 0.0)
    return table


# ---------------------------------------------------------------------------
# Figure 7: larger AXC caches
# ---------------------------------------------------------------------------

def figure7(size="full", benchmarks=BENCHMARKS):
    table = ExperimentTable(
        "Figure 7", "LARGE (8K L0X / 256K L1X) vs SMALL (4K / 64K), FUSION",
        ["Benchmark", "Energy L/S", "Cycles L/S", "L1X-miss L/S"])
    small = small_config()
    large = large_config()
    _prefetch([RunRequest("FUSION", name, size, config)
               for name in benchmarks for config in (small, large)])
    for name in benchmarks:
        small_result = run("FUSION", name, size, small)
        large_result = run("FUSION", name, size, large)
        energy_ratio = (large_result.energy.total_pj
                        / small_result.energy.total_pj)
        cycle_ratio = (large_result.accel_cycles
                       / small_result.accel_cycles)
        small_miss = small_result.stat("l1x.misses") or 1
        miss_ratio = large_result.stat("l1x.misses") / small_miss
        table.add_row(LABELS[name], energy_ratio, cycle_ratio, miss_ratio)
    table.add_note("Lesson 7: larger caches raise access energy; only "
                   "benchmarks whose working set newly fits benefit.")
    return table


# ---------------------------------------------------------------------------
# Headline ratios
# ---------------------------------------------------------------------------

#: Benchmarks the paper calls DMA-dominated (SHARED wins these).
DMA_BOUND = ("fft", "disparity", "tracking", "histogram")
#: Small-working-set benchmarks (SCRATCH's scratchpad captures these).
COMPUTE_BOUND = ("adpcm", "susan", "filter")


def headline(size="full"):
    table = ExperimentTable(
        "Headline", "Aggregate speedups/savings vs paper claims",
        ["Metric", "Paper", "Measured"])
    _prefetch(_grid_figure6(size))
    perf, energy = {}, {}
    for name in BENCHMARKS:
        results = {s: run(s, name, size) for s in FIGURE6_SYSTEMS}
        base = results["SCRATCH"]
        perf[name] = {
            s: base.accel_cycles / results[s].accel_cycles
            for s in FIGURE6_SYSTEMS}
        energy[name] = {
            s: base.energy.total_pj / results[s].energy.total_pj
            for s in FIGURE6_SYSTEMS}
    table.add_row("FUSION speedup vs SCRATCH (geomean)", "2.8x-4.3x",
                  "{:.2f}x".format(_geomean(
                      [perf[b]["FUSION"] for b in BENCHMARKS])))
    table.add_row("SHARED speedup, DMA-bound subset", "5.71x",
                  "{:.2f}x".format(_geomean(
                      [perf[b]["SHARED"] for b in DMA_BOUND])))
    table.add_row("SHARED slowdown, small-WSet subset", "0.88x (-14%)",
                  "{:.2f}x".format(_geomean(
                      [perf[b]["SHARED"] for b in COMPUTE_BOUND])))
    table.add_row("FUSION energy saving vs SCRATCH (geomean)", "2.4x-2.5x",
                  "{:.2f}x".format(_geomean(
                      [energy[b]["FUSION"] for b in BENCHMARKS])))
    table.add_row("FUSION energy saving, FFT", "10.6x (SHARED)",
                  "{:.2f}x".format(energy["fft"]["FUSION"]))
    table.add_row("FUSION energy saving, DISP", "7.6x (SHARED)",
                  "{:.2f}x".format(energy["disparity"]["FUSION"]))
    return table


# ---------------------------------------------------------------------------
# Policy: per-invocation strategy selection vs the best static system
# ---------------------------------------------------------------------------

def policy_gap(size="full", benchmarks=BENCHMARKS):
    """Per-kernel gap between static, oracle and bandit selectors.

    For each kernel: the best static system's accelerated-region
    cycles, the oracle's (per-invocation argmin over strategies, see
    :mod:`repro.policy.engine`), the trained bandit's, and the fraction
    of the static-to-oracle gap the bandit closed.
    """
    from ..policy.engine import (evaluate_selectors, gap_closed,
                                 train_bandit)
    table = ExperimentTable(
        "Policy", "Per-invocation coherence policy vs best static",
        ["Benchmark", "Best static", "Static cyc", "Oracle cyc",
         "Bandit cyc", "Oracle gain%", "Gap closed%"])
    _prefetch(_grid_policy(size, benchmarks))
    for name in benchmarks:
        report = evaluate_selectors(name, size)
        trained = train_bandit(name, size)
        best = report["best_static"]
        oracle = report["oracle"]
        bandit = trained["cycles"]
        gain = 100.0 * (best - oracle) / best if best else 0.0
        closed = 100.0 * gap_closed(best, oracle, bandit)
        table.add_row(LABELS[name], report["best_static_key"], best,
                      oracle, bandit, gain, closed)
    table.add_note("Oracle: per-invocation argmin over {scratch, "
                   "shared, fusion, fusion-dx}, interference "
                   "re-simulated; <= best static by construction.")
    table.add_note("Bandit: epsilon-greedy over telemetry contexts "
                   "(function, reuse bucket, footprint bucket), "
                   "trained in-process, greedy evaluation pass.")
    return table


# ---------------------------------------------------------------------------
# Table 2: configuration echo (not an experiment, a reference)
# ---------------------------------------------------------------------------

def table2(config=None):
    config = config or small_config()
    table = ExperimentTable(
        "Table 2", "System parameters",
        ["Component", "Parameters"])
    host = config.host
    tile = config.tile
    table.add_row("Host core", "{}-wide OOO, {} ROB".format(
        host.issue_width, host.rob_entries))
    table.add_row("Host L1", "{}K {}-way, {} cycles".format(
        host.l1.size_bytes // 1024, host.l1.ways, host.l1.hit_latency))
    table.add_row("LLC", "{}M {}-way, {} banks, avg {} cycles".format(
        host.l2_size_bytes // (1024 * 1024), host.l2_ways, host.l2_banks,
        host.l2_avg_latency))
    table.add_row("Scratchpad", "{}K".format(
        tile.scratchpad.size_bytes // 1024))
    table.add_row("L0X", "{}K {}-way".format(
        tile.l0x.size_bytes // 1024, tile.l0x.ways))
    table.add_row("L1X", "{}K {}-way, {} banks".format(
        tile.l1x.size_bytes // 1024, tile.l1x.ways, tile.l1x.banks))
    table.add_row("Links", "AXC-L1X {} pJ/B, L1X-L2 {} pJ/B, "
                  "L0X-L0X {} pJ/B".format(
                      config.link.axc_l1x_pj_per_byte,
                      config.link.l1x_l2_pj_per_byte,
                      config.link.l0x_l0x_pj_per_byte))
    table.add_row("DRAM", "{} ch, {} cycle latency".format(
        config.dram.channels, config.dram.latency))
    return table


ALL_EXPERIMENTS = {
    "table1": table1, "table2": table2, "table3": table3,
    "table4": table4, "table5": table5, "table6": table6,
    "fig6a": figure6_energy, "fig6b": figure6_performance,
    "fig6c": figure6_traffic, "fig6d": figure6_dma,
    "fig7": figure7, "headline": headline, "policy": policy_gap,
}
