"""Run results: everything the experiment layer needs from one simulation."""

from dataclasses import dataclass, field
from typing import ClassVar

from ..common.units import to_kb
from ..energy.accounting import EnergyBreakdown, breakdown_from_stats


def is_failure(result):
    """True when ``result`` is a failure hole, not a real simulation.

    The one guard every downstream consumer (tables, exporters, charts,
    the sweep service) should use before touching :class:`RunResult`
    attributes — a :class:`FailedResult` has no ``energy``, ``stats``
    or cycle counts, only ``error``/``attempts`` provenance.
    """
    return not getattr(result, "ok", True)


@dataclass
class FailedResult:
    """A simulation point the engine could not complete.

    Returned (in place of a :class:`RunResult`) by non-strict batches
    after every recovery path — pool respawn retries, serial fallback —
    was exhausted, or when the point timed out.  Experiment tables and
    sweeps render these as holes instead of dying; ``error`` carries the
    ``repr`` of the final exception and ``attempts`` how many executions
    were tried.
    """

    #: Discriminator mirrored on :class:`RunResult` (``ok = True``).
    ok: ClassVar[bool] = False

    system: str
    benchmark: str
    size: str = "full"
    error: str = ""
    attempts: int = 0
    #: Engine telemetry, same contract as ``RunResult.meta``.
    meta: dict = field(default_factory=dict, compare=False, repr=False)


@dataclass
class RunResult:
    """The outcome of running one system on one workload."""

    ok: ClassVar[bool] = True

    system: str
    benchmark: str
    config_name: str
    accel_cycles: int
    total_cycles: int
    stats: dict = field(default_factory=dict)
    energy: EnergyBreakdown = None
    #: Engine telemetry (wall time, cache source, queue depth, …) —
    #: bookkeeping about *how* the result was obtained, never part of
    #: the simulated outcome, hence excluded from equality.
    meta: dict = field(default_factory=dict, compare=False, repr=False)

    @classmethod
    def from_system(cls, system, accel_cycles, total_cycles,
                    energy_baseline=None):
        """Build a result; ``energy_baseline`` is a stats snapshot taken
        after the host produce phase so the energy breakdown covers only
        the accelerated region (the quantity Figure 6a plots)."""
        snapshot = system.stats.snapshot()
        if energy_baseline:
            accel_delta = system.stats.diff(energy_baseline)
        else:
            accel_delta = snapshot
        return cls(
            system=system.name,
            benchmark=system.workload.benchmark,
            config_name=system.config.name,
            accel_cycles=accel_cycles,
            total_cycles=total_cycles,
            stats=snapshot,
            energy=breakdown_from_stats(accel_delta),
        )

    # -- convenience accessors used by the experiments -------------------------

    def stat(self, name, default=0):
        return self.stats.get(name, default)

    def _prefix_total(self, prefix):
        prefix_dot = prefix + "."
        total = self.stats.get(prefix, 0)
        for key, value in self.stats.items():
            if key.startswith(prefix_dot):
                total += value
        return total

    @property
    def dma_kb(self):
        """Total DMA traffic in kB (Figure 6d's DMA column)."""
        return to_kb(self.stat("dma.bytes_in") + self.stat("dma.bytes_out"))

    @property
    def dma_count(self):
        """Number of DMA transfers issued (Figure 6d's #DMA column)."""
        return int(self.stat("dma.transfers_in")
                   + self.stat("dma.transfers_out"))

    @property
    def total_energy_pj(self):
        return self.energy.total_pj

    @property
    def axc_link_msgs(self):
        """Request messages AXC -> L1X (Figure 6c's MSG series)."""
        return int(self.stat("link.axc_l1x.msgs"))

    @property
    def axc_link_data(self):
        """Data transfers on the AXC <-> L1X link (Figure 6c)."""
        return int(self.stat("link.axc_l1x.data_transfers"))

    @property
    def tile_l2_msgs(self):
        """Messages on the L1X <-> L2 link."""
        return int(self.stat("link.l1x_l2.msgs"))

    @property
    def tile_l2_data(self):
        return int(self.stat("link.l1x_l2.data_transfers"))

    @property
    def write_flits(self):
        """Store-traffic flits on the AXC link (Table 4's columns)."""
        return int(self.stat("link.axc_l1x.write_flits"))

    @property
    def ax_tlb_lookups(self):
        return int(self.stat("ax_tlb.lookups"))

    @property
    def ax_rmap_lookups(self):
        return int(self.stat("ax_rmap.lookups"))

    @property
    def forwarded_lines(self):
        total = 0
        for key, value in self.stats.items():
            if key.startswith("l0x.axc") and key.endswith("lines_forwarded"):
                total += value
        return int(total)

    @property
    def edp(self):
        """Energy-delay product (pJ x cycles) over the accelerated
        region — the figure of merit when neither axis alone decides."""
        return self.energy.total_pj * self.accel_cycles

    def link_utilization(self, link="axc_l1x", flit_bytes=8):
        """Average occupancy of a link over the accelerated region,
        in flits per cycle (1.0 = saturated single-flit link)."""
        total_bytes = (self.stat("link.{}.msg_bytes".format(link))
                       + self.stat("link.{}.data_bytes".format(link)))
        if not self.accel_cycles:
            return 0.0
        return total_bytes / flit_bytes / self.accel_cycles

    def invocation_cycles(self, function_name):
        return self.stat("invocation.{}.cycles".format(function_name))

    def invocation_energy_pj(self, function_name):
        return self.stat("invocation.{}.energy_pj".format(function_name))

    def function_names(self):
        names = []
        for key in self.stats:
            if key.startswith("invocation.") and key.endswith(".count"):
                names.append(key[len("invocation."):-len(".count")])
        return sorted(names)
