"""Plain-text rendering of experiment tables.

Every experiment returns an :class:`ExperimentTable`; this module turns
them into aligned monospace tables (what the benchmark harness prints
under each paper table/figure id).
"""

from dataclasses import dataclass, field

from .results import is_failure

#: What a failure hole renders as in any table cell.
FAILED_CELL = "FAILED"


def result_cells(result, extractors):
    """Metric cells for one run result, guarding failure holes.

    ``extractors`` is a sequence of callables ``result -> value``; a
    :class:`~repro.sim.results.FailedResult` yields one
    :data:`FAILED_CELL` per metric instead of an ``AttributeError``
    from deep inside an extractor.
    """
    if is_failure(result):
        return [FAILED_CELL] * len(extractors)
    return [extract(result) for extract in extractors]


@dataclass
class ExperimentTable:
    """One regenerated table or figure."""

    exp_id: str
    title: str
    headers: list
    rows: list = field(default_factory=list)
    notes: list = field(default_factory=list)

    def add_row(self, *cells):
        self.rows.append([_fmt(cell) for cell in cells])

    def add_note(self, note):
        self.notes.append(note)

    def render(self):
        """Return the aligned plain-text rendering."""
        headers = [str(h) for h in self.headers]
        widths = [len(h) for h in headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = ["== {} : {} ==".format(self.exp_id, self.title)]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(w)
                                   for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append("note: {}".format(note))
        return "\n".join(lines)

    def column(self, header):
        """Return one column's cells by header name."""
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def _fmt(cell):
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return "{:.0f}".format(cell)
        if abs(cell) >= 10:
            return "{:.1f}".format(cell)
        return "{:.2f}".format(cell)
    return str(cell)
