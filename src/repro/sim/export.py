"""Result export: experiment tables and run results as CSV or JSON.

The text renderer (:mod:`repro.sim.reporting`) targets terminals; this
module targets downstream analysis — spreadsheets, plotting scripts, or
regression dashboards diffing two simulator versions.
"""

import csv
import io
import json

from .results import is_failure


def table_to_csv(table):
    """Render an :class:`ExperimentTable` as a CSV string."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.headers)
    writer.writerows(table.rows)
    return buffer.getvalue()


def table_to_dict(table):
    """Render an :class:`ExperimentTable` as a JSON-ready dict."""
    return {
        "id": table.exp_id,
        "title": table.title,
        "headers": list(table.headers),
        "rows": [list(row) for row in table.rows],
        "notes": list(table.notes),
    }


def table_to_json(table, indent=2):
    return json.dumps(table_to_dict(table), indent=indent)


def result_to_dict(result, include_stats=False):
    """Flatten a :class:`RunResult` for export.

    ``include_stats`` adds the full raw counter map (large).  A
    :class:`~repro.sim.results.FailedResult` hole exports its error
    provenance instead of metrics (``status: "failed"``) — a non-strict
    sweep's JSON must not die on the one point that did.
    """
    if is_failure(result):
        payload = {
            "system": result.system,
            "benchmark": result.benchmark,
            "size": result.size,
            "status": "failed",
            "error": result.error,
            "attempts": result.attempts,
        }
        if result.meta:
            payload["engine"] = dict(result.meta)
        return payload
    payload = {
        "system": result.system,
        "benchmark": result.benchmark,
        "config": result.config_name,
        "accel_cycles": result.accel_cycles,
        "total_cycles": result.total_cycles,
        "energy_pj": result.energy.total_pj,
        "energy_components_pj": dict(result.energy.components),
        "dma_kb": result.dma_kb,
        "dma_count": result.dma_count,
        "axc_link_msgs": result.axc_link_msgs,
        "axc_link_data": result.axc_link_data,
        "tile_l2_msgs": result.tile_l2_msgs,
        "tile_l2_data": result.tile_l2_data,
        "ax_tlb_lookups": result.ax_tlb_lookups,
        "ax_rmap_lookups": result.ax_rmap_lookups,
        "forwarded_lines": result.forwarded_lines,
    }
    if result.meta:
        # Engine telemetry (wall time, cache source, batch hit ratio)
        # so regression dashboards can track the execution trajectory.
        payload["engine"] = dict(result.meta)
    if include_stats:
        payload["stats"] = dict(result.stats)
    return payload


def result_to_json(result, include_stats=False, indent=2):
    return json.dumps(result_to_dict(result, include_stats),
                      indent=indent)


def results_to_csv(results):
    """Render a list of :class:`RunResult` as one comparison CSV.

    Failure holes become rows with ``status=failed`` and their error in
    the trailing columns; metric cells stay blank.  Headers come from
    the first *completed* row (every completed export has the same
    shape), so a sweep that failed its first point still renders.
    """
    if not results:
        return ""
    rows = [result_to_dict(result) for result in results]
    template = next((row for row in rows if row.get("status") != "failed"),
                    None)
    if template is None:
        headers = ["system", "benchmark", "size"]
        component_keys = []
    else:
        component_keys = sorted(template["energy_components_pj"])
        headers = [key for key in template
                   if key not in ("energy_components_pj", "engine")]
    headers += ["energy_{}_pj".format(key) for key in component_keys]
    headers += ["status", "error"]
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        components = row.pop("energy_components_pj", {})
        row.pop("engine", None)
        status = row.pop("status", "ok")
        error = row.pop("error", "")
        writer.writerow(
            [row.get(key, "") for key in headers[:-2 - len(component_keys)]]
            + [components.get(key, 0.0) for key in component_keys]
            + [status, error])
    return buffer.getvalue()
