"""Parallel simulation engine with a persistent on-disk result cache.

The experiment layer's unit of work is one (system, benchmark, size,
config) point; the full table/figure suite evaluates a few hundred of
them and every point is independent.  This module turns that grid into
throughput:

* :class:`ExecutionEngine` accepts a *batch* of :class:`RunRequest`\\ s,
  deduplicates them, satisfies what it can from cache and fans the rest
  out over a :class:`concurrent.futures.ProcessPoolExecutor` (worker
  count from ``REPRO_JOBS`` or ``os.cpu_count()``; ``jobs=1`` and
  non-picklable configs fall back to in-process serial execution).
* :class:`DiskCache` persists every computed :class:`RunResult` under
  ``~/.cache/repro`` (override with ``REPRO_CACHE_DIR``, disable with
  ``REPRO_NO_CACHE=1``).  Entries are pickles written atomically
  (temp file + ``os.replace``) and keyed by a content hash of
  (system, benchmark, size, config fields, code version), so *any*
  source change to the ``repro`` package invalidates the whole cache —
  stale models can never leak into fresh results.
* Light telemetry (per-run wall time, batch queue depth, cache hit
  ratio) is attached to each returned result's ``meta`` dict and
  aggregated on ``engine.telemetry`` so benchmark JSONs can track the
  trajectory; an aggregate snapshot is persisted next to the cache for
  ``fusion-sim cache stats``.
* The engine survives its own failures.  A crashed pool worker
  (``BrokenProcessPool``) triggers a pool respawn with exponential
  backoff up to ``REPRO_RETRIES`` times, then the remaining misses are
  degraded to in-process serial execution; a point that exceeds
  ``REPRO_RUN_TIMEOUT``/``--timeout`` is cancelled (its worker killed)
  and reported without blocking the rest of the batch.  Non-strict
  batches (``run_batch(..., strict=False)``) turn terminal failures
  into structured :class:`~repro.sim.results.FailedResult` rows;
  strict batches (the default) raise.  Every recovery action is
  recorded in an :class:`EngineJournal` (ring buffer, optional JSONL
  via ``REPRO_ENGINE_LOG``) and counted on :class:`EngineTelemetry`;
  ``REPRO_FAULT_SPEC`` (:mod:`repro.sim.faults`) injects deterministic
  crashes/hangs/cache corruption so all of it is testable in CI.

The driver (:mod:`repro.sim.simulator`) routes every ``run()`` through
the process-wide engine, so single-point callers transparently share
the same cache as batch submitters.
"""

import contextlib
import copy
import hashlib
import json
import os
import pathlib
import pickle
import tempfile
import time
import warnings

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None
from collections import deque
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from functools import lru_cache

from ..common.config import config_fingerprint, small_config
from ..common.errors import ConfigError, ExecutionError, RunTimeout
from ..systems import SYSTEMS
from ..workloads.characterize import function_mlp
from ..workloads.lowering import LOWERING_VERSION, lower_workload
from ..workloads.registry import build_workload
from . import faults
from .results import FailedResult

#: Bump when the cache entry layout (not the simulated models — those
#: are covered by :func:`code_fingerprint`) changes incompatibly.
#: Version 2: prepared-trace pickles carry structure-of-arrays vector
#: plans (ndarray payloads a v1 reader would not expect).  Entries
#: live under ``<root>/v<schema>/``, so old-schema entries are never
#: *read* after a bump — they sit in their own directory, counted by
#: :meth:`DiskCache.stale_schema_stats` and reaped by
#: :meth:`DiskCache.clear`.
CACHE_SCHEMA_VERSION = 2

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("", "0", "false", "no", "off")


def _warn_env(name, value, why, fallback):
    """One malformed-environment warning; the run proceeds on defaults.

    A bad ``REPRO_*`` value used to raise :class:`ConfigError` deep in
    batch setup — a daemon serving many clients must not die because one
    login shell exported ``REPRO_RUN_TIMEOUT=abc``, so environment
    problems degrade loudly instead of fatally.  Explicit arguments
    (``--jobs``/``configure()``) still raise: the caller typed those.
    """
    warnings.warn(
        "ignoring {}={!r} ({}); falling back to {!r}".format(
            name, value, why, fallback),
        RuntimeWarning, stacklevel=3)
    return fallback


def _env_flag(name):
    value = os.environ.get(name, "").strip().lower()
    if value in _TRUTHY:
        return True
    if value not in _FALSY:
        return _warn_env(name, value,
                         "expected one of {}".format(
                             "/".join(_TRUTHY + _FALSY[1:])), False)
    return False


def resolve_jobs(jobs=None):
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    default = os.cpu_count() or 1
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if not env:
            return default
        try:
            parsed = int(env)
        except ValueError:
            return _warn_env("REPRO_JOBS", env, "not an integer", default)
        if parsed < 1:
            return _warn_env("REPRO_JOBS", env, "must be >= 1", default)
        return parsed
    try:
        return max(1, int(jobs))
    except (TypeError, ValueError):
        raise ConfigError("--jobs must be an integer, "
                          "got {!r}".format(jobs))


def resolve_timeout(timeout=None):
    """Per-run timeout in seconds: explicit arg > ``REPRO_RUN_TIMEOUT``.

    ``None``/empty/``0`` disable the timeout (the default).
    """
    if timeout is None:
        env = os.environ.get("REPRO_RUN_TIMEOUT", "").strip()
        if not env:
            return None
        try:
            timeout = float(env)
        except ValueError:
            return _warn_env("REPRO_RUN_TIMEOUT", env, "not a number",
                             None)
        return timeout if timeout > 0 else None
    try:
        timeout = float(timeout)
    except (TypeError, ValueError):
        raise ConfigError("--timeout must be a number of seconds, "
                          "got {!r}".format(timeout))
    return timeout if timeout > 0 else None


def resolve_retries(retries=None):
    """Pool respawns allowed per batch: arg > ``REPRO_RETRIES`` > 2."""
    if retries is None:
        env = os.environ.get("REPRO_RETRIES", "").strip()
        if not env:
            return 2
        try:
            parsed = int(env)
        except ValueError:
            return _warn_env("REPRO_RETRIES", env, "not an integer", 2)
        if parsed < 0:
            return _warn_env("REPRO_RETRIES", env, "must be >= 0", 2)
        return parsed
    try:
        return max(0, int(retries))
    except (TypeError, ValueError):
        raise ConfigError("--retries must be an integer, "
                          "got {!r}".format(retries))


def resolve_backoff():
    """Base respawn backoff in seconds (``REPRO_RETRY_BACKOFF``)."""
    env = os.environ.get("REPRO_RETRY_BACKOFF", "").strip()
    if not env:
        return 0.05
    try:
        return max(0.0, float(env))
    except ValueError:
        return _warn_env("REPRO_RETRY_BACKOFF", env, "not a number", 0.05)


@lru_cache(maxsize=1)
def code_fingerprint():
    """Content hash of every ``repro`` source file (the "code version").

    Computed once per process; any edit to the package produces new
    cache keys, which is what makes the persistent cache safe to leave
    enabled while developing models.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass(frozen=True)
class RunRequest:
    """One simulation point: what :func:`repro.run` takes, as a value."""

    system: str
    benchmark: str
    size: str = "full"
    config: object = None

    def normalized(self):
        """Return a copy with ``config=None`` resolved to the default."""
        if self.config is None:
            return RunRequest(self.system, self.benchmark, self.size,
                              small_config())
        return self


def cache_key(request, epoch=0):
    """Content-hash key for one (normalized) request.

    Returns ``None`` when the config has no stable fingerprint (e.g. it
    smuggles a callable) — such requests are uncacheable and also run
    serially, since an unfingerprintable config is usually unpicklable
    too.  ``epoch`` is a process-local salt bumped by
    :func:`repro.sim.simulator.clear_cache` so tests that mutate global
    models cannot be served stale on-disk results.
    """
    try:
        config_hash = config_fingerprint(request.config)
    except ConfigError:
        return None
    payload = "\n".join((
        "schema={}".format(CACHE_SCHEMA_VERSION),
        "code={}".format(code_fingerprint()),
        "epoch={}".format(epoch),
        "system={}".format(request.system),
        "benchmark={}".format(request.benchmark),
        "size={}".format(request.size),
        "config={}".format(config_hash),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def trace_cache_key(benchmark, size, epoch=0):
    """Content-hash key for one prepared (lowered) workload.

    Keyed by the code fingerprint (kernel generators and the lowering
    pass both live in the package) plus :data:`LOWERING_VERSION`, so a
    lowering format change invalidates prepared traces even before the
    schema version moves.
    """
    payload = "\n".join((
        "schema={}".format(CACHE_SCHEMA_VERSION),
        "code={}".format(code_fingerprint()),
        "lowering={}".format(LOWERING_VERSION),
        "epoch={}".format(epoch),
        "benchmark={}".format(benchmark),
        "size={}".format(size),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def prepared_workload(benchmark, size, cache=None, epoch=0):
    """Return a workload with its derived hot-path artifacts attached.

    "Prepared" means the one-time per-trace work is already done: every
    invocation trace is lowered for the default AXC issue width and the
    DDG-derived per-function MLP table is memoised on the workload.
    Prepared workloads are pickled into the engine's disk cache so pool
    workers (and later processes) never re-execute the kernel generators
    or the dependence-graph analysis.
    """
    cache = cache if cache is not None else get_engine().cache
    key = trace_cache_key(benchmark, size, epoch)
    workload = cache.load_trace(key)
    if workload is None:
        workload = build_workload(benchmark, size)
        lower_workload(workload)
        function_mlp(workload)
        cache.store_trace(key, workload)
    return workload


def _execute(request, cache=None, epoch=None):
    """Run one simulation point from scratch (no result caching).

    Top-level so it pickles for pool workers; also the serial path.
    ``cache``/``epoch`` name the prepared-trace store to use; they
    default to the process-wide engine's (which forked pool workers
    inherit), while in-process engines pass their own so a test engine
    with a private cache root never writes outside it.
    """
    if request.system not in SYSTEMS:
        raise ConfigError(
            "unknown system {!r}; expected one of {}".format(
                request.system, ", ".join(SYSTEMS)))
    if cache is None:
        engine = get_engine()
        cache, epoch = engine.cache, engine.epoch
    workload = prepared_workload(request.benchmark, request.size,
                                 cache, epoch or 0)
    system = SYSTEMS[request.system](request.config, workload)
    return system.run()


#: Per-worker-process DiskCache instances keyed by (root, enabled), so
#: every request a pool worker serves shares one in-memory trace index.
_WORKER_CACHES = {}


def _worker_cache(root, enabled):
    cache = _WORKER_CACHES.get((root, enabled))
    if cache is None:
        cache = DiskCache(root)
        cache.enabled_override = enabled
        _WORKER_CACHES[(root, enabled)] = cache
    return cache


def _execute_timed(request, cache_root=None, cache_enabled=True,
                   epoch=0):
    """Pool-worker entry point: run one request against the submitting
    engine's prepared-trace store (workers must not fall back to the
    process-wide engine's cache, which can have a different root).

    Crash/hang fault injection (``REPRO_FAULT_SPEC``) hooks in here and
    *only* here — the in-process serial path stays fault-free, so
    serial fallback is a guaranteed-success last resort.
    """
    faults.on_worker_execute(request)
    cache = (_worker_cache(cache_root, cache_enabled)
             if cache_root is not None else None)
    start = time.perf_counter()
    result = _execute(request, cache, epoch)
    return result, time.perf_counter() - start


def _is_picklable(obj):
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


class DiskCache:
    """Persistent pickle store for :class:`RunResult`\\ s.

    Layout: ``<root>/v<schema>/<key[:2]>/<key>.pkl``.  Writes go
    through a temp file in the destination directory and
    ``os.replace``, so concurrent processes never observe a torn entry.
    A per-instance in-memory index short-circuits repeat loads and
    preserves object identity within a process.
    """

    def __init__(self, root=None):
        self._explicit_root = pathlib.Path(root) if root else None
        #: Tri-state override: None = follow ``REPRO_NO_CACHE``.
        self.enabled_override = None
        self._index = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.trace_memory_hits = 0
        self.trace_disk_hits = 0
        self.trace_misses = 0
        self.trace_stores = 0
        #: Torn/unreadable entries dropped by :meth:`_read_pickle`.
        self.corrupt_drops = 0
        #: Optional journal hook ``(event, **detail)`` set by the engine.
        self.on_event = None

    def _emit(self, event, **detail):
        if self.on_event is not None:
            self.on_event(event, **detail)

    @property
    def root(self):
        if self._explicit_root is not None:
            return self._explicit_root
        env = os.environ.get("REPRO_CACHE_DIR", "").strip()
        if env:
            return pathlib.Path(env)
        return pathlib.Path.home() / ".cache" / "repro"

    @property
    def enabled(self):
        if self.enabled_override is not None:
            return self.enabled_override
        return not _env_flag("REPRO_NO_CACHE")

    def _entry_dir(self):
        return self.root / "v{}".format(CACHE_SCHEMA_VERSION)

    def _trace_dir(self):
        return self._entry_dir() / "traces"

    def _path(self, key):
        return self._entry_dir() / key[:2] / (key + ".pkl")

    def _trace_path(self, key):
        return self._trace_dir() / key[:2] / (key + ".pkl")

    def _read_pickle(self, path):
        """Load one pickle, dropping torn/unreadable entries.

        Returns ``None`` on any failure (including absence).  Dropped
        corruption is *counted* (``corrupt_drops``) and journalled, so
        silent data loss shows up in ``cache stats`` and ``doctor``
        instead of disappearing into a recompute.
        """
        try:
            with open(path, "rb") as fileobj:
                if faults.should_corrupt(path.name):
                    raise pickle.UnpicklingError(
                        "injected corruption (REPRO_FAULT_SPEC)")
                return pickle.load(fileobj)
        except FileNotFoundError:
            return None
        except Exception as exc:
            # Torn/stale/unreadable entry: drop it and recompute.
            self.corrupt_drops += 1
            self._emit("corrupt_drop", path=str(path), error=repr(exc))
            try:
                path.unlink()
            except OSError:
                pass
            return None

    @contextlib.contextmanager
    def _advisory_lock(self, exclusive=False):
        """Cross-process writer/clearer lock on ``<root>/.lock``.

        Writers hold it *shared* for the temp-file + rename window;
        :meth:`clear` holds it *exclusive* while deleting, so a sweep
        can never unlink a live ``.tmp-*`` file out from under a
        concurrent ``store()`` (whose ``os.replace`` would then fail)
        or race a rename into resurrecting a half-deleted entry.
        Advisory ``flock`` only — platforms without :mod:`fcntl` fall
        back to the pre-lock behaviour.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_path = self.root / ".lock"
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        with open(lock_path, "a+") as handle:
            fcntl.flock(handle,
                        fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _write_pickle(self, path, obj):
        path.parent.mkdir(parents=True, exist_ok=True)
        with self._advisory_lock(exclusive=False):
            handle = tempfile.NamedTemporaryFile(
                dir=str(path.parent), prefix=".tmp-", delete=False)
            try:
                with handle as fileobj:
                    pickle.dump(obj, fileobj, pickle.HIGHEST_PROTOCOL)
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise

    def load(self, key):
        """Return the cached result for ``key`` or ``None``."""
        if key is None or not self.enabled:
            return None
        index_key = (str(self.root), key)
        if index_key in self._index:
            self.memory_hits += 1
            return self._index[index_key]
        result = self._read_pickle(self._path(key))
        if result is None:
            self.misses += 1
            return None
        self._index[index_key] = result
        self.disk_hits += 1
        return result

    def store(self, key, result):
        if key is None or not self.enabled:
            return
        self._index[(str(self.root), key)] = result
        self._write_pickle(self._path(key), result)
        self.stores += 1

    def load_trace(self, key):
        """Return the cached prepared workload for ``key`` or ``None``.

        Always consults the in-memory index (preserving object identity
        within a process, like the workload registry's own memo); the
        disk tier is skipped when caching is disabled.
        """
        if key is None:
            return None
        index_key = (str(self.root), "trace", key)
        if index_key in self._index:
            self.trace_memory_hits += 1
            return self._index[index_key]
        if not self.enabled:
            return None
        workload = self._read_pickle(self._trace_path(key))
        if workload is None:
            self.trace_misses += 1
            return None
        self._index[index_key] = workload
        self.trace_disk_hits += 1
        return workload

    def store_trace(self, key, workload):
        if key is None:
            return
        self._index[(str(self.root), "trace", key)] = workload
        if not self.enabled:
            return
        self._write_pickle(self._trace_path(key), workload)
        self.trace_stores += 1

    def clear_index(self):
        """Drop the in-memory index (disk entries survive)."""
        self._index.clear()

    def _iter_temp_files(self):
        """Orphaned ``.tmp-*`` files left by writers killed mid-write."""
        root = self.root
        if root.is_dir():
            yield from root.rglob(".tmp-*")

    def _iter_stale_schema_dirs(self):
        """Version directories left behind by older cache schemas.

        The layout keys every entry under ``<root>/v<schema>/``, so a
        schema bump *orphans* the previous version's tree rather than
        leaving incompatible pickles where a new reader would trip on
        them: old entries are never read again, only counted
        (:meth:`stale_schema_stats`) and reaped (:meth:`clear`).
        """
        root = self.root
        current = self._entry_dir().name
        if not root.is_dir():
            return
        for path in sorted(root.iterdir()):
            if path.is_dir() and path.name != current \
                    and path.name.startswith("v") \
                    and path.name[1:].isdigit():
                yield path

    def stale_schema_stats(self):
        """Return ``(entries, total_bytes)`` across old-schema dirs."""
        entries, total = 0, 0
        for stale_dir in self._iter_stale_schema_dirs():
            count, size = self._tally(stale_dir)
            entries += count
            total += size
        return entries, total

    def clear(self):
        """Delete every on-disk entry (results *and* prepared traces),
        any orphaned ``.tmp-*`` files and any old-schema version
        directories; returns the number of entries removed.

        Holds the advisory lock *exclusive*, so concurrent writers
        (pool workers mid-``store()``) finish their atomic rename
        before the sweep runs — their temp files are either already
        renamed (and deleted here as entries) or not yet created.
        """
        removed = 0
        with self._advisory_lock(exclusive=True):
            entry_dir = self._entry_dir()
            if entry_dir.is_dir():
                for path in sorted(entry_dir.rglob("*.pkl")):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
            for stale_dir in self._iter_stale_schema_dirs():
                for path in sorted(stale_dir.rglob("*.pkl")):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
                # Remove the emptied version tree itself (leaves of the
                # rglob walk first); non-empty leftovers are harmless.
                for sub in sorted(stale_dir.rglob("*"), reverse=True):
                    try:
                        if sub.is_dir():
                            sub.rmdir()
                        else:
                            sub.unlink()
                    except OSError:
                        pass
                try:
                    stale_dir.rmdir()
                except OSError:
                    pass
            for path in sorted(self._iter_temp_files()):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            self.clear_index()
        return removed

    def _tally(self, root_dir, exclude=None):
        entries, total = 0, 0
        if root_dir.is_dir():
            for path in root_dir.rglob("*.pkl"):
                if exclude is not None and exclude in path.parents:
                    continue
                try:
                    total += path.stat().st_size
                    entries += 1
                except OSError:
                    pass
        return entries, total

    def disk_stats(self):
        """Return ``(entries, total_bytes)`` for on-disk *results*."""
        return self._tally(self._entry_dir(), exclude=self._trace_dir())

    def trace_stats(self):
        """Return ``(entries, total_bytes)`` for prepared-trace pickles."""
        return self._tally(self._trace_dir())

    def phase_stats(self):
        """Return ``(plan_entries, phases)`` across prepared workloads.

        Tallies the compiled steady-state phase plans riding in the
        prepared-trace pickles (in-memory entries included, each
        workload once): ``plan_entries`` counts the memoised plan
        variants across invocation traces and ``phases`` the distinct
        compiled phase windows inside them — the artifacts
        ``invalidate_lowered`` evicts alongside the lowered streams.
        """
        from ..workloads.phases import plan_summary

        workloads = {}
        for index_key, workload in self._index.items():
            if index_key[1] == "trace":
                workloads[index_key[2]] = workload
        trace_dir = self._trace_dir()
        if trace_dir.is_dir():
            for path in sorted(trace_dir.rglob("*.pkl")):
                if path.stem in workloads:
                    continue
                workload = self._read_pickle(path)
                if workload is not None:
                    workloads[path.stem] = workload
        plan_entries, phases = 0, 0
        for workload in workloads.values():
            for trace in workload.invocations:
                entries, windows = plan_summary(trace)
                plan_entries += entries
                phases += windows
        return plan_entries, phases

    def vector_stats(self):
        """Return ``(plan_entries, windows)`` for SoA vector plans.

        The vector-rung analogue of :meth:`phase_stats`: tallies the
        structure-of-arrays plans memoised on prepared-workload traces
        (``_vector_plans``), counting memoised plan variants and the
        distinct compiled :class:`~repro.workloads.vector.VectorWindow`
        objects inside them.  Zero on a numpy-less install (the plans
        are never built there).
        """
        from ..workloads.vector import vector_summary

        workloads = {}
        for index_key, workload in self._index.items():
            if index_key[1] == "trace":
                workloads[index_key[2]] = workload
        trace_dir = self._trace_dir()
        if trace_dir.is_dir():
            for path in sorted(trace_dir.rglob("*.pkl")):
                if path.stem in workloads:
                    continue
                workload = self._read_pickle(path)
                if workload is not None:
                    workloads[path.stem] = workload
        plan_entries, windows = 0, 0
        for workload in workloads.values():
            for trace in workload.invocations:
                entries, count = vector_summary(trace)
                plan_entries += entries
                windows += count
        return plan_entries, windows

    def temp_stats(self):
        """Return ``(count, total_bytes)`` for orphaned ``.tmp-*`` files.

        These are left behind when a writer dies between creating its
        temp file and the atomic ``os.replace``; they are real disk
        usage ``disk_stats()`` alone would under-report, and ``clear()``
        sweeps them.
        """
        count, total = 0, 0
        for path in self._iter_temp_files():
            try:
                total += path.stat().st_size
                count += 1
            except OSError:
                pass
        return count, total


def read_journal(path):
    """Parse a ``REPRO_ENGINE_LOG`` JSONL file, tolerating torn lines.

    Returns ``(records, torn)``: every line that parses as a JSON
    object, plus a count of lines skipped because a concurrent writer
    (or a kill mid-append) left them incomplete or interleaved.  The
    writer side appends each record as one atomic ``write()``, so torn
    lines should be rare — but a reader (``doctor``, the service) must
    never die on one.
    """
    records, torn = [], 0
    try:
        with open(path, "rb") as fileobj:
            data = fileobj.read()
    except OSError:
        return [], 0
    for line in data.split(b"\n"):
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            torn += 1
            continue
        if isinstance(record, dict):
            records.append(record)
        else:
            torn += 1
    return records, torn


class EngineJournal:
    """Ring buffer of engine recovery events, optionally mirrored to disk.

    Every retry, pool respawn, timeout, serial-fallback downgrade,
    corrupt-entry drop and point failure is recorded as a dict with an
    ``event`` name and a monotonic ``seq``; the last ``maxlen`` events
    are kept in memory (``fusion-sim doctor`` prints the tail).  When
    ``REPRO_ENGINE_LOG`` names a file, each event is also appended as
    one JSON line (best-effort — journal I/O must never fail a batch).
    Appends are a single ``os.write`` on an ``O_APPEND`` descriptor, so
    concurrent engine processes sharing one log file interleave whole
    lines, never bytes; :func:`read_journal` skips anything torn by a
    writer killed mid-append.  ``on_record`` (when set) receives every
    record — the bridge the sweep service uses to mirror engine
    recovery events into the durable experiment store.
    """

    def __init__(self, maxlen=256):
        self.events = deque(maxlen=maxlen)
        self._seq = 0
        #: Optional callback ``(record_dict) -> None``; exceptions are
        #: swallowed — observers must never fail a batch.
        self.on_record = None

    def emit(self, event, **detail):
        self._seq += 1
        record = {"seq": self._seq, "t": round(time.time(), 3),
                  "event": event}
        record.update(detail)
        self.events.append(record)
        path = os.environ.get("REPRO_ENGINE_LOG", "").strip()
        if path:
            line = (json.dumps(record, default=str) + "\n").encode("utf-8")
            try:
                fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                             0o644)
                try:
                    os.write(fd, line)
                finally:
                    os.close(fd)
            except OSError:
                pass
        if self.on_record is not None:
            try:
                self.on_record(record)
            except Exception:
                pass
        return record

    def tail(self, count=10):
        return list(self.events)[-count:]

    def counts(self):
        """``{event_name: occurrences}`` over the retained window."""
        tally = {}
        for record in self.events:
            tally[record["event"]] = tally.get(record["event"], 0) + 1
        return tally


@dataclass
class EngineTelemetry:
    """Aggregate counters across every batch an engine has run."""

    batches: int = 0
    requested: int = 0
    unique: int = 0
    computed: int = 0
    parallel_computed: int = 0
    serial_computed: int = 0
    disk_hits: int = 0
    memory_hits: int = 0
    uncacheable: int = 0
    wall_s: float = 0.0
    max_queue_depth: int = 0
    #: Recovery counters (the failure-handling paths).
    retries: int = 0
    pool_respawns: int = 0
    timeouts: int = 0
    serial_fallbacks: int = 0
    failed_points: int = 0
    corrupt_drops: int = 0

    @property
    def hits(self):
        return self.disk_hits + self.memory_hits

    def hit_ratio(self):
        served = self.hits + self.computed
        return self.hits / served if served else 0.0

    def snapshot(self):
        data = {name: getattr(self, name) for name in (
            "batches", "requested", "unique", "computed",
            "parallel_computed", "serial_computed", "disk_hits",
            "memory_hits", "uncacheable", "max_queue_depth",
            "retries", "pool_respawns", "timeouts", "serial_fallbacks",
            "failed_points", "corrupt_drops")}
        data["wall_s"] = round(self.wall_s, 6)
        data["hit_ratio"] = round(self.hit_ratio(), 6)
        return data


class ExecutionEngine:
    """Deduplicating, caching, parallelising executor for run batches."""

    def __init__(self, jobs=None, cache=None, timeout=None, retries=None):
        #: None defers to ``REPRO_JOBS``/CPU count at each batch.
        self.jobs = jobs
        #: None defers to ``REPRO_RUN_TIMEOUT`` at each batch.
        self.timeout = timeout
        #: None defers to ``REPRO_RETRIES`` (default 2) at each batch.
        self.retries = retries
        self.cache = cache if cache is not None else DiskCache()
        self.epoch = 0
        self.telemetry = EngineTelemetry()
        self.journal = EngineJournal()
        self.cache.on_event = self._on_cache_event

    def _on_cache_event(self, event, **detail):
        if event == "corrupt_drop":
            self.telemetry.corrupt_drops += 1
        self.journal.emit(event, **detail)

    # -- configuration -----------------------------------------------------

    def bump_epoch(self):
        """Invalidate cached results for this process (see clear_cache)."""
        self.epoch += 1
        self.cache.clear_index()

    # -- execution ---------------------------------------------------------

    def run_one(self, request):
        """Run a single request (a batch of one)."""
        return self.run_batch([request])[0]

    def run_batch(self, requests, jobs=None, strict=True, timeout=None):
        """Run a batch; returns results aligned with ``requests``.

        Duplicate requests are simulated once, but every slot of the
        returned list is its own shallow copy with an independent
        ``meta`` dict — mutating one caller's result (or its telemetry)
        can never clobber another's.  Cache misses run in parallel when
        more than one is outstanding and the effective worker count
        exceeds one.

        Failure contract: a crashed pool worker respawns the pool with
        exponential backoff up to ``REPRO_RETRIES`` times, after which
        the remaining misses degrade to in-process serial execution; a
        point exceeding the per-run timeout is cancelled (its pool
        killed), marked failed and never retried, while the rest of the
        batch completes.  With ``strict=True`` (the default) a point
        that still fails raises; with ``strict=False`` its slot holds a
        structured :class:`~repro.sim.results.FailedResult` so tables
        can render a hole instead of dying.
        """
        started = time.perf_counter()
        # Parse the fault spec eagerly: a typo in REPRO_FAULT_SPEC must
        # raise here, not be silently ignored because no pool worker or
        # disk read ever consulted the plan.
        faults.fault_plan()
        normalized = [request.normalized() for request in requests]
        for request in normalized:
            if request.system not in SYSTEMS:
                raise ConfigError(
                    "unknown system {!r}; expected one of {}".format(
                        request.system, ", ".join(SYSTEMS)))

        # Deduplicate on the cache key; unkeyable requests dedupe on the
        # request value itself when hashable, else run individually.
        unique, order = {}, []
        for request in normalized:
            key = cache_key(request, self.epoch)
            if key is None:
                try:
                    key = ("unkeyed", hash(request))
                except TypeError:
                    key = ("unkeyed", len(order), id(request))
            if key not in unique:
                unique[key] = request
            order.append(key)

        #: key -> canonical result; callers receive copies, so cached
        #: canonicals keep pristine ``meta`` dicts.
        results = {}
        #: key -> per-key meta overlay (cache source, compute wall).
        overlays = {}
        cacheable_misses, uncacheable = [], []
        for key, request in unique.items():
            if isinstance(key, tuple):
                uncacheable.append((key, request))
                continue
            memory_hits_before = self.cache.memory_hits
            cached = self.cache.load(key)
            if cached is not None:
                overlays[key] = {"source": (
                    "memory" if self.cache.memory_hits > memory_hits_before
                    else "disk")}
                results[key] = cached
            else:
                cacheable_misses.append((key, request))

        hits = len(results)
        misses = cacheable_misses + uncacheable
        queue_depth = len(misses)
        effective_jobs = resolve_jobs(self.jobs if jobs is None else jobs)
        effective_timeout = resolve_timeout(
            self.timeout if timeout is None else timeout)
        retries = resolve_retries(self.retries)

        # A single miss normally runs in-process, but a timeout can only
        # be enforced on a killable worker, so it forces the pool path.
        parallelisable, serial = [], list(uncacheable)
        want_pool = effective_jobs > 1 and (
            queue_depth > 1
            or (queue_depth == 1 and effective_timeout is not None))
        if want_pool:
            for key, request in cacheable_misses:
                if _is_picklable(request):
                    parallelisable.append((key, request))
                else:
                    serial.append((key, request))
        else:
            serial = list(misses)

        computed = {}   # key -> (result, wall_s, source)
        failures = {}   # key -> (FailedResult, exception)
        if parallelisable:
            self._run_parallel(parallelisable, effective_jobs,
                               effective_timeout, retries, computed,
                               failures)
        for key, request in serial:
            start = time.perf_counter()
            try:
                result = _execute(request, self.cache, self.epoch)
            except ConfigError:
                raise
            except Exception as exc:
                failures[key] = (self._point_failed(request, exc, 1), exc)
                continue
            computed[key] = (result, time.perf_counter() - start,
                             "computed")

        for key, (result, wall, source) in computed.items():
            if not isinstance(key, tuple):
                self.cache.store(key, result)
            overlays[key] = {"source": source, "wall_s": wall}
            results[key] = result

        if failures and strict:
            # Completed points were cached above, so a retried batch
            # resumes from where this one died.
            _, exc = next(iter(failures.values()))
            raise exc

        for key, (failure, _) in failures.items():
            overlays[key] = {"source": "failed"}
            results[key] = failure

        batch_wall = time.perf_counter() - started
        served = hits + len(computed)
        batch_hit_ratio = hits / served if served else 0.0
        parallel_done = sum(1 for _, _, source in computed.values()
                            if source == "computed-parallel")

        telemetry = self.telemetry
        telemetry.batches += 1
        telemetry.requested += len(normalized)
        telemetry.unique += len(unique)
        telemetry.computed += len(computed)
        telemetry.parallel_computed += parallel_done
        telemetry.serial_computed += len(computed) - parallel_done
        telemetry.disk_hits = self.cache.disk_hits
        telemetry.memory_hits = self.cache.memory_hits
        telemetry.uncacheable += len(uncacheable)
        telemetry.failed_points += len(failures)
        telemetry.wall_s += batch_wall
        telemetry.max_queue_depth = max(telemetry.max_queue_depth,
                                        queue_depth)
        self._persist_session_stats()

        # Per-request shallow copies with independent meta dicts: the
        # canonical (cached/indexed) objects are never mutated, so a
        # later batch's telemetry cannot clobber an earlier caller's.
        common = {
            "queue_depth": queue_depth,
            "jobs": effective_jobs,
            "batch_hit_ratio": batch_hit_ratio,
        }
        out = []
        for key in order:
            canonical = results[key]
            view = copy.copy(canonical)
            view.meta = dict(canonical.meta)
            view.meta.update(overlays.get(key, {}))
            view.meta.setdefault("wall_s", 0.0)
            view.meta.update(common)
            out.append(view)
        return out

    # -- parallel execution with recovery ----------------------------------

    def _point_failed(self, request, exc, attempts):
        failure = FailedResult(
            system=request.system, benchmark=request.benchmark,
            size=request.size, error=repr(exc), attempts=attempts)
        self.journal.emit("point_failed", key=faults.request_key(request),
                          error=failure.error, attempts=attempts)
        return failure

    @staticmethod
    def _shutdown_pool(pool, kill=False):
        """Tear a pool down; ``kill=True`` terminates worker processes
        (hung or crashed pools cannot be joined cooperatively)."""
        if not kill:
            pool.shutdown(wait=True)
            return
        processes = list((getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass
        for process in processes:
            try:
                process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
            except Exception:
                pass

    def _run_parallel(self, points, jobs, timeout, retries, computed,
                      failures):
        """Fan ``points`` out over worker pools, surviving crashes.

        Fills ``computed``/``failures`` in place.  Each round submits
        the still-missing points to a fresh pool; crashed or erroring
        points queue for the next round (a pool respawn with
        exponential backoff), up to ``retries`` respawns, after which
        the leftovers run serially in-process — the fault-free last
        resort.  Timed-out points are failed immediately, never retried.
        """
        telemetry = self.telemetry
        cache_root = str(self.cache.root)
        cache_enabled = self.cache.enabled
        backoff = resolve_backoff()
        attempts = {key: 0 for key, _ in points}
        pending = list(points)
        respawns = 0
        while pending:
            workers = min(jobs, len(pending))
            pool = ProcessPoolExecutor(max_workers=workers)
            futures = {}
            for key, request in pending:
                attempts[key] += 1
                futures[pool.submit(
                    _execute_timed, request, cache_root, cache_enabled,
                    self.epoch)] = (key, request)
            retry_next, suspects, abandoned = self._collect_round(
                futures, timeout, attempts, computed)
            self._shutdown_pool(pool, kill=abandoned)
            if suspects:
                retry_next.extend(self._probe_suspects(
                    suspects, timeout, attempts, computed, failures))
            if not retry_next:
                return
            if respawns >= retries:
                # Last resort: remaining misses run in-process, where
                # fault injection never fires and a crash cannot take
                # the batch down with it.
                for key, request, exc in retry_next:
                    telemetry.serial_fallbacks += 1
                    self.journal.emit(
                        "serial_fallback",
                        key=faults.request_key(request),
                        attempts=attempts[key], last_error=repr(exc))
                    start = time.perf_counter()
                    try:
                        result = _execute(request, self.cache, self.epoch)
                    except Exception as serial_exc:
                        failures[key] = (
                            self._point_failed(request, serial_exc,
                                               attempts[key] + 1),
                            serial_exc)
                        continue
                    computed[key] = (result, time.perf_counter() - start,
                                     "computed-serial")
                return
            respawns += 1
            telemetry.pool_respawns += 1
            telemetry.retries += len(retry_next)
            delay = backoff * (2 ** (respawns - 1))
            self.journal.emit("pool_respawn", round=respawns,
                              pending=len(retry_next),
                              backoff_s=round(delay, 3))
            if delay:
                time.sleep(delay)
            pending = [(key, request) for key, request, _ in retry_next]

    def _collect_round(self, futures, timeout, attempts, computed):
        """Harvest one pool round's futures.

        Returns ``(retry_next, suspects, abandoned)``: ``retry_next``
        lists ``(key, request, last_exc)`` tuples to re-run,
        ``suspects`` lists ``(key, request)`` points that exceeded the
        timeout *in this pool* (the executor marks queued work
        "running" once it enters the call queue, so a suspect may just
        have been stuck behind a hung worker — only an isolated probe
        can tell), and ``abandoned`` is True when the pool must be
        killed rather than drained (a worker crashed, or a suspect may
        be holding a worker hostage).
        """
        pending = set(futures)
        starts = {}
        retry_next = []
        abandoned = False
        poll = 0.02 if timeout is not None else None
        while pending:
            done, not_done = wait(pending, timeout=poll)
            for future in done:
                key, request = futures[future]
                try:
                    result, wall = future.result()
                except BrokenProcessPool as exc:
                    abandoned = True
                    retry_next.append((key, request, exc))
                    self.journal.emit("worker_crash",
                                      key=faults.request_key(request),
                                      attempt=attempts[key])
                except Exception as exc:
                    retry_next.append((key, request, exc))
                    self.journal.emit("worker_error",
                                      key=faults.request_key(request),
                                      attempt=attempts[key],
                                      error=repr(exc))
                else:
                    computed[key] = (result, wall, "computed-parallel")
            pending = set(not_done)
            if timeout is None or not pending:
                continue
            now = time.monotonic()
            expired = [future for future in pending
                       if future.running()
                       and now - starts.setdefault(future, now) > timeout]
            if not expired:
                continue
            # Something is stuck.  Abandon the pool (a hung worker can
            # only be freed by killing it); the expired futures become
            # suspects for isolated probing and every other outstanding
            # point is requeued for a fresh pool.
            abandoned = True
            suspects = []
            for future in expired:
                suspects.append(futures[future])
                pending.discard(future)
            for future in pending:
                future.cancel()
                key, request = futures[future]
                if future.done() and not future.cancelled():
                    try:
                        result, wall = future.result(timeout=0)
                        computed[key] = (result, wall,
                                         "computed-parallel")
                        continue
                    except Exception:
                        pass
                retry_next.append((key, request, None))
            return retry_next, suspects, abandoned
        return retry_next, [], abandoned

    def _probe_suspects(self, suspects, timeout, attempts, computed,
                        failures):
        """Re-run each timeout suspect alone in a single-worker pool.

        With exactly one task and one worker, "still not done after the
        timeout" can only mean the point itself is hung, so it is
        failed; points that were merely queued behind a hung worker
        complete here and innocents are never falsely killed.  Crashes
        and worker errors during a probe are returned for the normal
        retry rounds.
        """
        cache_root = str(self.cache.root)
        cache_enabled = self.cache.enabled
        retry_next = []
        for key, request in suspects:
            attempts[key] += 1
            pool = ProcessPoolExecutor(max_workers=1)
            future = pool.submit(_execute_timed, request, cache_root,
                                 cache_enabled, self.epoch)
            kill = False
            try:
                result, wall = future.result(timeout=timeout)
                computed[key] = (result, wall, "computed-parallel")
            except FuturesTimeout:
                kill = True
                self.telemetry.timeouts += 1
                exc = RunTimeout(
                    "{} exceeded the per-run timeout of {:g}s on "
                    "attempt {}".format(faults.request_key(request),
                                        timeout, attempts[key]))
                self.journal.emit("timeout",
                                  key=faults.request_key(request),
                                  timeout_s=timeout,
                                  attempt=attempts[key])
                failures[key] = (self._point_failed(request, exc,
                                                    attempts[key]), exc)
            except BrokenProcessPool as exc:
                kill = True
                retry_next.append((key, request, exc))
                self.journal.emit("worker_crash",
                                  key=faults.request_key(request),
                                  attempt=attempts[key])
            except Exception as exc:
                retry_next.append((key, request, exc))
                self.journal.emit("worker_error",
                                  key=faults.request_key(request),
                                  attempt=attempts[key], error=repr(exc))
            self._shutdown_pool(pool, kill=kill)
        return retry_next

    # -- reporting ---------------------------------------------------------

    def _stats_path(self):
        return self.cache.root / "stats.json"

    def _persist_session_stats(self):
        """Write the aggregate telemetry snapshot next to the cache.

        Best-effort (``fusion-sim cache stats`` reads it back); skipped
        entirely when the cache is disabled.
        """
        if not self.cache.enabled:
            return
        from ..accel.replay import telemetry_snapshot
        payload = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "updated_unix": time.time(),
            "telemetry": self.telemetry.snapshot(),
            # Process-local replay-rung counters: only in-process
            # (serial) simulations contribute; pool workers keep their
            # own mirrors, so this is a floor, not a census.
            "replay": telemetry_snapshot(),
        }
        path = self._stats_path()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                mode="w", dir=str(path.parent), prefix=".tmp-",
                delete=False)
            with handle as fileobj:
                json.dump(payload, fileobj, indent=1)
            os.replace(handle.name, path)
        except OSError:
            pass

    def load_session_stats(self):
        """Return the last persisted telemetry snapshot, or ``None``."""
        try:
            with open(self._stats_path()) as fileobj:
                return json.load(fileobj)
        except (OSError, ValueError):
            return None


# -- the process-wide engine ----------------------------------------------

_ENGINE = None


def get_engine():
    """Return the process-wide :class:`ExecutionEngine` (created lazily)."""
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = ExecutionEngine()
    return _ENGINE


def configure(jobs=None, cache_enabled=None, timeout=None, retries=None):
    """Apply CLI/session overrides to the process-wide engine.

    ``None`` leaves the respective setting following the environment
    (``REPRO_JOBS`` / ``REPRO_NO_CACHE`` / ``REPRO_RUN_TIMEOUT`` /
    ``REPRO_RETRIES``).
    """
    engine = get_engine()
    if jobs is not None:
        engine.jobs = resolve_jobs(jobs)
    if cache_enabled is not None:
        engine.cache.enabled_override = bool(cache_enabled)
    if timeout is not None:
        engine.timeout = resolve_timeout(timeout)
    if retries is not None:
        engine.retries = resolve_retries(retries)
    return engine


def reset_engine():
    """Drop the process-wide engine (tests and CLI isolation)."""
    global _ENGINE
    _ENGINE = None
