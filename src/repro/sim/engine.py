"""Parallel simulation engine with a persistent on-disk result cache.

The experiment layer's unit of work is one (system, benchmark, size,
config) point; the full table/figure suite evaluates a few hundred of
them and every point is independent.  This module turns that grid into
throughput:

* :class:`ExecutionEngine` accepts a *batch* of :class:`RunRequest`\\ s,
  deduplicates them, satisfies what it can from cache and fans the rest
  out over a :class:`concurrent.futures.ProcessPoolExecutor` (worker
  count from ``REPRO_JOBS`` or ``os.cpu_count()``; ``jobs=1`` and
  non-picklable configs fall back to in-process serial execution).
* :class:`DiskCache` persists every computed :class:`RunResult` under
  ``~/.cache/repro`` (override with ``REPRO_CACHE_DIR``, disable with
  ``REPRO_NO_CACHE=1``).  Entries are pickles written atomically
  (temp file + ``os.replace``) and keyed by a content hash of
  (system, benchmark, size, config fields, code version), so *any*
  source change to the ``repro`` package invalidates the whole cache —
  stale models can never leak into fresh results.
* Light telemetry (per-run wall time, batch queue depth, cache hit
  ratio) is attached to each returned result's ``meta`` dict and
  aggregated on ``engine.telemetry`` so benchmark JSONs can track the
  trajectory; an aggregate snapshot is persisted next to the cache for
  ``fusion-sim cache stats``.

The driver (:mod:`repro.sim.simulator`) routes every ``run()`` through
the process-wide engine, so single-point callers transparently share
the same cache as batch submitters.
"""

import hashlib
import json
import os
import pathlib
import pickle
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache

from ..common.config import config_fingerprint, small_config
from ..common.errors import ConfigError
from ..systems import SYSTEMS
from ..workloads.characterize import function_mlp
from ..workloads.lowering import LOWERING_VERSION, lower_workload
from ..workloads.registry import build_workload

#: Bump when the cache entry layout (not the simulated models — those
#: are covered by :func:`code_fingerprint`) changes incompatibly.
CACHE_SCHEMA_VERSION = 1

_TRUTHY = ("1", "true", "yes", "on")


def _env_flag(name):
    return os.environ.get(name, "").strip().lower() in _TRUTHY


def resolve_jobs(jobs=None):
    """Worker count: explicit arg > ``REPRO_JOBS`` > ``os.cpu_count()``."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            jobs = env
    if jobs is None:
        return os.cpu_count() or 1
    try:
        return max(1, int(jobs))
    except ValueError:
        raise ConfigError("REPRO_JOBS/--jobs must be an integer, "
                          "got {!r}".format(jobs))


@lru_cache(maxsize=1)
def code_fingerprint():
    """Content hash of every ``repro`` source file (the "code version").

    Computed once per process; any edit to the package produces new
    cache keys, which is what makes the persistent cache safe to leave
    enabled while developing models.
    """
    package_root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass(frozen=True)
class RunRequest:
    """One simulation point: what :func:`repro.run` takes, as a value."""

    system: str
    benchmark: str
    size: str = "full"
    config: object = None

    def normalized(self):
        """Return a copy with ``config=None`` resolved to the default."""
        if self.config is None:
            return RunRequest(self.system, self.benchmark, self.size,
                              small_config())
        return self


def cache_key(request, epoch=0):
    """Content-hash key for one (normalized) request.

    Returns ``None`` when the config has no stable fingerprint (e.g. it
    smuggles a callable) — such requests are uncacheable and also run
    serially, since an unfingerprintable config is usually unpicklable
    too.  ``epoch`` is a process-local salt bumped by
    :func:`repro.sim.simulator.clear_cache` so tests that mutate global
    models cannot be served stale on-disk results.
    """
    try:
        config_hash = config_fingerprint(request.config)
    except ConfigError:
        return None
    payload = "\n".join((
        "schema={}".format(CACHE_SCHEMA_VERSION),
        "code={}".format(code_fingerprint()),
        "epoch={}".format(epoch),
        "system={}".format(request.system),
        "benchmark={}".format(request.benchmark),
        "size={}".format(request.size),
        "config={}".format(config_hash),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def trace_cache_key(benchmark, size, epoch=0):
    """Content-hash key for one prepared (lowered) workload.

    Keyed by the code fingerprint (kernel generators and the lowering
    pass both live in the package) plus :data:`LOWERING_VERSION`, so a
    lowering format change invalidates prepared traces even before the
    schema version moves.
    """
    payload = "\n".join((
        "schema={}".format(CACHE_SCHEMA_VERSION),
        "code={}".format(code_fingerprint()),
        "lowering={}".format(LOWERING_VERSION),
        "epoch={}".format(epoch),
        "benchmark={}".format(benchmark),
        "size={}".format(size),
    ))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def prepared_workload(benchmark, size, cache=None, epoch=0):
    """Return a workload with its derived hot-path artifacts attached.

    "Prepared" means the one-time per-trace work is already done: every
    invocation trace is lowered for the default AXC issue width and the
    DDG-derived per-function MLP table is memoised on the workload.
    Prepared workloads are pickled into the engine's disk cache so pool
    workers (and later processes) never re-execute the kernel generators
    or the dependence-graph analysis.
    """
    cache = cache if cache is not None else get_engine().cache
    key = trace_cache_key(benchmark, size, epoch)
    workload = cache.load_trace(key)
    if workload is None:
        workload = build_workload(benchmark, size)
        lower_workload(workload)
        function_mlp(workload)
        cache.store_trace(key, workload)
    return workload


def _execute(request, cache=None, epoch=None):
    """Run one simulation point from scratch (no result caching).

    Top-level so it pickles for pool workers; also the serial path.
    ``cache``/``epoch`` name the prepared-trace store to use; they
    default to the process-wide engine's (which forked pool workers
    inherit), while in-process engines pass their own so a test engine
    with a private cache root never writes outside it.
    """
    if request.system not in SYSTEMS:
        raise ConfigError(
            "unknown system {!r}; expected one of {}".format(
                request.system, ", ".join(SYSTEMS)))
    if cache is None:
        engine = get_engine()
        cache, epoch = engine.cache, engine.epoch
    workload = prepared_workload(request.benchmark, request.size,
                                 cache, epoch or 0)
    system = SYSTEMS[request.system](request.config, workload)
    return system.run()


#: Per-worker-process DiskCache instances keyed by (root, enabled), so
#: every request a pool worker serves shares one in-memory trace index.
_WORKER_CACHES = {}


def _worker_cache(root, enabled):
    cache = _WORKER_CACHES.get((root, enabled))
    if cache is None:
        cache = DiskCache(root)
        cache.enabled_override = enabled
        _WORKER_CACHES[(root, enabled)] = cache
    return cache


def _execute_timed(request, cache_root=None, cache_enabled=True,
                   epoch=0):
    """Pool-worker entry point: run one request against the submitting
    engine's prepared-trace store (workers must not fall back to the
    process-wide engine's cache, which can have a different root)."""
    cache = (_worker_cache(cache_root, cache_enabled)
             if cache_root is not None else None)
    start = time.perf_counter()
    result = _execute(request, cache, epoch)
    return result, time.perf_counter() - start


def _is_picklable(obj):
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


class DiskCache:
    """Persistent pickle store for :class:`RunResult`\\ s.

    Layout: ``<root>/v<schema>/<key[:2]>/<key>.pkl``.  Writes go
    through a temp file in the destination directory and
    ``os.replace``, so concurrent processes never observe a torn entry.
    A per-instance in-memory index short-circuits repeat loads and
    preserves object identity within a process.
    """

    def __init__(self, root=None):
        self._explicit_root = pathlib.Path(root) if root else None
        #: Tri-state override: None = follow ``REPRO_NO_CACHE``.
        self.enabled_override = None
        self._index = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.trace_memory_hits = 0
        self.trace_disk_hits = 0
        self.trace_misses = 0
        self.trace_stores = 0

    @property
    def root(self):
        if self._explicit_root is not None:
            return self._explicit_root
        env = os.environ.get("REPRO_CACHE_DIR", "").strip()
        if env:
            return pathlib.Path(env)
        return pathlib.Path.home() / ".cache" / "repro"

    @property
    def enabled(self):
        if self.enabled_override is not None:
            return self.enabled_override
        return not _env_flag("REPRO_NO_CACHE")

    def _entry_dir(self):
        return self.root / "v{}".format(CACHE_SCHEMA_VERSION)

    def _trace_dir(self):
        return self._entry_dir() / "traces"

    def _path(self, key):
        return self._entry_dir() / key[:2] / (key + ".pkl")

    def _trace_path(self, key):
        return self._trace_dir() / key[:2] / (key + ".pkl")

    def _read_pickle(self, path):
        """Load one pickle, dropping torn/unreadable entries.

        Returns ``None`` on any failure (including absence).
        """
        try:
            with open(path, "rb") as fileobj:
                return pickle.load(fileobj)
        except FileNotFoundError:
            return None
        except Exception:
            # Torn/stale/unreadable entry: drop it and recompute.
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _write_pickle(self, path, obj):
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            dir=str(path.parent), prefix=".tmp-", delete=False)
        try:
            with handle as fileobj:
                pickle.dump(obj, fileobj, pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def load(self, key):
        """Return the cached result for ``key`` or ``None``."""
        if key is None or not self.enabled:
            return None
        index_key = (str(self.root), key)
        if index_key in self._index:
            self.memory_hits += 1
            return self._index[index_key]
        result = self._read_pickle(self._path(key))
        if result is None:
            self.misses += 1
            return None
        self._index[index_key] = result
        self.disk_hits += 1
        return result

    def store(self, key, result):
        if key is None or not self.enabled:
            return
        self._index[(str(self.root), key)] = result
        self._write_pickle(self._path(key), result)
        self.stores += 1

    def load_trace(self, key):
        """Return the cached prepared workload for ``key`` or ``None``.

        Always consults the in-memory index (preserving object identity
        within a process, like the workload registry's own memo); the
        disk tier is skipped when caching is disabled.
        """
        if key is None:
            return None
        index_key = (str(self.root), "trace", key)
        if index_key in self._index:
            self.trace_memory_hits += 1
            return self._index[index_key]
        if not self.enabled:
            return None
        workload = self._read_pickle(self._trace_path(key))
        if workload is None:
            self.trace_misses += 1
            return None
        self._index[index_key] = workload
        self.trace_disk_hits += 1
        return workload

    def store_trace(self, key, workload):
        if key is None:
            return
        self._index[(str(self.root), "trace", key)] = workload
        if not self.enabled:
            return
        self._write_pickle(self._trace_path(key), workload)
        self.trace_stores += 1

    def clear_index(self):
        """Drop the in-memory index (disk entries survive)."""
        self._index.clear()

    def clear(self):
        """Delete every on-disk entry (results *and* prepared traces);
        returns the number removed."""
        removed = 0
        entry_dir = self._entry_dir()
        if entry_dir.is_dir():
            for path in sorted(entry_dir.rglob("*.pkl")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        self.clear_index()
        return removed

    def _tally(self, root_dir, exclude=None):
        entries, total = 0, 0
        if root_dir.is_dir():
            for path in root_dir.rglob("*.pkl"):
                if exclude is not None and exclude in path.parents:
                    continue
                try:
                    total += path.stat().st_size
                    entries += 1
                except OSError:
                    pass
        return entries, total

    def disk_stats(self):
        """Return ``(entries, total_bytes)`` for on-disk *results*."""
        return self._tally(self._entry_dir(), exclude=self._trace_dir())

    def trace_stats(self):
        """Return ``(entries, total_bytes)`` for prepared-trace pickles."""
        return self._tally(self._trace_dir())


@dataclass
class EngineTelemetry:
    """Aggregate counters across every batch an engine has run."""

    batches: int = 0
    requested: int = 0
    unique: int = 0
    computed: int = 0
    parallel_computed: int = 0
    serial_computed: int = 0
    disk_hits: int = 0
    memory_hits: int = 0
    uncacheable: int = 0
    wall_s: float = 0.0
    max_queue_depth: int = 0

    @property
    def hits(self):
        return self.disk_hits + self.memory_hits

    def hit_ratio(self):
        served = self.hits + self.computed
        return self.hits / served if served else 0.0

    def snapshot(self):
        data = {name: getattr(self, name) for name in (
            "batches", "requested", "unique", "computed",
            "parallel_computed", "serial_computed", "disk_hits",
            "memory_hits", "uncacheable", "max_queue_depth")}
        data["wall_s"] = round(self.wall_s, 6)
        data["hit_ratio"] = round(self.hit_ratio(), 6)
        return data


class ExecutionEngine:
    """Deduplicating, caching, parallelising executor for run batches."""

    def __init__(self, jobs=None, cache=None):
        #: None defers to ``REPRO_JOBS``/CPU count at each batch.
        self.jobs = jobs
        self.cache = cache if cache is not None else DiskCache()
        self.epoch = 0
        self.telemetry = EngineTelemetry()

    # -- configuration -----------------------------------------------------

    def bump_epoch(self):
        """Invalidate cached results for this process (see clear_cache)."""
        self.epoch += 1
        self.cache.clear_index()

    # -- execution ---------------------------------------------------------

    def run_one(self, request):
        """Run a single request (a batch of one)."""
        return self.run_batch([request])[0]

    def run_batch(self, requests, jobs=None):
        """Run a batch; returns results aligned with ``requests``.

        Duplicate requests are simulated once.  Cache misses run in
        parallel when more than one is outstanding and the effective
        worker count exceeds one.
        """
        started = time.perf_counter()
        normalized = [request.normalized() for request in requests]
        for request in normalized:
            if request.system not in SYSTEMS:
                raise ConfigError(
                    "unknown system {!r}; expected one of {}".format(
                        request.system, ", ".join(SYSTEMS)))

        # Deduplicate on the cache key; unkeyable requests dedupe on the
        # request value itself when hashable, else run individually.
        unique, order = {}, []
        for request in normalized:
            key = cache_key(request, self.epoch)
            if key is None:
                try:
                    key = ("unkeyed", hash(request))
                except TypeError:
                    key = ("unkeyed", len(order), id(request))
            if key not in unique:
                unique[key] = request
            order.append(key)

        results = {}
        cacheable_misses, uncacheable = [], []
        for key, request in unique.items():
            if isinstance(key, tuple):
                uncacheable.append((key, request))
                continue
            memory_hits_before = self.cache.memory_hits
            cached = self.cache.load(key)
            if cached is not None:
                cached.meta["source"] = (
                    "memory" if self.cache.memory_hits > memory_hits_before
                    else "disk")
                results[key] = cached
            else:
                cacheable_misses.append((key, request))

        hits = len(results)
        misses = cacheable_misses + uncacheable
        queue_depth = len(misses)
        effective_jobs = resolve_jobs(self.jobs if jobs is None else jobs)

        parallelisable, serial = [], list(uncacheable)
        if effective_jobs > 1 and queue_depth > 1:
            for key, request in cacheable_misses:
                if _is_picklable(request):
                    parallelisable.append((key, request))
                else:
                    serial.append((key, request))
        else:
            serial = list(misses)

        computed = {}
        if parallelisable:
            workers = min(effective_jobs, len(parallelisable))
            cache_root = str(self.cache.root)
            cache_enabled = self.cache.enabled
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_execute_timed, request,
                                       cache_root, cache_enabled,
                                       self.epoch)
                           for _, request in parallelisable]
                for (key, _), future in zip(parallelisable, futures):
                    result, wall = future.result()
                    computed[key] = (result, wall, "computed-parallel")
        for key, request in serial:
            start = time.perf_counter()
            result = _execute(request, self.cache, self.epoch)
            wall = time.perf_counter() - start
            computed[key] = (result, wall, "computed")

        for key, (result, wall, source) in computed.items():
            if not isinstance(key, tuple):
                self.cache.store(key, result)
            result.meta.update({"source": source, "wall_s": wall})
            results[key] = result

        batch_wall = time.perf_counter() - started
        served = hits + len(computed)
        batch_hit_ratio = hits / served if served else 0.0
        for key in set(order):
            result = results[key]
            result.meta.setdefault("wall_s", 0.0)
            result.meta.update({
                "queue_depth": queue_depth,
                "jobs": effective_jobs,
                "batch_hit_ratio": batch_hit_ratio,
            })

        telemetry = self.telemetry
        telemetry.batches += 1
        telemetry.requested += len(normalized)
        telemetry.unique += len(unique)
        telemetry.computed += len(computed)
        telemetry.parallel_computed += len(parallelisable)
        telemetry.serial_computed += len(serial)
        telemetry.disk_hits = self.cache.disk_hits
        telemetry.memory_hits = self.cache.memory_hits
        telemetry.uncacheable += len(uncacheable)
        telemetry.wall_s += batch_wall
        telemetry.max_queue_depth = max(telemetry.max_queue_depth,
                                        queue_depth)
        self._persist_session_stats()

        return [results[key] for key in order]

    # -- reporting ---------------------------------------------------------

    def _stats_path(self):
        return self.cache.root / "stats.json"

    def _persist_session_stats(self):
        """Write the aggregate telemetry snapshot next to the cache.

        Best-effort (``fusion-sim cache stats`` reads it back); skipped
        entirely when the cache is disabled.
        """
        if not self.cache.enabled:
            return
        payload = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "updated_unix": time.time(),
            "telemetry": self.telemetry.snapshot(),
        }
        path = self._stats_path()
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                mode="w", dir=str(path.parent), prefix=".tmp-",
                delete=False)
            with handle as fileobj:
                json.dump(payload, fileobj, indent=1)
            os.replace(handle.name, path)
        except OSError:
            pass

    def load_session_stats(self):
        """Return the last persisted telemetry snapshot, or ``None``."""
        try:
            with open(self._stats_path()) as fileobj:
                return json.load(fileobj)
        except (OSError, ValueError):
            return None


# -- the process-wide engine ----------------------------------------------

_ENGINE = None


def get_engine():
    """Return the process-wide :class:`ExecutionEngine` (created lazily)."""
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = ExecutionEngine()
    return _ENGINE


def configure(jobs=None, cache_enabled=None):
    """Apply CLI/session overrides to the process-wide engine.

    ``jobs=None`` / ``cache_enabled=None`` leave the respective setting
    following the environment (``REPRO_JOBS`` / ``REPRO_NO_CACHE``).
    """
    engine = get_engine()
    if jobs is not None:
        engine.jobs = resolve_jobs(jobs)
    if cache_enabled is not None:
        engine.cache.enabled_override = bool(cache_enabled)
    return engine


def reset_engine():
    """Drop the process-wide engine (tests and CLI isolation)."""
    global _ENGINE
    _ENGINE = None
