"""Core value types shared by every layer of the simulator.

The workload layer emits *trace operations* (:class:`MemOp`, :class:`ComputeOp`,
:class:`PhaseMarker`); the memory hierarchy consumes *accesses* derived from
them.  Addresses are plain integers (virtual on the accelerator tile,
physical on the host side); :func:`block_address` aligns them to cache lines.
"""

from dataclasses import dataclass, field
from enum import Enum, auto

from .units import LINE_SIZE


class AccessType(Enum):
    """Kind of memory access issued to the hierarchy."""

    LOAD = auto()
    STORE = auto()

    @property
    def is_store(self):
        return self is AccessType.STORE


class OpClass(Enum):
    """Operation classes used for the Table 1 instruction-mix breakdown."""

    INT = auto()
    FP = auto()
    LOAD = auto()
    STORE = auto()


def block_address(addr, line_size=LINE_SIZE):
    """Return ``addr`` aligned down to its cache-line base address."""
    return addr & ~(line_size - 1)


def block_offset(addr, line_size=LINE_SIZE):
    """Return the byte offset of ``addr`` within its cache line."""
    return addr & (line_size - 1)


@dataclass(frozen=True)
class MemOp:
    """One memory operation in an accelerator trace.

    Attributes:
        kind: load or store.
        addr: virtual byte address.
        size: access size in bytes (1-8).
        array: name of the logical array touched; used by the working-set
            and sharing analyses (Table 1 %SHR, Figure 6d) and by the
            FUSION-Dx forwarding post-pass.
    """

    kind: AccessType
    addr: int
    size: int = 4
    array: str = ""
    #: Derived fields, precomputed once at construction: every analysis
    #: and protocol layer asks for the line address and the store flag,
    #: so recomputing them per use dominated several hot loops.
    block: int = field(init=False, repr=False, compare=False)
    is_store: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self):
        object.__setattr__(self, "block", block_address(self.addr))
        object.__setattr__(self, "is_store",
                           self.kind is AccessType.STORE)


@dataclass(frozen=True)
class ComputeOp:
    """A run of arithmetic operations between memory operations.

    Aladdin-style activity counts: the accelerator datapath model charges
    ``int_ops + fp_ops`` operations of compute activity and advances the
    cycle model by the dataflow-limited latency.
    """

    int_ops: int = 0
    fp_ops: int = 0

    @property
    def total(self):
        return self.int_ops + self.fp_ops


@dataclass(frozen=True)
class PhaseMarker:
    """Marks an execution-phase boundary inside one function's trace.

    SCRATCH uses phase markers as DMA window hints; the other systems
    ignore them.
    """

    label: str = ""


@dataclass
class FunctionTrace:
    """The dynamic trace of one accelerated function (one AXC invocation).

    Attributes:
        name: function name as listed in Table 1 (e.g. ``"step1"``).
        benchmark: owning benchmark name (e.g. ``"fft"``).
        ops: sequence of :class:`MemOp` / :class:`ComputeOp` / markers in
            program order.
        lease_time: ACC lease length (cycles) assigned to blocks this
            function caches in its L0X — the paper's per-function ``LT``
            column (Tables 1 and 3).
    """

    name: str
    benchmark: str
    ops: list = field(default_factory=list)
    lease_time: int = 500

    def mem_ops(self):
        """Iterate over only the memory operations, in program order."""
        return (op for op in self.ops if isinstance(op, MemOp))

    def compute_ops(self):
        """Iterate over only the compute operations, in program order."""
        return (op for op in self.ops if isinstance(op, ComputeOp))

    @property
    def num_mem_ops(self):
        return sum(1 for _ in self.mem_ops())

    def touched_blocks(self):
        """Return the set of cache-line addresses this function touches.

        Memoised on the trace (read-only by contract once built; the
        lowering layer's ``invalidate_lowered`` drops this cache too):
        every system's dependence/sharing analysis asks again.  Callers
        must treat the set as frozen.
        """
        cached = self.__dict__.get("_touched_blocks")
        if cached is None:
            cached = self.__dict__["_touched_blocks"] = {
                op.block for op in self.mem_ops()}
        return cached

    def dirty_blocks(self):
        """Return the set of cache-line addresses this function writes.

        Memoised like :meth:`touched_blocks`; treat as frozen.
        """
        cached = self.__dict__.get("_dirty_blocks")
        if cached is None:
            cached = self.__dict__["_dirty_blocks"] = {
                op.block for op in self.mem_ops() if op.is_store}
        return cached


@dataclass
class WorkloadTrace:
    """A whole-application trace: an ordered list of function invocations.

    The sequential program migrates between accelerators; each entry is one
    AXC invocation.  ``axc_of`` maps function names to accelerator ids so
    that repeat invocations of the same function land on the same AXC —
    matching the paper's "all accelerators derived from an application are
    collocated on the same accelerator tile".
    """

    benchmark: str
    invocations: list = field(default_factory=list)
    host_input_arrays: list = field(default_factory=list)
    host_output_arrays: list = field(default_factory=list)
    array_ranges: dict = field(default_factory=dict)

    def function_names(self):
        """Return the distinct function names in first-appearance order."""
        seen = []
        for trace in self.invocations:
            if trace.name not in seen:
                seen.append(trace.name)
        return seen

    def axc_of(self, function_name):
        """Return the accelerator id (0-based) hosting ``function_name``."""
        return self.function_names().index(function_name)

    @property
    def num_axcs(self):
        return len(self.function_names())

    def working_set_blocks(self):
        """Union of cache-line addresses touched by any accelerator."""
        blocks = set()
        for trace in self.invocations:
            blocks |= trace.touched_blocks()
        return blocks
