"""Hierarchical statistics registry.

Every component of the simulator records counts into a shared
:class:`StatsRegistry` under dotted names (``"l1x.hits"``,
``"link.l0x_l1x.msg_bytes"``).  The registry supports scoped views,
snapshots, diffs and merging — the experiment layer uses diffs to separate
per-function from whole-run statistics.

Hot-path contract: :meth:`StatsRegistry.counter` (and
:meth:`StatsScope.counter`) return a *bound handle* — a callable closed
over the fully-qualified counter name and the live counter map — so
per-access code paths (ACC/MESI controllers, :class:`repro.accel.core.
AxcCore`, the links) resolve dotted names once at construction instead
of re-formatting ``"{prefix}.{name}"`` on every increment.  A handle
created before :meth:`clear` stays valid afterwards (the counter map is
cleared in place, never replaced).
"""

from collections import defaultdict


class StatsRegistry:
    """A flat map of dotted counter names to numeric values."""

    def __init__(self):
        self._counters = defaultdict(float)

    def add(self, name, amount=1):
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def counter(self, name):
        """Return a bound increment handle for counter ``name``.

        The handle is ``handle(amount=1)``; calling it is equivalent to
        :meth:`add` with the name pre-resolved.  Creating a handle does
        *not* materialise the counter — it first appears (as with
        :meth:`add`) on the first increment.
        """
        counters = self._counters

        def handle(amount=1):
            counters[name] += amount

        handle.counter_name = name
        return handle

    def get(self, name, default=0):
        """Return the value of counter ``name`` (``default`` if absent)."""
        return self._counters.get(name, default)

    def set(self, name, value):
        """Set counter ``name`` to ``value`` (used for gauges)."""
        self._counters[name] = value

    def scope(self, prefix):
        """Return a :class:`StatsScope` that prefixes all counter names."""
        return StatsScope(self, prefix)

    def names(self):
        """Return all counter names, sorted."""
        return sorted(self._counters)

    def snapshot(self):
        """Return a plain-dict copy of all counters."""
        return dict(self._counters)

    def diff(self, earlier_snapshot):
        """Return counters minus an earlier :meth:`snapshot`.

        Counters absent from the earlier snapshot are treated as zero.
        """
        result = {}
        for name, value in self._counters.items():
            delta = value - earlier_snapshot.get(name, 0)
            if delta:
                result[name] = delta
        return result

    def merge(self, other):
        """Add every counter of ``other`` (registry or dict) into this one."""
        items = other.snapshot().items() if isinstance(
            other, StatsRegistry) else other.items()
        for name, value in items:
            self._counters[name] += value

    def total(self, prefix):
        """Sum of the ``prefix`` counter itself plus every counter under
        ``prefix.``.

        The exact-name counter is counted exactly once, and sibling
        prefixes never match: ``total("l1x")`` sums ``"l1x"`` and
        ``"l1x.hits"`` but not ``"l1x_other.x"`` (the dot boundary is
        required) — see the regression tests in ``tests/test_stats.py``.
        """
        exact = prefix.rstrip(".")
        prefix_dot = exact + "."
        total = 0
        for name, value in self._counters.items():
            if name == exact or name.startswith(prefix_dot):
                total += value
        return total

    def subtree(self, prefix):
        """Return a dict of counters under ``prefix`` with it stripped."""
        prefix_dot = prefix if prefix.endswith(".") else prefix + "."
        return {name[len(prefix_dot):]: value
                for name, value in self._counters.items()
                if name.startswith(prefix_dot)}

    def clear(self):
        # In-place clear: bound counter handles keep referencing the
        # live map and stay valid.
        self._counters.clear()

    def __contains__(self, name):
        return name in self._counters

    def __repr__(self):
        return "StatsRegistry({} counters)".format(len(self._counters))


class StatsScope:
    """A view of a :class:`StatsRegistry` under a fixed name prefix.

    Qualified names are cached per scope, so repeat :meth:`add` calls on
    the same counter skip the string formatting entirely.
    """

    def __init__(self, registry, prefix):
        self._registry = registry
        self._prefix = prefix.rstrip(".")
        self._qualified = {}

    def _qualify(self, name):
        qualified = self._qualified.get(name)
        if qualified is None:
            qualified = self._prefix + "." + name
            self._qualified[name] = qualified
        return qualified

    def counter(self, name):
        """Return a bound increment handle for the scoped counter."""
        return self._registry.counter(self._qualify(name))

    def add(self, name, amount=1):
        qualified = self._qualified.get(name)
        if qualified is None:
            qualified = self._prefix + "." + name
            self._qualified[name] = qualified
        self._registry.add(qualified, amount)

    def get(self, name, default=0):
        return self._registry.get(self._qualify(name), default)

    def set(self, name, value):
        self._registry.set(self._qualify(name), value)

    def scope(self, prefix):
        return StatsScope(self._registry, self._qualify(prefix))

    @property
    def prefix(self):
        return self._prefix
