"""Hierarchical statistics registry.

Every component of the simulator records counts into a shared
:class:`StatsRegistry` under dotted names (``"l1x.hits"``,
``"link.l0x_l1x.msg_bytes"``).  The registry supports scoped views,
snapshots, diffs and merging — the experiment layer uses diffs to separate
per-function from whole-run statistics.

Hot-path contract: :meth:`StatsRegistry.counter` (and
:meth:`StatsScope.counter`) return a *bound handle* — a callable closed
over the fully-qualified counter name and the live counter map — so
per-access code paths (ACC/MESI controllers, :class:`repro.accel.core.
AxcCore`, the links) resolve dotted names once at construction instead
of re-formatting ``"{prefix}.{name}"`` on every increment.  A handle
created before :meth:`clear` stays valid afterwards (the counter map is
cleared in place, never replaced).

:meth:`StatsRegistry.flusher` extends the contract to whole *events*:
a flusher binds the full list of ``(name, amount)`` increments one
logical event performs and applies all of them — ``count`` repetitions
at a time — in a single call.  Flushed results are bit-identical to
``count`` sequential per-event calls: amounts that are exact in binary
floating point (integers, and the half-cycle latencies the simulator
uses) are collapsed to one ``+= amount * count`` add, while energy
accumulations (``*_pj`` counters, whose per-event amounts are not
dyadic) are replayed term by term so the rounding sequence matches the
per-event path exactly.
"""

from collections import defaultdict


class PjTrace:
    """A delta recording of every ``*_pj`` increment on a registry.

    The invocation replay cache (``repro.accel.replay``) needs to re-run
    an invocation's energy accumulation *term by term* from a different
    starting value, because ``*_pj`` amounts are not dyadic and float
    rounding depends on the running value.  While a trace is active
    (:meth:`StatsRegistry.begin_pj_trace`), every energy mutation — bound
    handles, :meth:`~StatsRegistry.add`, and all three flusher kinds —
    appends to the trace in program order, compressed at flush
    granularity into per-name ``(amounts, repeat)`` blocks (the same
    shape :func:`compile_event_sequence` produces), so replaying costs
    one inner loop per *flush call* rather than per op.

    Non-additive mutations (:meth:`~StatsRegistry.set`,
    :meth:`~StatsRegistry.merge`, :meth:`~StatsRegistry.clear`) poison
    the trace: a poisoned trace cannot be replayed and the recording is
    discarded.
    """

    __slots__ = ("blocks", "poisoned")

    def __init__(self):
        self.blocks = {}        # name -> [[amounts tuple, repeat], ...]
        self.poisoned = False

    def record(self, name, amounts, repeat):
        blocks = self.blocks.get(name)
        if blocks is None:
            self.blocks[name] = [[amounts, repeat]]
            return
        last = blocks[-1]
        if last[0] == amounts:
            last[1] += repeat
        else:
            blocks.append([amounts, repeat])

    def program(self):
        """Freeze the trace into an immutable replay program."""
        return tuple((name, tuple((amounts, repeat)
                                  for amounts, repeat in blocks))
                     for name, blocks in self.blocks.items())


def compile_event_sequence(events):
    """Compile a program-ordered event sequence into a flush *program*.

    ``events`` is a list of ``(pairs, repeat)``; the result is a
    registry-independent ``(collapsed_items, replay_items)`` pair that
    :meth:`StatsRegistry.sequence_flusher` binds to live counters.
    Splitting compilation from binding lets callers cache the program on
    long-lived objects (the phase engine caches one per compiled phase)
    while every simulation run binds it to its own registry for free.

    Identical ``pairs`` objects recurring across events — the common
    case: a phase's event runs alternate between one load pair-list and
    one store pair-list — are decomposed once and reused.
    """
    collapsed = {}
    replay_blocks = {}          # name -> [(amounts tuple, repeat), ...]
    replay_order = []
    decomposed = {}             # id(pairs) -> (exact items, pj items)
    for pairs, repeat in events:
        decomp = decomposed.get(id(pairs))
        if decomp is None:
            exact = {}
            per_event = {}
            for name, amount in pairs:
                if name.endswith("_pj"):
                    amounts = per_event.get(name)
                    if amounts is None:
                        per_event[name] = [amount]
                    else:
                        amounts.append(amount)
                else:
                    exact[name] = exact.get(name, 0) + amount
            decomp = (list(exact.items()),
                      [(name, tuple(amounts))
                       for name, amounts in per_event.items()])
            decomposed[id(pairs)] = decomp
        exact_items, pj_items = decomp
        for name, amount in exact_items:
            collapsed[name] = collapsed.get(name, 0) + amount * repeat
        for name, amounts in pj_items:
            blocks = replay_blocks.get(name)
            if blocks is None:
                replay_blocks[name] = blocks = []
                replay_order.append(name)
            blocks.append((amounts, repeat))
    return (tuple(collapsed.items()),
            tuple((name, tuple(replay_blocks[name]))
                  for name in replay_order))


def compile_phase_ledger(load_pairs, store_pairs, num_loads, num_stores):
    """Compile a two-event-kind phase ledger into a flush program.

    The phase engine's specialisation of :func:`compile_event_sequence`:
    a phase's counter delta is fully determined by its load pair-list
    (repeated ``num_loads`` times), its store pair-list (``num_stores``
    times) and the program-ordered ``(is_store, count)`` event runs.
    Exact (non-``_pj``) amounts collapse to ``amount * occurrences``;
    energy names keep their per-event amounts per kind, and the flush
    walks the event sequence so same-counter float rounding follows
    program order exactly.  Compilation is O(pairs) — no walk over the
    event sequence at all.

    Returns ``(collapsed_items, pj_items)`` with ``pj_items`` entries of
    ``(name, load_amounts, store_amounts)``; registry-independent, so
    callers cache it on long-lived objects.
    """
    collapsed = {}
    pj = {}
    order = []
    sides = []
    if num_loads:
        sides.append((load_pairs, 0, num_loads))
    if num_stores:
        sides.append((store_pairs, 1, num_stores))
    for pairs, side, occurrences in sides:
        for name, amount in pairs:
            if name.endswith("_pj"):
                record = pj.get(name)
                if record is None:
                    pj[name] = record = [[], []]
                    order.append(name)
                record[side].append(amount)
            else:
                collapsed[name] = collapsed.get(name,
                                                0) + amount * occurrences
    return (tuple(collapsed.items()),
            tuple((name, tuple(pj[name][0]), tuple(pj[name][1]))
                  for name in order))


class StatsRegistry:
    """A flat map of dotted counter names to numeric values."""

    def __init__(self):
        self._counters = defaultdict(float)
        # One-element cell holding the active PjTrace (or None).  The
        # cell object is closed over by bound handles and flushers, so
        # begin/end never invalidates existing handles; the common
        # (no-trace) case costs one list index + None test, and only on
        # ``*_pj`` paths.
        self._pj_trace_cell = [None]

    def begin_pj_trace(self):
        """Start recording ``*_pj`` increments; returns the live trace.

        Only one trace can be active at a time; beginning a new one
        replaces (and implicitly abandons) the old.
        """
        trace = PjTrace()
        self._pj_trace_cell[0] = trace
        return trace

    def end_pj_trace(self):
        """Stop recording and return the finished trace (or ``None``)."""
        trace = self._pj_trace_cell[0]
        self._pj_trace_cell[0] = None
        return trace

    def add(self, name, amount=1):
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount
        if name.endswith("_pj"):
            trace = self._pj_trace_cell[0]
            if trace is not None:
                trace.record(name, (amount,), 1)

    def counter(self, name):
        """Return a bound increment handle for counter ``name``.

        The handle is ``handle(amount=1)``; calling it is equivalent to
        :meth:`add` with the name pre-resolved.  Creating a handle does
        *not* materialise the counter — it first appears (as with
        :meth:`add`) on the first increment.
        """
        counters = self._counters

        if name.endswith("_pj"):
            trace_cell = self._pj_trace_cell

            def handle(amount=1):
                counters[name] += amount
                trace = trace_cell[0]
                if trace is not None:
                    trace.record(name, (amount,), 1)
        else:
            def handle(amount=1):
                counters[name] += amount

        handle.counter_name = name
        return handle

    def flusher(self, pairs):
        """Return a bulk handle applying ``pairs`` of ``(name, amount)``.

        The handle is ``flush(count=1)``; calling it is bit-identical to
        repeating, ``count`` times, one :meth:`add` per pair in order.
        Repeated names are honoured: non-energy amounts to the same
        counter are pre-summed (exact — the simulator only feeds dyadic
        amounts to non-``_pj`` counters), while amounts to ``*_pj``
        energy counters are replayed in the original per-event order so
        float rounding matches the sequential path exactly.
        """
        counters = self._counters
        collapsed = {}
        replayed = []           # (name, [amounts in per-event order])
        replay_index = {}
        for name, amount in pairs:
            if name.endswith("_pj"):
                index = replay_index.get(name)
                if index is None:
                    replay_index[name] = len(replayed)
                    replayed.append((name, [amount]))
                else:
                    replayed[index][1].append(amount)
            else:
                collapsed[name] = collapsed.get(name, 0) + amount
        collapsed_items = list(collapsed.items())
        # Pre-flattened single-event list: the count == 1 case is by far
        # the most frequent (every per-op hit), so it pays one loop over
        # a prebuilt list instead of the two-level iteration.
        single_items = collapsed_items + [
            (name, amount) for name, amounts in replayed
            for amount in amounts]
        traced = [(name, tuple(amounts)) for name, amounts in replayed]
        trace_cell = self._pj_trace_cell

        def flush(count=1):
            if traced:
                trace = trace_cell[0]
                if trace is not None:
                    for name, amounts in traced:
                        trace.record(name, amounts, count)
            if count == 1:
                for name, amount in single_items:
                    counters[name] += amount
                return
            for name, amount in collapsed_items:
                counters[name] += amount * count
            for name, amounts in replayed:
                value = counters[name]
                if len(amounts) == 1:
                    amount = amounts[0]
                    for _ in range(count):
                        value += amount
                else:
                    for _ in range(count):
                        for amount in amounts:
                            value += amount
                counters[name] = value

        flush.pairs = list(pairs)
        return flush

    def sequence_flusher(self, events, program=None):
        """Return a bulk handle replaying a program-ordered event *sequence*.

        ``events`` is a list of ``(pairs, repeat)``: the ``(name,
        amount)`` increments of one event type, repeated ``repeat``
        times before the next event type follows.  Calling the returned
        ``flush()`` is bit-identical to walking the sequence and calling
        :meth:`flusher`\\ (pairs)() once per repetition, in order: exact
        (non-``_pj``) amounts are pre-summed across the whole sequence,
        while every ``*_pj`` energy counter replays its amounts in the
        original per-event order — same-counter float rounding is the
        only ordering that matters, and it is preserved term by term.

        ``program`` (optional) is a precompiled
        :func:`compile_event_sequence` result for ``events`` — callers
        that cache programs on long-lived objects pass it to make the
        handle construction O(1).

        This is the steady-state phase engine's ledger primitive: one
        compiled phase charges its whole counter delta through a single
        prebuilt handle (``docs/simulator.md`` §10).
        """
        counters = self._counters
        if program is None:
            program = compile_event_sequence(events)
        collapsed_items, replay_items = program
        trace_cell = self._pj_trace_cell

        def flush():
            if replay_items:
                trace = trace_cell[0]
                if trace is not None:
                    for name, blocks in replay_items:
                        for amounts, repeat in blocks:
                            trace.record(name, amounts, repeat)
            for name, amount in collapsed_items:
                counters[name] += amount
            for name, blocks in replay_items:
                value = counters[name]
                for amounts, repeat in blocks:
                    if len(amounts) == 1:
                        amount = amounts[0]
                        for _ in range(repeat):
                            value += amount
                    else:
                        for _ in range(repeat):
                            for amount in amounts:
                                value += amount
                counters[name] = value

        flush.events = events
        flush.program = program
        return flush

    def phase_flusher(self, event_seq, program):
        """Bind a :func:`compile_phase_ledger` program to this registry.

        ``event_seq`` is the phase's program-ordered ``(is_store,
        count)`` runs; calling the returned ``flush()`` is bit-identical
        to replaying the per-op flushers over the sequence (exact
        amounts pre-summed, ``*_pj`` rounding replayed in program
        order).  Binding is O(1) — the phase engine compiles the
        program once per phase and rebinds it in every simulation run.
        """
        counters = self._counters
        collapsed_items, pj_items = program
        trace_cell = self._pj_trace_cell

        def flush():
            if pj_items:
                trace = trace_cell[0]
                if trace is not None:
                    for name, load_amounts, store_amounts in pj_items:
                        for is_store, count in event_seq:
                            amounts = (store_amounts if is_store
                                       else load_amounts)
                            if amounts:
                                trace.record(name, amounts, count)
            for name, amount in collapsed_items:
                counters[name] += amount
            for name, load_amounts, store_amounts in pj_items:
                value = counters[name]
                for is_store, count in event_seq:
                    amounts = store_amounts if is_store else load_amounts
                    if not amounts:
                        continue
                    if len(amounts) == 1:
                        amount = amounts[0]
                        for _ in range(count):
                            value += amount
                    else:
                        for _ in range(count):
                            for amount in amounts:
                                value += amount
                counters[name] = value

        flush.program = program
        return flush

    def window_flusher(self, program):
        """Bind a whole-window bulk ledger (the vector rung's apply).

        ``program`` is ``(collapsed_items, pj_folds)`` from
        :func:`repro.workloads.vector.compile_window_ledger`: exact
        amounts pre-summed over every phase of the window, and one
        serial fold closure per energy counter over its program-ordered
        per-op amounts (``numpy.add.accumulate`` — bit-identical to the
        per-phase replay loops).  Callers must only flush this while no
        :class:`PjTrace` is active (check :attr:`pj_trace_active`):
        the bulk fold cannot reproduce the per-event-run recording
        granularity, so recordings fall back to per-phase ledgers.
        """
        counters = self._counters
        collapsed_items, pj_folds = program

        def flush():
            for name, amount in collapsed_items:
                counters[name] += amount
            for name, fold in pj_folds:
                counters[name] = fold(counters[name])

        flush.program = program
        return flush

    @property
    def pj_trace_active(self):
        """True while a :class:`PjTrace` is recording ``*_pj`` adds."""
        return self._pj_trace_cell[0] is not None

    @property
    def registry(self):
        """The backing registry (self; mirrors :attr:`StatsScope.registry`
        so code holding either a registry or a scope can reach the root)."""
        return self

    def qualified(self, name):
        """Return the fully-qualified counter name (identity here)."""
        return name

    def get(self, name, default=0):
        """Return the value of counter ``name`` (``default`` if absent)."""
        return self._counters.get(name, default)

    def set(self, name, value):
        """Set counter ``name`` to ``value`` (used for gauges)."""
        self._counters[name] = value
        trace = self._pj_trace_cell[0]
        if trace is not None:
            trace.poisoned = True

    def scope(self, prefix):
        """Return a :class:`StatsScope` that prefixes all counter names."""
        return StatsScope(self, prefix)

    def names(self):
        """Return all counter names, sorted."""
        return sorted(self._counters)

    def snapshot(self):
        """Return a plain-dict copy of all counters."""
        return dict(self._counters)

    def diff(self, earlier_snapshot):
        """Return counters minus an earlier :meth:`snapshot`.

        Counters absent from the earlier snapshot are treated as zero.
        """
        result = {}
        for name, value in self._counters.items():
            delta = value - earlier_snapshot.get(name, 0)
            if delta:
                result[name] = delta
        return result

    def merge(self, other):
        """Add every counter of ``other`` (registry or dict) into this one."""
        trace = self._pj_trace_cell[0]
        if trace is not None:
            trace.poisoned = True
        items = other.snapshot().items() if isinstance(
            other, StatsRegistry) else other.items()
        for name, value in items:
            self._counters[name] += value

    def bulk_add(self, items):
        """Add ``(name, amount)`` deltas in order (replay fast path).

        Exact for the dyadic amounts the simulator feeds non-``_pj``
        counters; callers must not route energy deltas through this —
        use :meth:`replay_pj` so float rounding follows the recorded
        term order.
        """
        counters = self._counters
        for name, amount in items:
            counters[name] += amount

    def replay_pj(self, program):
        """Replay a frozen :meth:`PjTrace.program` term by term.

        Per name, the running value accumulates every recorded amount in
        the original program order starting from the counter's *current*
        value — bit-identical to re-running the recorded invocation's
        energy adds against this registry.
        """
        counters = self._counters
        for name, blocks in program:
            value = counters[name]
            for amounts, repeat in blocks:
                if len(amounts) == 1:
                    amount = amounts[0]
                    for _ in range(repeat):
                        value += amount
                else:
                    for _ in range(repeat):
                        for amount in amounts:
                            value += amount
            counters[name] = value

    def total(self, prefix):
        """Sum of the ``prefix`` counter itself plus every counter under
        ``prefix.``.

        The exact-name counter is counted exactly once, and sibling
        prefixes never match: ``total("l1x")`` sums ``"l1x"`` and
        ``"l1x.hits"`` but not ``"l1x_other.x"`` (the dot boundary is
        required) — see the regression tests in ``tests/test_stats.py``.
        """
        exact = prefix.rstrip(".")
        prefix_dot = exact + "."
        total = 0
        for name, value in self._counters.items():
            if name == exact or name.startswith(prefix_dot):
                total += value
        return total

    def subtree(self, prefix):
        """Return a dict of counters under ``prefix`` with it stripped."""
        prefix_dot = prefix if prefix.endswith(".") else prefix + "."
        return {name[len(prefix_dot):]: value
                for name, value in self._counters.items()
                if name.startswith(prefix_dot)}

    def clear(self):
        # In-place clear: bound counter handles keep referencing the
        # live map and stay valid.
        trace = self._pj_trace_cell[0]
        if trace is not None:
            trace.poisoned = True
        self._counters.clear()

    def __contains__(self, name):
        return name in self._counters

    def __repr__(self):
        return "StatsRegistry({} counters)".format(len(self._counters))


class StatsScope:
    """A view of a :class:`StatsRegistry` under a fixed name prefix.

    Qualified names are cached per scope, so repeat :meth:`add` calls on
    the same counter skip the string formatting entirely.
    """

    def __init__(self, registry, prefix):
        self._registry = registry
        self._prefix = prefix.rstrip(".")
        self._qualified = {}

    def _qualify(self, name):
        qualified = self._qualified.get(name)
        if qualified is None:
            qualified = self._prefix + "." + name
            self._qualified[name] = qualified
        return qualified

    def counter(self, name):
        """Return a bound increment handle for the scoped counter."""
        return self._registry.counter(self._qualify(name))

    def add(self, name, amount=1):
        qualified = self._qualified.get(name)
        if qualified is None:
            qualified = self._prefix + "." + name
            self._qualified[name] = qualified
        self._registry.add(qualified, amount)

    def get(self, name, default=0):
        return self._registry.get(self._qualify(name), default)

    def set(self, name, value):
        self._registry.set(self._qualify(name), value)

    def scope(self, prefix):
        return StatsScope(self._registry, self._qualify(prefix))

    def flusher(self, pairs):
        """Bulk handle over scope-relative ``(name, amount)`` pairs."""
        return self._registry.flusher(
            [(self._qualify(name), amount) for name, amount in pairs])

    @property
    def registry(self):
        """The root :class:`StatsRegistry` this scope writes into."""
        return self._registry

    def qualified(self, name):
        """Return the fully-qualified (prefixed) counter name."""
        return self._qualify(name)

    @property
    def prefix(self):
        return self._prefix
