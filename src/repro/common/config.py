"""System configuration (the paper's Table 2) as validated dataclasses.

Two presets are provided:

* :func:`small_config` — the default evaluated configuration
  (4 KB scratchpad / L0X, 64 KB 16-bank shared L1X).
* :func:`large_config` — the Figure 7 "AXC-Large" configuration
  (8 KB L0X, 256 KB L1X).
"""

import hashlib
import json
from dataclasses import dataclass, field, fields, is_dataclass, replace
from enum import Enum, auto

from .errors import ConfigError
from .units import KB, MB, LINE_SIZE


class WritePolicy(Enum):
    """Write policy of a cache level (Section 5.3 studies this at the L0X)."""

    WRITE_BACK = auto()
    WRITE_THROUGH = auto()


def _require(condition, message):
    if not condition:
        raise ConfigError(message)


def _is_power_of_two(value):
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level.

    Attributes:
        size_bytes: total data capacity.
        ways: set associativity.
        line_size: line size in bytes (64 everywhere, Table 2).
        banks: number of banks (affects access energy, not correctness).
        hit_latency: load-to-use latency of a hit, in cycles.
        write_policy: write-back (default) or write-through.
        timestamp_bits: width of the ACC timestamp field added to each
            line (0 for non-ACC caches).  The paper charges a 15 % tag
            energy overhead for the 32-bit check.
    """

    size_bytes: int
    ways: int
    line_size: int = LINE_SIZE
    banks: int = 1
    hit_latency: int = 1
    write_policy: WritePolicy = WritePolicy.WRITE_BACK
    timestamp_bits: int = 0

    def __post_init__(self):
        _require(self.size_bytes >= self.line_size,
                 "cache smaller than one line")
        _require(_is_power_of_two(self.line_size), "line size not power of 2")
        _require(self.size_bytes % (self.ways * self.line_size) == 0,
                 "capacity not divisible by ways * line_size")
        _require(_is_power_of_two(self.num_sets),
                 "number of sets must be a power of two")
        _require(self.banks >= 1, "banks must be >= 1")
        _require(self.hit_latency >= 1, "hit latency must be >= 1")

    @property
    def num_sets(self):
        return self.size_bytes // (self.ways * self.line_size)

    @property
    def num_lines(self):
        return self.size_bytes // self.line_size

    def set_index(self, addr):
        """Return the set index for byte address ``addr``."""
        return (addr // self.line_size) % self.num_sets


@dataclass(frozen=True)
class ScratchpadConfig:
    """Per-accelerator scratchpad (SCRATCH system)."""

    size_bytes: int = 4 * KB
    access_latency: int = 1

    def __post_init__(self):
        _require(self.size_bytes >= LINE_SIZE, "scratchpad too small")
        _require(self.size_bytes % LINE_SIZE == 0,
                 "scratchpad size must be line-aligned")

    @property
    def num_blocks(self):
        return self.size_bytes // LINE_SIZE


@dataclass(frozen=True)
class DmaConfig:
    """Oracle coherent DMA controller (resides at the host LLC, Table 2).

    ``setup_latency`` models the controller's per-transfer state-machine
    and L2 initiation cost; ``bytes_per_cycle`` the raw link bandwidth
    into/out of the scratchpad; ``per_block_cycles`` the effective L2
    bank/ring occupancy per line — the 32-entry command queue does not
    fully pipeline NUCA reads, so block fetches dominate the stream time.
    """

    setup_latency: int = 120
    bytes_per_cycle: int = 8
    per_block_cycles: int = 24
    #: Push DMA double-buffers the scratchpad (half holds the live
    #: window, half receives the next transfer).  Disabling it is an
    #: ablation: windows grow, transfers shrink, but the prefetch
    #: overlap a real engine gets from double buffering is lost.
    double_buffered: bool = True


@dataclass(frozen=True)
class DramConfig:
    """Main memory (Table 2: 4-channel open-page, 200-cycle latency)."""

    channels: int = 4
    latency: int = 200
    open_page_latency: int = 120
    page_size: int = 4 * KB
    cmd_queue_entries: int = 32


@dataclass(frozen=True)
class HostConfig:
    """Host OOO core and its caches (Table 2)."""

    rob_entries: int = 96
    issue_width: int = 4
    load_queue: int = 32
    store_queue: int = 32
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * KB, 4, hit_latency=3))
    l2_size_bytes: int = 4 * MB
    l2_ways: int = 16
    l2_banks: int = 8
    l2_avg_latency: int = 20


@dataclass(frozen=True)
class LinkEnergyConfig:
    """Interconnect energy parameters (Table 2, pJ/byte)."""

    axc_l1x_pj_per_byte: float = 0.4
    l1x_l2_pj_per_byte: float = 6.0
    l0x_l0x_pj_per_byte: float = 0.1   # FUSION-Dx direct forwarding link


@dataclass(frozen=True)
class AcceleratorTileConfig:
    """The accelerator tile: L0Xs, shared L1X and translation hardware."""

    l0x: CacheConfig = field(default_factory=lambda: CacheConfig(
        4 * KB, 4, hit_latency=1, timestamp_bits=32))
    l1x: CacheConfig = field(default_factory=lambda: CacheConfig(
        64 * KB, 8, banks=16, hit_latency=4, timestamp_bits=32))
    scratchpad: ScratchpadConfig = field(default_factory=ScratchpadConfig)
    tlb_entries: int = 64
    rmap_entries: int = 1024
    default_lease: int = 500
    #: When non-zero, overrides every function's per-trace lease time
    #: (the lease-length ablation).
    lease_override: int = 0
    #: ACC lease policy: "fixed" (the paper) or "adaptive" (per-set
    #: multiplicative adjustment — see repro.coherence.lease_policy).
    lease_policy: str = "fixed"
    #: Model L1X bank-conflict serialisation (repro.mem.banking).  Off
    #: by default: with one AXC active at a time conflicts are
    #: negligible; enable for FUSION-PIPE / contention studies.
    model_bank_conflicts: bool = False


@dataclass(frozen=True)
class PolicyConfig:
    """The per-invocation coherence policy engine (POLICY system).

    ``selector`` names how the strategy is chosen each invocation:

    * ``"static"`` — always ``static_strategy`` (bit-identical to the
      corresponding legacy system; gated by the golden grids);
    * ``"schedule"`` — invocation ``i`` runs ``schedule[i]`` (clamped to
      the last entry); this is the oracle evaluator's vehicle;
    * ``"bandit"`` — epsilon-greedy contextual bandit over
      ``strategies`` fed by invocation telemetry;
    * ``"ucb"`` — the same bandit with a UCB exploration bonus
      (``ucb_c``) instead of epsilon randomness.
    """

    selector: str = "static"
    #: Strategy key used by the static selector.
    static_strategy: str = "fusion"
    #: Per-invocation strategy keys for the schedule selector.
    schedule: tuple = ()
    #: Candidate arms for the learning selectors.
    strategies: tuple = ("scratch", "shared", "fusion", "fusion-dx")
    #: Epsilon-greedy exploration rate (bandit selector).
    epsilon: float = 0.1
    #: UCB exploration weight (ucb selector).
    ucb_c: float = 1.0
    #: Seed for the bandit's explicit RNG — policy runs must stay
    #: deterministic under --jobs.
    seed: int = 20150613
    #: Training passes for in-process bandit training; with untried-
    #: first exploration each arm needs one pass before greedy pays.
    episodes: int = 5
    #: Always record InvocationTelemetry (learning selectors record
    #: regardless; this forces it for static/schedule runs).
    record_telemetry: bool = False

    def __post_init__(self):
        # JSON overrides hand sequences in as lists; keep the frozen
        # config hashable and its fingerprint canonical.
        object.__setattr__(self, "schedule", tuple(self.schedule))
        object.__setattr__(self, "strategies", tuple(self.strategies))
        if self.selector not in ("static", "schedule", "bandit", "ucb"):
            raise ConfigError(
                "unknown policy selector {!r}".format(self.selector))
        if self.selector == "schedule" and not self.schedule:
            raise ConfigError("schedule selector needs a schedule")
        if not self.strategies:
            raise ConfigError("policy needs at least one strategy")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigError(
                "epsilon {!r} outside [0, 1]".format(self.epsilon))
        if self.ucb_c < 0:
            raise ConfigError("negative ucb_c {!r}".format(self.ucb_c))
        if self.episodes < 1:
            raise ConfigError(
                "episodes {!r} must be >= 1".format(self.episodes))


@dataclass(frozen=True)
class SystemConfig:
    """Complete configuration of one simulated system (Table 2)."""

    name: str = "small"
    host: HostConfig = field(default_factory=HostConfig)
    tile: AcceleratorTileConfig = field(default_factory=AcceleratorTileConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    dma: DmaConfig = field(default_factory=DmaConfig)
    link: LinkEnergyConfig = field(default_factory=LinkEnergyConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)

    def with_l0x_write_policy(self, policy):
        """Return a copy with the L0X write policy replaced (Table 4)."""
        tile = replace(self.tile, l0x=replace(self.tile.l0x,
                                              write_policy=policy))
        return replace(self, tile=tile)

    def with_lease(self, lease):
        """Return a copy forcing every function's ACC lease to ``lease``
        (the lease-length ablation)."""
        return replace(self, tile=replace(self.tile, default_lease=lease,
                                          lease_override=lease))

    def with_lease_policy(self, policy_name):
        """Return a copy using the named ACC lease policy
        ("fixed" or "adaptive")."""
        return replace(self, tile=replace(self.tile,
                                          lease_policy=policy_name))

    def with_policy(self, **kwargs):
        """Return a copy with :class:`PolicyConfig` fields replaced,
        e.g. ``config.with_policy(selector="bandit", epsilon=0.2)``."""
        return replace(self, policy=replace(self.policy, **kwargs))


def stable_config_dict(obj):
    """Canonical JSON-able representation of a config value.

    Recurses through dataclasses, enums, mappings and sequences so two
    structurally-equal configs always serialise identically — the basis
    of the persistent result cache's content-hash keys
    (:func:`config_fingerprint`).  Raises :class:`ConfigError` for
    values with no stable representation (callables, open handles, …),
    which the engine treats as "uncacheable: run serially".
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {f.name: stable_config_dict(getattr(obj, f.name))
                       for f in fields(obj)},
        }
    if isinstance(obj, Enum):
        return {"__enum__": type(obj).__name__, "name": obj.name}
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips exactly; json's default float formatting does
        # too on CPython, but be explicit about the contract.
        return {"__float__": repr(obj)}
    if isinstance(obj, (list, tuple)):
        return [stable_config_dict(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(
            json.dumps(stable_config_dict(item), sort_keys=True)
            for item in obj)}
    if isinstance(obj, dict):
        return {"__dict__": sorted(
            (str(key), stable_config_dict(value))
            for key, value in obj.items())}
    raise ConfigError(
        "cannot fingerprint config value of type {!r}".format(
            type(obj).__name__))


def config_fingerprint(config):
    """Return a stable content hash (sha256 hex) of a config dataclass.

    Equal configs — including copies built independently via
    :func:`dataclasses.replace` chains — hash identically; any field
    change, however deep, changes the hash.
    """
    payload = json.dumps(stable_config_dict(config), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def small_config():
    """Default configuration: 4 KB L0X/scratchpad, 64 KB 16-bank L1X."""
    return SystemConfig(name="small")


def large_config():
    """Figure 7 "AXC-Large": 8 KB L0X, 256 KB L1X (+2 cycles latency)."""
    tile = AcceleratorTileConfig(
        l0x=CacheConfig(8 * KB, 4, hit_latency=1, timestamp_bits=32),
        l1x=CacheConfig(256 * KB, 8, banks=16, hit_latency=6,
                        timestamp_bits=32),
        scratchpad=ScratchpadConfig(size_bytes=8 * KB),
    )
    return SystemConfig(name="large", tile=tile)
