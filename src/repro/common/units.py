"""Unit helpers used throughout the simulator.

All sizes are bytes, all energies picojoules (pJ), all times cycles of the
2 GHz host clock (Table 2 of the paper) unless a name says otherwise.
"""

KB = 1024
MB = 1024 * KB

#: Cache line size used by every cache in the hierarchy (bytes).
LINE_SIZE = 64

#: Network flit size used for Table 4 bandwidth accounting (bytes).
FLIT_SIZE = 8

#: Size of a coherence control message (request, ack, eviction notice) in
#: bytes.  One flit, matching the paper's single-flit control messages.
CONTROL_MSG_SIZE = 8

#: Host clock frequency in Hz (Table 2).
CLOCK_HZ = 2_000_000_000


def bytes_to_flits(num_bytes):
    """Return the number of 8-byte flits needed to carry ``num_bytes``."""
    return (num_bytes + FLIT_SIZE - 1) // FLIT_SIZE


def to_kb(num_bytes):
    """Return ``num_bytes`` expressed in kilobytes as a float."""
    return num_bytes / KB


def pj_to_uj(pj):
    """Convert picojoules to microjoules."""
    return pj / 1e6


def cycles_to_us(cycles):
    """Convert host cycles to microseconds at the Table 2 clock."""
    return cycles / CLOCK_HZ * 1e6
