"""Shared value types, configuration and statistics infrastructure."""

from . import config_io
from .config import (
    AcceleratorTileConfig,
    CacheConfig,
    DmaConfig,
    DramConfig,
    HostConfig,
    LinkEnergyConfig,
    PolicyConfig,
    ScratchpadConfig,
    SystemConfig,
    WritePolicy,
    large_config,
    small_config,
)
from .errors import (
    ConfigError,
    ProtocolError,
    ReproError,
    SimulationError,
    TraceError,
    TranslationError,
)
from .stats import StatsRegistry, StatsScope
from .types import (
    AccessType,
    ComputeOp,
    FunctionTrace,
    MemOp,
    OpClass,
    PhaseMarker,
    WorkloadTrace,
    block_address,
    block_offset,
)
from .units import (
    CONTROL_MSG_SIZE,
    FLIT_SIZE,
    KB,
    LINE_SIZE,
    MB,
    bytes_to_flits,
    to_kb,
)

__all__ = [
    "config_io",
    "AcceleratorTileConfig", "CacheConfig", "DmaConfig", "DramConfig",
    "HostConfig", "LinkEnergyConfig", "PolicyConfig", "ScratchpadConfig",
    "SystemConfig",
    "WritePolicy", "large_config", "small_config",
    "ConfigError", "ProtocolError", "ReproError", "SimulationError",
    "TraceError", "TranslationError",
    "StatsRegistry", "StatsScope",
    "AccessType", "ComputeOp", "FunctionTrace", "MemOp", "OpClass",
    "PhaseMarker", "WorkloadTrace", "block_address", "block_offset",
    "CONTROL_MSG_SIZE", "FLIT_SIZE", "KB", "LINE_SIZE", "MB",
    "bytes_to_flits", "to_kb",
]
