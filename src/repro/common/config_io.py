"""SystemConfig persistence: JSON round-trip for experiment configs.

Design-space studies accumulate configurations; this module lets them
live in version-controlled JSON instead of Python:

    fusion-sim run FUSION fft --config my_tile.json

Only values that differ from the defaults need to appear in the file —
the loader starts from :func:`small_config` (or any base) and applies
the overrides field by field, validating through the same frozen
dataclasses as programmatic construction.
"""

import json
from dataclasses import fields, is_dataclass, replace

from .config import SystemConfig, WritePolicy, small_config
from .errors import ConfigError


def _encode(value):
    if isinstance(value, WritePolicy):
        return value.name
    if is_dataclass(value):
        return {f.name: _encode(getattr(value, f.name))
                for f in fields(value)}
    return value


def config_to_dict(config):
    """Full dictionary form of a :class:`SystemConfig`."""
    return _encode(config)


def config_to_json(config, indent=2):
    return json.dumps(config_to_dict(config), indent=indent,
                      sort_keys=True)


def _apply(instance, overrides, path=""):
    """Apply a nested override dict onto a (frozen) dataclass."""
    if not isinstance(overrides, dict):
        raise ConfigError("expected an object at {!r}, got {!r}".format(
            path or "<root>", overrides))
    known = {f.name: f for f in fields(instance)}
    changes = {}
    for key, value in overrides.items():
        if key not in known:
            raise ConfigError("unknown config field {!r}".format(
                (path + "." + key).lstrip(".")))
        current = getattr(instance, key)
        if is_dataclass(current):
            if not isinstance(value, dict):
                raise ConfigError(
                    "expected an object for {!r}, got {!r}".format(
                        (path + "." + key).lstrip("."), value))
            changes[key] = _apply(current, value,
                                  (path + "." + key).lstrip("."))
        elif isinstance(current, WritePolicy) or key == "write_policy":
            try:
                changes[key] = WritePolicy[value]
            except KeyError:
                raise ConfigError(
                    "unknown write policy {!r}".format(value)) from None
        else:
            changes[key] = value
    return replace(instance, **changes)


def config_from_dict(overrides, base=None):
    """Build a :class:`SystemConfig` from overrides on ``base``.

    Validation errors from the dataclasses (bad geometry, etc.)
    propagate as :class:`ConfigError`.
    """
    base = base or small_config()
    return _apply(base, overrides)


def config_from_json(text, base=None):
    try:
        overrides = json.loads(text)
    except json.JSONDecodeError as error:
        raise ConfigError("invalid config JSON: {}".format(error))
    return config_from_dict(overrides, base)


def load_config(path, base=None):
    """Load a config-override file from ``path``."""
    with open(path) as fileobj:
        return config_from_json(fileobj.read(), base)


def save_config(config, path):
    """Write the full configuration to ``path`` as JSON."""
    with open(path, "w") as fileobj:
        fileobj.write(config_to_json(config) + "\n")
