"""Exception hierarchy for the FUSION reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class TraceError(ReproError):
    """A workload trace is malformed or violates an invariant."""


class ProtocolError(ReproError):
    """A coherence protocol invariant was violated.

    Raising (rather than silently patching state) is deliberate: protocol
    bugs in a simulator corrupt every downstream statistic, so we fail fast.

    The optional keyword context (``agent``, ``block``, ``epoch``,
    ``invariant``) travels with the exception so the model checker
    (:mod:`repro.check`) and normal-run failures alike can print *which*
    agent broke *which* invariant on *which* block — a bare message forces
    whoever hits the error to re-derive all of that from a stack trace.
    """

    def __init__(self, message, *, agent=None, block=None, epoch=None,
                 invariant=None):
        super().__init__(message)
        self.message = message
        self.agent = agent
        self.block = block
        self.epoch = epoch
        self.invariant = invariant

    @property
    def context(self):
        """The populated context fields as a dict (stable key order)."""
        items = (("agent", self.agent), ("block", self.block),
                 ("epoch", self.epoch), ("invariant", self.invariant))
        return {key: value for key, value in items if value is not None}

    def __str__(self):
        context = self.context
        if not context:
            return self.message
        rendered = " ".join(
            "{}={:#x}".format(key, value)
            if key == "block" and isinstance(value, int)
            else "{}={}".format(key, value)
            for key, value in context.items())
        return "{} [{}]".format(self.message, rendered)

    def __reduce__(self):
        # Exceptions cross process boundaries (the execution engine's
        # worker pools); the default reduction re-calls
        # ``cls(*self.args)`` and would drop the keyword context.
        return (_rebuild_protocol_error,
                (type(self), self.message, self.agent, self.block,
                 self.epoch, self.invariant))


def _rebuild_protocol_error(cls, message, agent, block, epoch, invariant):
    return cls(message, agent=agent, block=block, epoch=epoch,
               invariant=invariant)


#: The name the model checker and litmus harness use for protocol
#: violations; an alias so call sites read as what they mean.
CoherenceError = ProtocolError


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class ExecutionError(ReproError):
    """The execution engine could not complete a simulation point.

    Raised in strict batch mode after every recovery path (pool respawn
    retries, serial fallback) has been exhausted; non-strict batches
    return a :class:`repro.sim.results.FailedResult` instead.
    """


class RunTimeout(ExecutionError):
    """A simulation point exceeded ``REPRO_RUN_TIMEOUT``/``--timeout``."""


class TranslationError(ReproError):
    """Virtual memory translation failed (no mapping, synonym violation)."""
