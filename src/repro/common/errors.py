"""Exception hierarchy for the FUSION reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is inconsistent or out of range."""


class TraceError(ReproError):
    """A workload trace is malformed or violates an invariant."""


class ProtocolError(ReproError):
    """A coherence protocol invariant was violated.

    Raising (rather than silently patching state) is deliberate: protocol
    bugs in a simulator corrupt every downstream statistic, so we fail fast.
    """


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class ExecutionError(ReproError):
    """The execution engine could not complete a simulation point.

    Raised in strict batch mode after every recovery path (pool respawn
    retries, serial fallback) has been exhausted; non-strict batches
    return a :class:`repro.sim.results.FailedResult` instead.
    """


class RunTimeout(ExecutionError):
    """A simulation point exceeded ``REPRO_RUN_TIMEOUT``/``--timeout``."""


class TranslationError(ReproError):
    """Virtual memory translation failed (no mapping, synonym violation)."""
