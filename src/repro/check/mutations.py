"""Seeded protocol mutations: the checker's self-test.

A model checker that has never caught a bug proves nothing.  Each
:class:`Mutation` here re-introduces one *specific, plausible* coherence
bug — a dropped writeback, a skewed timestamp, a skipped invalidation —
by wrapping controller methods on a freshly built world.  The self-test
(:func:`self_test`) then demands that bounded exploration catches every
one of them on the curated catalog.

Mutations are applied *after* the world's shadow instrumentation, i.e.
outermost: the shadow records what the protocol actually granted while
the mutation corrupts what the rest of the system sees — exactly how a
real implementation bug behaves.
"""

from dataclasses import dataclass

from ..common.types import block_address
from .explorer import explore
from .scenarios import catalog

#: Cycles added to the lease the mutated controller reports upward.
#: Large enough that any scripted ``advance`` still lands inside the
#: skewed lease, so the stale hit is reachable on every schedule.
LTIME_SKEW = 5000


@dataclass(frozen=True)
class Mutation:
    """One seeded bug: a name, the kinds it applies to, and an applier."""

    name: str
    kinds: tuple
    description: str
    expected: tuple     # invariant names allowed to catch it
    _apply: object

    def apply(self, world):
        self._apply(world)


def _drop_self_downgrade(world):
    for l0x in world.l0xs:
        l0x._self_downgrade = lambda line, now: 0


def _skew_ltime(world):
    real = world.l1x.acquire

    def acquire(vblock, now, lease, is_write, pid=0):
        latency, epoch_end = real(vblock, now, lease, is_write, pid)
        return latency, epoch_end + LTIME_SKEW

    world.l1x.acquire = acquire


def _skip_phase_guard(world):
    for l0x in world.l0xs:
        real = l0x.phase_quote

        def phase_quote(phase, now, horizon, interval, _l0x=l0x,
                        _real=real):
            # Show the guard every resident line with its lease skewed
            # LTIME_SKEW cycles into the future, then restore it: the
            # cover check passes on expired epochs while the shadow
            # model still knows the truth.
            bumped = []
            for info in phase.block_info:
                line = _l0x.cache._lines.get(info[0])
                if line is not None and line.lease is not None:
                    line.lease += LTIME_SKEW
                    bumped.append(line)
            try:
                return _real(phase, now, horizon, interval)
            finally:
                for line in bumped:
                    line.lease -= LTIME_SKEW

        l0x.phase_quote = phase_quote


def _skip_batch_guard(world):
    for l0x in world.l0xs:
        real = l0x.phase_quote_batch

        def phase_quote_batch(window, now, horizon, interval, _l0x=l0x,
                              _real=real):
            # Show the batched guard every line of the window with its
            # lease skewed LTIME_SKEW cycles into the future, then
            # restore it: the vectorised cover compare accepts phases
            # whose epochs are dead while the shadow model still knows
            # the truth.
            bumped = []
            for block in window.row_blocks:
                line = _l0x.cache._lines.get(block)
                if line is not None and line.lease is not None \
                        and line not in bumped:
                    line.lease += LTIME_SKEW
                    bumped.append(line)
            try:
                return _real(window, now, horizon, interval)
            finally:
                for line in bumped:
                    line.lease -= LTIME_SKEW

        l0x.phase_quote_batch = phase_quote_batch


def _stale_replay_fingerprint(world):
    real = world._replay_match

    def replay_match(ordinal, recording, now):
        # Show the replay guard every L0X line with its lease skewed
        # LTIME_SKEW cycles into the future, then restore it: the
        # recorded COVERS class matches on expired epochs while the
        # shadow model still knows the true epoch end.
        l0x = world.l0xs[ordinal]
        bumped = []
        for line in l0x.cache.lines():
            if line.lease is not None:
                line.lease += LTIME_SKEW
                bumped.append(line)
        try:
            return real(ordinal, recording, now)
        finally:
            for line in bumped:
                line.lease -= LTIME_SKEW

    world._replay_match = replay_match


def _skip_invalidation(world):
    agent = world.l1x if world.kind in ("acc", "dx") else world.shared
    agent.handle_forwarded_request = \
        lambda pblock, now, is_store: (0, False)


def _corrupt_sharer_bit(world):
    real = world.host.fetch_for_tile

    def fetch_for_tile(pblock, now=0, tile="tile"):
        latency = real(pblock, now, tile)
        entry = world.host.directory.lookup(block_address(pblock))
        if entry is not None:
            entry.sharers.discard(tile)
            if entry.owner == tile:
                entry.owner = None
        return latency

    world.host.fetch_for_tile = fetch_for_tile


def _no_gtime_update(world):
    real = world.l1x._grant

    def grant(line, grant_time, lease, is_write):
        epoch_end = real(line, grant_time, lease, is_write)
        line.gtime = grant_time
        return epoch_end

    world.l1x._grant = grant


def _drop_write_epoch_lock(world):
    real = world.l1x._grant

    def grant(line, grant_time, lease, is_write):
        epoch_end = real(line, grant_time, lease, is_write)
        line.write_epoch_end = None
        return epoch_end

    world.l1x._grant = grant


def _forward_keep_dirty(world):
    for l0x in world.l0xs:
        real = l0x.forward_line_obj

        def forward_line_obj(line, consumer, now, _l0x=l0x, _real=real):
            block, lease = line.block, line.lease
            _real(line, consumer, now)
            _l0x.cache.install(block, state="W", dirty=True,
                               lease=lease, pid=_l0x.pid)

        l0x.forward_line_obj = forward_line_obj


def _rmap_drop(world):
    rmap = world.l1x.rmap
    real = rmap.record_fill

    def record_fill(pblock, vblock):
        synonym = real(pblock, vblock)
        rmap._map.pop(pblock, None)
        return synonym

    rmap.record_fill = record_fill


_ALL = (
    Mutation(
        name="drop-self-downgrade",
        kinds=("acc", "dx"),
        description="Dirty L0X lines are never written back or "
                    "forwarded: self-downgrade becomes a no-op.",
        expected=("conservation", "quiescence"),
        _apply=_drop_self_downgrade),
    Mutation(
        name="skew-ltime",
        kinds=("acc", "dx"),
        description="The L1X reports every granted epoch as ending "
                    "{} cycles later than it does, so L0X lines "
                    "outlive their leases.".format(LTIME_SKEW),
        expected=("stale-epoch-use",),
        _apply=_skew_ltime),
    Mutation(
        name="phase-guard-skip",
        kinds=("acc", "dx"),
        description="The steady-state phase guard sees every lease "
                    "{} cycles longer than granted, so whole windows "
                    "are served from expired epochs.".format(LTIME_SKEW),
        expected=("stale-epoch-use",),
        _apply=_skip_phase_guard),
    Mutation(
        name="batch-guard-skip",
        kinds=("acc", "dx"),
        description="The batched (vector-rung) quote guard sees every "
                    "lease {} cycles longer than granted, so whole "
                    "multi-phase windows are served from expired "
                    "epochs.".format(LTIME_SKEW),
        expected=("stale-epoch-use",),
        _apply=_skip_batch_guard),
    Mutation(
        name="stale-replay-fingerprint",
        kinds=("acc", "dx"),
        description="The invocation replay guard sees every lease "
                    "{} cycles longer than granted, so whole recorded "
                    "invocations are replayed under dead "
                    "epochs.".format(LTIME_SKEW),
        expected=("stale-epoch-use",),
        _apply=_stale_replay_fingerprint),
    Mutation(
        name="skip-invalidation",
        kinds=("acc", "dx", "shared"),
        description="The tile ignores directory forwards: host stores "
                    "no longer invalidate the tile's copy.",
        expected=("mei-directory", "conservation"),
        _apply=_skip_invalidation),
    Mutation(
        name="corrupt-sharer-bit",
        kinds=("acc", "dx", "shared"),
        description="The directory loses the tile's sharer bit right "
                    "after every tile fill.",
        expected=("mei-directory",),
        _apply=_corrupt_sharer_bit),
    Mutation(
        name="no-gtime-update",
        kinds=("acc", "dx"),
        description="GTIME stops covering granted epochs (reset to the "
                    "grant time), so the L1X may answer forwards while "
                    "L0X leases are still live.",
        expected=("gtime-bounds-epoch",),
        _apply=_no_gtime_update),
    Mutation(
        name="drop-write-epoch-lock",
        kinds=("acc", "dx"),
        description="The L1X forgets the write-epoch lock: concurrent "
                    "write epochs are granted on one block.",
        expected=("swmr", "stale-epoch-use", "conservation"),
        _apply=_drop_write_epoch_lock),
    Mutation(
        name="forward-keep-dirty",
        kinds=("dx",),
        description="A FUSION-Dx producer keeps its dirty copy after "
                    "forwarding the line, duplicating the data.",
        expected=("swmr", "conservation"),
        _apply=_forward_keep_dirty),
    Mutation(
        name="rmap-drop",
        kinds=("acc", "dx"),
        description="The AX-RMAP forgets each fill immediately, so "
                    "directory forwards can no longer reach the line.",
        expected=("rmap-bijection",),
        _apply=_rmap_drop),
)

MUTATIONS = {mutation.name: mutation for mutation in _ALL}


def self_test(depth=None, kinds=None):
    """Verify the checker catches every mutation; returns a report dict.

    For each mutation, the catalog scenarios of its kinds are explored
    exhaustively (full script depth, so the finalize flush runs — several
    mutations only become visible there).  A mutation counts as caught
    when at least one scenario fails with one of its expected invariants.
    """
    results = []
    ok = True
    for mutation in _ALL:
        applicable = [s for s in catalog(mutation.kinds)
                      if kinds is None or s.kind in kinds]
        caught_by = None
        unexpected = None
        for scenario in applicable:
            bound = depth or scenario.total_events
            result = explore(scenario, depth=bound, mutation=mutation,
                             shrink=False)
            if result.failure is not None:
                invariant = result.failure.violations[0].invariant
                if invariant in mutation.expected:
                    caught_by = {"scenario": scenario.name,
                                 "invariant": invariant}
                    break
                unexpected = {"scenario": scenario.name,
                              "invariant": invariant}
        caught = caught_by is not None
        ok = ok and caught
        entry = {"mutation": mutation.name,
                 "description": mutation.description,
                 "expected": list(mutation.expected),
                 "caught": caught}
        if caught_by is not None:
            entry.update(caught_by)
        elif unexpected is not None:
            entry["unexpected"] = unexpected
        results.append(entry)
    return {"ok": ok, "mutations": results}
