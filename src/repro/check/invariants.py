"""The checked-invariant library of the coherence model checker.

Each function inspects a :class:`repro.check.world.CheckWorld` *between*
events and returns :class:`Violation` records.  The checks are written to
be sound for **arbitrary** event interleavings on the real controllers —
every predicate below holds on the correct protocol for every reachable
state, so any violation is a genuine protocol bug (or an injected
mutation).  Three model facts keep them false-positive free:

* Events are serialised on one global clock: an event executes at
  ``world.now`` and the clock then advances by the event's full latency,
  *including* every stall the protocol charged.  A GTIME or write-epoch
  stall therefore always pushes ``now`` past the leases it waited out
  before the next event (and the next check) runs.
* Stalls are charged as latency while state changes are instantaneous
  (the trace-driven model's contract, see ``tests/test_property_acc.py``)
  — so GTIME-vs-epoch is only checked *at grant time*, where it is exact,
  never globally.
* An expired dirty L0X line may legally coexist with another AXC's live
  write epoch (the expired writer's data is simply awaiting its
  self-downgrade), so SWMR counts only *live* write leases.

Violation names are the contract with ``docs/protocol.md`` §8 and the
mutation self-test; change them in both places or not at all.
"""

from dataclasses import dataclass, replace

from ..coherence.directory import HOST, TILE

#: Token standing for a block's initial (pre-trace) memory contents.
INIT = "init"


@dataclass(frozen=True)
class Violation:
    """One invariant violation, with enough context to act on it."""

    invariant: str
    detail: str
    agent: str = None
    block: int = None
    epoch: int = None
    time: int = None
    step: int = None

    def to_dict(self):
        out = {"invariant": self.invariant, "detail": self.detail}
        for name in ("agent", "block", "epoch", "time", "step"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    def at_step(self, step):
        return replace(self, step=step)

    def __str__(self):
        parts = [self.invariant]
        if self.agent is not None:
            parts.append("agent={}".format(self.agent))
        if self.block is not None:
            parts.append("block={:#x}".format(self.block))
        if self.epoch is not None:
            parts.append("epoch={}".format(self.epoch))
        if self.time is not None:
            parts.append("t={}".format(self.time))
        if self.step is not None:
            parts.append("step={}".format(self.step))
        return "[{}] {}".format(" ".join(parts), self.detail)


def violation_from_exception(world, exc):
    """Fold a raised :class:`ReproError` into the violation stream."""
    return Violation(
        invariant="no-protocol-exception",
        detail="{}: {}".format(type(exc).__name__, exc),
        agent=getattr(exc, "agent", None) or world.current_label(),
        block=getattr(exc, "block", None),
        epoch=getattr(exc, "epoch", None),
        time=world.now)


# ---------------------------------------------------------------------------
# per-step checks
# ---------------------------------------------------------------------------

def check_step(world):
    """Run every applicable invariant against the current state."""
    out = []
    if world.kind in ("acc", "dx"):
        out.extend(check_swmr(world))
        out.extend(check_rmap_bijection(world))
        out.extend(check_mei_directory_acc(world))
        out.extend(check_accounting_acc(world))
    else:
        out.extend(check_mei_directory_shared(world))
        out.extend(check_accounting_shared(world))
    out.extend(check_host_l1_directory(world))
    return out


def check_swmr(world):
    """Single writer per epoch: at most one L0X holds a live *dirty*
    write line on any block.

    Dirty is part of the predicate because ``flush_dirty`` legally
    leaves a clean line resident in state W with its lease intact while
    the writeback releases the L1X's write-epoch lock — after which
    another AXC may open a fresh epoch.  An *active* writer (dirty data
    under a live lease) is exactly what must be exclusive: the correct
    L1X stalls a second writer until the first epoch ends, and the stall
    pushes the serialised clock past the first lease."""
    writers = {}
    for ordinal, l0x in enumerate(world.l0xs):
        for line in l0x.cache.lines():
            if line.state == "W" and line.dirty and \
                    line.lease is not None and line.lease > world.now:
                writers.setdefault(line.block, []).append(ordinal)
    out = []
    for block, holders in sorted(writers.items()):
        if len(holders) > 1:
            out.append(Violation(
                "swmr",
                "L0Xs {} all hold live write leases on the block".format(
                    holders),
                agent=",".join("axc{}".format(o) for o in holders),
                block=block, time=world.now))
    return out


def check_rmap_bijection(world):
    """AX-RMAP entries and L1X-resident physical blocks are a bijection,
    and every L1X line knows its physical address."""
    out = []
    l1x = world.l1x
    resident = {}
    for line in l1x.cache.lines():
        if line.paddr is None:
            out.append(Violation(
                "rmap-bijection", "L1X line has no physical address",
                agent="l1x", block=line.block, time=world.now))
        else:
            resident[line.paddr] = line.block
    rmap = dict(l1x.rmap._map)
    if rmap != resident:
        out.append(Violation(
            "rmap-bijection",
            "AX-RMAP maps {} but the L1X holds {}".format(
                {hex(k): hex(v) for k, v in sorted(rmap.items())},
                {hex(k): hex(v) for k, v in sorted(resident.items())}),
            agent="l1x", time=world.now))
    return out


def check_mei_directory_acc(world):
    """The L1X's MEI face agrees with the host directory: the tile is
    recorded as caching exactly the blocks the L1X holds."""
    out = []
    l1x = world.l1x
    entries = world.host.directory._entries
    for line in l1x.cache.lines():
        if line.paddr is None:
            continue  # reported by check_rmap_bijection
        entry = entries.get(line.paddr)
        if entry is None or not entry.cached_by(TILE):
            out.append(Violation(
                "mei-directory",
                "L1X holds the block but the host directory does not "
                "record the tile as caching it",
                agent=TILE, block=line.paddr, time=world.now))
    for pblock, entry in sorted(entries.items()):
        if not entry.cached_by(TILE):
            continue
        vblock = l1x.rmap._map.get(pblock)
        if vblock is None or not l1x.cache.contains(vblock):
            out.append(Violation(
                "mei-directory",
                "host directory records the tile for a block the L1X "
                "does not hold (stale sharer bit)",
                agent=TILE, block=pblock, time=world.now))
    return out


def check_mei_directory_shared(world):
    """SHARED baseline: the physically-indexed L1X is an ordinary MESI
    agent — residency must match the directory's tile records."""
    out = []
    entries = world.host.directory._entries
    cache = world.shared.cache
    for line in cache.lines():
        entry = entries.get(line.block)
        if entry is None or not entry.cached_by(TILE):
            out.append(Violation(
                "mei-directory",
                "shared L1X holds the block but the host directory does "
                "not record the tile as caching it",
                agent=TILE, block=line.block, time=world.now))
    for pblock, entry in sorted(entries.items()):
        if entry.cached_by(TILE) and not cache.contains(pblock):
            out.append(Violation(
                "mei-directory",
                "host directory records the tile for a block the shared "
                "L1X does not hold (stale sharer bit)",
                agent=TILE, block=pblock, time=world.now))
    return out


def check_host_l1_directory(world):
    """Host L1 residency and the directory's HOST records agree."""
    out = []
    entries = world.host.directory._entries
    l1 = world.host.l1
    for line in l1.lines():
        entry = entries.get(line.block)
        if entry is None or not entry.cached_by(HOST):
            out.append(Violation(
                "mei-directory",
                "host L1 holds the block but the directory does not "
                "record the host as caching it",
                agent=HOST, block=line.block, time=world.now))
    for pblock, entry in sorted(entries.items()):
        if entry.cached_by(HOST) and not l1.contains(pblock):
            out.append(Violation(
                "mei-directory",
                "directory records the host for a block its L1 does not "
                "hold (stale sharer bit)",
                agent=HOST, block=pblock, time=world.now))
    return out


def check_accounting_acc(world):
    """Exact counter identities (docs/protocol.md §6): per L0X,
    hits + misses = accesses = ops issued; at the L1X,
    hits + misses = read epochs + write epochs."""
    out = []
    stats = world.stats
    for ordinal, l0x in enumerate(world.l0xs):
        prefix = "l0x.axc{}.".format(l0x.axc_id)
        hits = stats.get(prefix + "hits")
        misses = stats.get(prefix + "misses")
        accesses = stats.get(prefix + "accesses")
        issued = world.issued[ordinal]
        if hits + misses != accesses or accesses != issued:
            out.append(Violation(
                "accounting",
                "axc{}: hits({}) + misses({}) != accesses({}) != "
                "issued({})".format(l0x.axc_id, hits, misses, accesses,
                                    issued),
                agent="axc{}".format(l0x.axc_id), time=world.now))
    epochs = stats.get("l1x.read_epochs") + stats.get("l1x.write_epochs")
    grants = stats.get("l1x.hits") + stats.get("l1x.misses")
    if epochs != grants:
        out.append(Violation(
            "accounting",
            "L1X epochs({}) != hits + misses({})".format(epochs, grants),
            agent="l1x", time=world.now))
    return out


def check_accounting_shared(world):
    """SHARED baseline: hits + misses equals the ops issued (``accesses``
    also counts eviction read-outs, so it is checked as >=)."""
    out = []
    stats = world.stats
    hits = stats.get("l1x.hits")
    misses = stats.get("l1x.misses")
    accesses = stats.get("l1x.accesses")
    issued = sum(world.issued)
    if hits + misses != issued or accesses < hits + misses:
        out.append(Violation(
            "accounting",
            "shared L1X: hits({}) + misses({}) != issued({}) or "
            "accesses({}) below them".format(hits, misses, issued,
                                             accesses),
            agent="l1x", time=world.now))
    return out


# ---------------------------------------------------------------------------
# quiescence (end of trace)
# ---------------------------------------------------------------------------

def check_quiescence(world):
    """After the finalize flush: no dirty L0X line, no pending forward,
    no un-written-back dirty token, and (SHARED) the host's value of
    every block is the last store serialised on it."""
    out = []
    if world.kind in ("acc", "dx"):
        for ordinal, l0x in enumerate(world.l0xs):
            for line in l0x.cache.dirty_lines():
                out.append(Violation(
                    "quiescence",
                    "dirty L0X line survived the finalize flush",
                    agent="axc{}".format(ordinal), block=line.block,
                    time=world.now))
            for vblock in sorted(l0x._incoming_forwards):
                out.append(Violation(
                    "quiescence",
                    "pending forward survived the finalize flush",
                    agent="axc{}".format(ordinal), block=vblock,
                    time=world.now))
    for (ordinal, vblock), token in sorted(world.pending.items()):
        out.append(Violation(
            "conservation",
            "dirty value {!r} was never written back (lost data)".format(
                token),
            agent="axc{}".format(ordinal), block=vblock, time=world.now))
    for (ordinal, vblock), (token, _lease) in sorted(
            world.fwd_pending.items()):
        out.append(Violation(
            "conservation",
            "forwarded value {!r} was never consumed or drained "
            "(lost data)".format(token),
            agent="axc{}".format(ordinal), block=vblock, time=world.now))
    if world.kind == "shared":
        for pblock, token in sorted(world.final_writer.items()):
            settled = world.l1x_value.get(
                pblock, world.host_value.get(pblock, INIT))
            if settled != token:
                out.append(Violation(
                    "conservation",
                    "last store serialised {!r} but the settled value "
                    "is {!r}".format(token, settled),
                    block=pblock, time=world.now))
    return out
