"""Interleaving exploration over checker worlds.

The explorer owns all nondeterminism: a *schedule* is a tuple of agent
indices, one per step, and :func:`execute_schedule` replays it on a fresh
world.  Because worlds cannot be safely deep-copied (the controllers'
stats handles close over a live registry), the bounded search re-executes
every prefix from scratch — at checker scale (<= 8 events, tiny caches)
a full replay costs well under a millisecond, and replay-from-choices is
exactly what makes every counterexample a self-contained reproducer.

Three entry points:

* :func:`explore` — exhaustive DFS over all interleavings up to a depth
  bound, with visited-state pruning on the canonical state hash.
* :func:`random_walks` — seeded random schedules run to completion; the
  seed is printed with any failure and replays it exactly.
* :func:`shrink_failure` — greedy minimisation of a failing (scenario,
  schedule) pair: drop whole events, then truncate the schedule, keeping
  every candidate that still violates the *same* invariant.
"""

import random
from dataclasses import dataclass, field

from .world import build_world


class InvalidSchedule(Exception):
    """A schedule step chose an agent with no events left."""


@dataclass(frozen=True)
class RunOutcome:
    """Everything one schedule execution produced."""

    violations: tuple      # Violation records, step-tagged
    completed: bool        # every agent ran to the end of its script
    enabled: tuple         # agents still runnable when execution stopped
    state_hash: str
    choices: tuple
    observations: tuple    # (label, seq, block_index, token) per load
    final_values: tuple    # (block_index, token) after finalize
    steps: int

    @property
    def failed(self):
        return bool(self.violations)


@dataclass(frozen=True)
class Failure:
    """A violating run, with everything needed to replay it."""

    scenario: object
    choices: tuple
    violations: tuple
    seed: object = None
    schedule_index: int = None

    def to_dict(self):
        out = {
            "scenario": self.scenario.to_dict(),
            "choices": list(self.choices),
            "schedule": [self.scenario.agent_labels()[c]
                         for c in self.choices],
            "violations": [v.to_dict() for v in self.violations],
        }
        if self.seed is not None:
            out["seed"] = self.seed
        if self.schedule_index is not None:
            out["schedule_index"] = self.schedule_index
        return out


@dataclass
class ExplorationResult:
    """Aggregate outcome of a bounded exploration of one scenario."""

    scenario: object
    depth: int
    interleavings: int = 0    # schedules run to completion (+ finalize)
    truncated: int = 0        # prefixes cut off at the depth bound
    pruned: int = 0           # prefixes folded into a visited state
    states: int = 0           # distinct canonical states seen
    failure: Failure = None
    outcomes: set = field(default_factory=set)

    @property
    def ok(self):
        return self.failure is None

    def to_dict(self):
        out = {
            "scenario": self.scenario.name,
            "kind": self.scenario.kind,
            "depth": self.depth,
            "interleavings": self.interleavings,
            "truncated": self.truncated,
            "pruned": self.pruned,
            "states": self.states,
            "ok": self.ok,
        }
        if self.failure is not None:
            out["failure"] = self.failure.to_dict()
        return out


def execute_schedule(scenario, choices, mutation=None, finalize=True,
                     stop_on_violation=True):
    """Replay ``choices`` on a fresh world; returns a :class:`RunOutcome`.

    ``mutation`` is applied to the world right after construction, i.e.
    *outside* the shadow instrumentation — the shadow records the truth
    while the mutation corrupts what the protocol sees.
    """
    world = build_world(scenario)
    if mutation is not None:
        mutation.apply(world)
    violations = []
    steps = 0
    for index, agent in enumerate(choices):
        if agent not in world.enabled_agents():
            raise InvalidSchedule(
                "step {}: agent {} is not enabled".format(index, agent))
        violations.extend(v.at_step(index)
                          for v in world.step(agent))
        steps += 1
        if violations and stop_on_violation:
            break
    completed = world.done()
    if finalize and completed and not (violations and stop_on_violation):
        violations.extend(v.at_step(len(choices))
                          for v in world.finalize())
    final_values = tuple(
        (block, world.final_value(block))
        for block in range(scenario.num_blocks))
    return RunOutcome(
        violations=tuple(violations),
        completed=completed,
        enabled=world.enabled_agents(),
        state_hash=world.state_hash(),
        choices=tuple(choices),
        observations=tuple(world.observations),
        final_values=final_values,
        steps=steps)


def explore(scenario, depth, mutation=None, prune=True, shrink=True):
    """Exhaustive bounded DFS over all interleavings of ``scenario``.

    Every prefix is replayed from a fresh world.  ``visited`` maps the
    canonical state hash to the shallowest depth it was reached at; a
    prefix reaching a known state no deeper than before is pruned — its
    futures are identical (the hash covers everything that can influence
    later behaviour, including the clock and the shadow model).
    """
    result = ExplorationResult(scenario=scenario, depth=depth)
    visited = {}
    stack = [()]
    while stack:
        prefix = stack.pop()
        outcome = execute_schedule(scenario, prefix, mutation=mutation,
                                   finalize=True)
        if outcome.failed:
            failure = Failure(scenario=scenario,
                              choices=tuple(prefix),
                              violations=outcome.violations)
            if shrink:
                failure = shrink_failure(failure, mutation=mutation)
            result.failure = failure
            return result
        if outcome.completed:
            result.interleavings += 1
            result.outcomes.add(outcome.observations +
                                outcome.final_values)
            continue
        if len(prefix) >= depth:
            result.truncated += 1
            continue
        if prune:
            seen = visited.get(outcome.state_hash)
            if seen is not None and seen <= len(prefix):
                result.pruned += 1
                continue
            visited[outcome.state_hash] = len(prefix)
        # reverse-sorted so the DFS pops lower agent ids first
        for agent in sorted(outcome.enabled, reverse=True):
            stack.append(prefix + (agent,))
    result.states = len(visited)
    return result


def random_walks(scenario, schedules, seed, mutation=None, shrink=True):
    """Run ``schedules`` seeded random interleavings to completion.

    Walk ``k`` draws its choices from
    ``random.Random("{seed}:{scenario}:{k}")`` — string seeding hashes
    with SHA-512, so the same arguments replay the same schedules in any
    process.  Returns ``(runs, failure_or_None)``.
    """
    runs = 0
    for k in range(schedules):
        rng = random.Random("{}:{}:{}".format(seed, scenario.name, k))
        world = build_world(scenario)
        if mutation is not None:
            mutation.apply(world)
        choices = []
        violations = []
        while True:
            enabled = world.enabled_agents()
            if not enabled:
                violations.extend(
                    v.at_step(len(choices)) for v in world.finalize())
                break
            agent = rng.choice(enabled)
            choices.append(agent)
            violations.extend(v.at_step(len(choices) - 1)
                              for v in world.step(agent))
            if violations:
                break
        runs += 1
        if violations:
            failure = Failure(scenario=scenario, choices=tuple(choices),
                              violations=tuple(violations),
                              seed=seed, schedule_index=k)
            if shrink:
                failure = shrink_failure(failure, mutation=mutation)
            return runs, failure
    return runs, None


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

def _drop_occurrence(choices, agent, occurrence):
    """Remove the ``occurrence``-th (0-based) choice of ``agent``; later
    choices of the same agent then drive its later events."""
    seen = 0
    for index, choice in enumerate(choices):
        if choice == agent:
            if seen == occurrence:
                return choices[:index] + choices[index + 1:]
            seen += 1
    return choices


def _still_fails(scenario, choices, invariant, mutation):
    try:
        outcome = execute_schedule(scenario, choices, mutation=mutation,
                                   finalize=True)
    except InvalidSchedule:
        return None
    if outcome.failed and outcome.violations[0].invariant == invariant:
        return outcome
    return None


def shrink_failure(failure, mutation=None):
    """Greedily minimise a failure while it violates the same invariant.

    Two moves, applied to fixpoint: delete one whole event from one
    agent's script (latest events first, adjusting the schedule), then
    truncate trailing schedule choices.  Each accepted candidate is a
    full replay, so the shrunk failure is always a genuine reproducer.
    """
    invariant = failure.violations[0].invariant
    scenario = failure.scenario
    choices = failure.choices
    violations = failure.violations
    improved = True
    while improved:
        improved = False
        for agent_index in range(len(scenario.agents)):
            events = scenario.agents[agent_index].events
            for event_index in reversed(range(len(events))):
                candidate = scenario.without_event(agent_index,
                                                   event_index)
                try:
                    candidate.__post_init__()
                except ValueError:
                    continue
                cut = _drop_occurrence(choices, agent_index, event_index)
                outcome = _still_fails(candidate, cut, invariant,
                                       mutation)
                if outcome is None and cut != choices:
                    outcome = _still_fails(candidate, choices, invariant,
                                           mutation)
                    cut = choices if outcome is not None else cut
                if outcome is not None:
                    scenario, choices = candidate, cut
                    violations = outcome.violations
                    improved = True
                    break
            if improved:
                break
        if improved:
            continue
        while choices:
            outcome = _still_fails(scenario, choices[:-1], invariant,
                                   mutation)
            if outcome is None:
                break
            choices = choices[:-1]
            violations = outcome.violations
            improved = True
    return Failure(scenario=scenario, choices=choices,
                   violations=violations, seed=failure.seed,
                   schedule_index=failure.schedule_index)
