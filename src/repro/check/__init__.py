"""repro.check — bounded coherence model checking for the real engines.

The checker drives the production controllers (``AccL0XController``,
``AccL1XController``, ``SharedL1XController``, ``HostMemorySystem``) on
tiny configurations through every interleaving of small concurrent
programs, checking protocol invariants between events and legal-outcome
sets over whole executions.  See ``docs/protocol.md`` §8 for the mapping
from the specification's prose invariants to the properties checked
here.

Layers, bottom up:

* :mod:`repro.check.scenarios` — tiny concurrent programs (curated
  catalog + seeded random generation).
* :mod:`repro.check.world` — the real controllers wired up on a tiny
  config, with a shadow data model and a serialised clock.
* :mod:`repro.check.invariants` — the properties checked between events.
* :mod:`repro.check.explorer` — exhaustive bounded DFS, seeded random
  walks, and greedy counterexample shrinking.
* :mod:`repro.check.litmus` — hand-verified legal-outcome sets.
* :mod:`repro.check.mutations` — seeded protocol bugs the checker must
  catch (its self-test).
* :mod:`repro.check.runner` — the ``fusion-sim check`` entry points.
"""

from .explorer import (ExplorationResult, Failure, InvalidSchedule,
                       RunOutcome, execute_schedule, explore,
                       random_walks, shrink_failure)
from .invariants import Violation, check_quiescence, check_step
from .litmus import LITMUS_BY_NAME, LITMUS_TESTS, LitmusTest, run_litmus
from .mutations import MUTATIONS, Mutation
from .runner import (run_check, run_self_test, summarize,
                     summarize_self_test)
from .scenarios import (CATALOG, Agent, Scenario, by_name, catalog,
                        random_scenario)
from .world import build_world, tiny_config

__all__ = [
    "Agent", "CATALOG", "ExplorationResult", "Failure",
    "InvalidSchedule", "LITMUS_BY_NAME", "LITMUS_TESTS", "LitmusTest",
    "MUTATIONS", "Mutation", "RunOutcome", "Scenario", "Violation",
    "build_world", "by_name", "catalog", "check_quiescence",
    "check_step", "execute_schedule", "explore", "random_scenario",
    "random_walks", "run_check", "run_litmus", "run_self_test",
    "shrink_failure", "summarize", "summarize_self_test", "tiny_config",
]
