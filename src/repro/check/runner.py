"""Top-level checker runs: what ``fusion-sim check`` executes.

:func:`run_check` is the correctness gate — exhaustive bounded
exploration of the curated catalog, seeded random walks over generated
scenarios, and the litmus suite.  :func:`run_self_test` is the checker's
own gate — every seeded mutation must be caught.  Both return plain
dicts (JSON-able) and an ``ok`` flag; the CLI turns ``ok`` into the
process exit code.

Every failure is shrunk and reported with the exact command line that
replays it: the scenario generator and the walk scheduler both derive
all randomness from string seeds, so ``--seed`` is a complete
reproducer.
"""

from .explorer import explore, random_walks
from .litmus import LITMUS_TESTS, run_litmus
from .mutations import MUTATIONS, self_test
from .scenarios import KINDS, by_name, catalog, random_scenario

#: Random scenarios generated per kind in one ``run_check``.
RANDOM_PER_KIND = 3


def _repro_command(depth, seed, schedules, mutation):
    parts = ["fusion-sim check", "--depth", str(depth),
             "--seed", str(seed), "--schedules", str(schedules)]
    if mutation is not None:
        parts += ["--mutate", mutation.name]
    return " ".join(parts)


def _failure_entry(failure, depth, seed, schedules, mutation):
    entry = failure.to_dict()
    entry["repro"] = _repro_command(depth, seed, schedules, mutation)
    return entry


def run_check(depth=8, seed=0, schedules=20, kinds=KINDS,
              scenario_name=None, mutation_name=None,
              with_litmus=True, randoms=RANDOM_PER_KIND):
    """The full correctness sweep; returns a JSON-able report dict.

    ``mutation_name`` injects one seeded bug into every world — the
    sweep is then *expected* to fail, and the report shows what caught
    it (this is the ``--mutate`` debugging/repro path; the systematic
    all-mutations gate is :func:`run_self_test`).
    """
    mutation = MUTATIONS[mutation_name] if mutation_name else None
    if scenario_name is not None:
        scenarios = [by_name(scenario_name)]
    else:
        scenarios = list(catalog(kinds))
        for kind in kinds:
            scenarios.extend(random_scenario(kind, seed, index)
                             for index in range(randoms))
    if mutation is not None:
        scenarios = [s for s in scenarios if s.kind in mutation.kinds]
    report = {
        "depth": depth, "seed": seed, "schedules": schedules,
        "kinds": list(kinds), "mutation": mutation_name,
        "explorations": [], "walks": [], "litmus": [],
        "interleavings": 0, "states": 0,
    }
    failures = []
    for scenario in scenarios:
        bound = min(depth, scenario.total_events)
        result = explore(scenario, depth=bound, mutation=mutation)
        entry = result.to_dict()
        report["explorations"].append(entry)
        report["interleavings"] += result.interleavings
        report["states"] += result.states
        if result.failure is not None:
            failures.append(_failure_entry(result.failure, depth, seed,
                                           schedules, mutation))
        runs, walk_failure = random_walks(scenario, schedules, seed,
                                          mutation=mutation)
        walk_entry = {"scenario": scenario.name, "runs": runs,
                      "ok": walk_failure is None}
        report["walks"].append(walk_entry)
        if walk_failure is not None:
            failures.append(_failure_entry(walk_failure, depth, seed,
                                           schedules, mutation))
    if with_litmus and scenario_name is None:
        for test in LITMUS_TESTS:
            if mutation is not None and \
                    test.scenario.kind not in mutation.kinds:
                continue
            result = run_litmus(test, mutation=mutation)
            report["litmus"].append(result.to_dict())
    report["failures"] = failures
    litmus_ok = all(entry["ok"] for entry in report["litmus"])
    report["ok"] = not failures and litmus_ok
    return report


def run_self_test(depth=None, kinds=None):
    """The mutation self-test: every seeded bug must be caught."""
    return self_test(depth=depth, kinds=kinds)


def summarize(report):
    """Human-readable lines for a :func:`run_check` report."""
    lines = []
    lines.append(
        "explored {} scenarios: {} interleavings, {} states".format(
            len(report["explorations"]), report["interleavings"],
            report["states"]))
    walks = sum(entry["runs"] for entry in report["walks"])
    lines.append("random walks: {} schedules (seed {})".format(
        walks, report["seed"]))
    for entry in report["litmus"]:
        lines.append("litmus {:20s} {} ({} interleavings)".format(
            entry["litmus"], "ok" if entry["ok"] else "FAIL",
            entry["interleavings"]))
    for failure in report["failures"]:
        violation = failure["violations"][0]
        lines.append("FAIL {}: [{}] {}".format(
            failure["scenario"]["name"], violation["invariant"],
            violation["detail"]))
        lines.append("  schedule: {}".format(
            " ".join(failure["schedule"])))
        lines.append("  repro: {}".format(failure["repro"]))
    lines.append("result: {}".format("OK" if report["ok"] else "FAIL"))
    return lines


def summarize_self_test(report):
    """Human-readable lines for a :func:`run_self_test` report."""
    lines = []
    for entry in report["mutations"]:
        if entry["caught"]:
            lines.append("mutation {:22s} caught by {} ({})".format(
                entry["mutation"], entry["invariant"],
                entry["scenario"]))
        else:
            lines.append("mutation {:22s} MISSED (expected {})".format(
                entry["mutation"], ", ".join(entry["expected"])))
    lines.append("result: {}".format("OK" if report["ok"] else "FAIL"))
    return lines
