"""Scenario definitions for the coherence model checker.

A :class:`Scenario` is a *tiny concurrent program*: two or three agents
(accelerator L0Xs and optionally the host core), each with a short
per-agent script of events, over 2-4 cache lines.  The explorer supplies
the nondeterminism — it decides, at every step, whose next event runs —
so scripts stay short enough that the full interleaving space fits in a
bounded search.

Event vocabulary (per agent, executed in program order):

* ``("load", k)`` / ``("store", k)`` — one memory op on block ``k``
  (blocks live in one page; ``k`` indexes 64-byte lines).
* ``("run", kind, k, n)`` — a same-line run of ``n`` ops of ``kind``
  (``"load"`` or ``"store"``) on block ``k``, issued as one atomic
  event through the steady-state phase fast path: the world quotes the
  run via the L0X's ``phase_quote`` and expands it per-op when the
  guard declines (the fallback ladder of ``docs/simulator.md`` §10).
  AXC agents only, and only in the lease-based (``acc``/``dx``) kinds.
* ``("invoke", kind, k, n)`` — a guarded mini-invocation of ``n`` ops
  of ``kind`` on block ``k``, issued through the *invocation replay
  rung* above the phase path (``docs/simulator.md`` §11): the world
  records the invocation's effect on its first clean (hits-only)
  occurrence and, on later occurrences, probes the recorded guard
  (``repro.accel.replay``'s real signature matcher) — serving the
  whole invocation in bulk on a match and expanding per-op when the
  guard declines.  AXC agents only, lease-based (``acc``/``dx``)
  kinds only.
* ``("batch", kind, k, n)`` — a *two-phase vectorized window*: ``n``
  loads on block ``k`` followed by ``n`` ops of ``kind`` on block
  ``k + 1``, compiled into one SoA :class:`VectorWindow` and issued
  through the batched quote rung (``phase_quote_batch``,
  ``docs/simulator.md`` §13).  The world shadow-checks every accepted
  phase per-op (cumulative clock) and expands unaccepted phases down
  the ladder.  AXC agents only, lease-based (``acc``/``dx``) kinds
  only; falls back whole-window per-op on a numpy-less install.
* ``("flush",)`` — AXC invocation end: ``flush_dirty`` (ACC) or the
  shared L1X drain.  Not valid for the host.
* ``("advance", dt)`` — let ``dt`` cycles pass without an access; this
  is how scripts reach lease expiry.

Everything is an immutable tuple so failing scenarios hash, shrink and
replay deterministically.
"""

import random
from dataclasses import dataclass, replace

KINDS = ("acc", "shared", "dx")

#: Default ACC lease for checker scenarios, cycles.  Long enough that a
#: line granted after the tiny-config miss path (~60 cycles with a TLB
#: walk) is still live for the next few events; short enough that one
#: ``advance`` event expires it.
DEFAULT_LEASE = 150

#: The ``advance`` amount guaranteed to expire any lease granted before
#: the advancing event.
EXPIRE = 2 * DEFAULT_LEASE


@dataclass(frozen=True)
class Agent:
    """One agent's role and program."""

    role: str          # "axc" | "host"
    events: tuple      # tuple of event tuples

    def __post_init__(self):
        if self.role not in ("axc", "host"):
            raise ValueError("unknown agent role {!r}".format(self.role))
        for event in self.events:
            kind = event[0]
            if kind in ("load", "store"):
                if len(event) != 2 or not isinstance(event[1], int):
                    raise ValueError("bad event {!r}".format(event))
            elif kind in ("run", "invoke", "batch"):
                if self.role == "host" or len(event) != 4 \
                        or event[1] not in ("load", "store") \
                        or not isinstance(event[2], int) \
                        or not isinstance(event[3], int) or event[3] < 2:
                    raise ValueError("bad event {!r}".format(event))
            elif kind == "advance":
                if len(event) != 2 or event[1] <= 0:
                    raise ValueError("bad event {!r}".format(event))
            elif kind == "flush":
                if self.role == "host" or len(event) != 1:
                    raise ValueError("bad event {!r}".format(event))
            else:
                raise ValueError("unknown event {!r}".format(event))


@dataclass(frozen=True)
class Scenario:
    """An immutable checker program: agents + lease + forwarding plan."""

    name: str
    kind: str               # "acc" | "shared" | "dx"
    agents: tuple           # tuple of Agent
    lease: int = DEFAULT_LEASE
    #: FUSION-Dx producer->consumer plan: ((block_index, consumer_ordinal),)
    forward_plan: tuple = ()
    description: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError("unknown scenario kind {!r}".format(self.kind))
        if self.kind != "dx" and self.forward_plan:
            raise ValueError("forward_plan is FUSION-Dx only")
        if self.kind == "shared" and any(
                event[0] in ("run", "invoke", "batch")
                for agent in self.agents for event in agent.events):
            raise ValueError(
                "run/invoke/batch events are lease-based (acc/dx) only")
        if not any(agent.role == "axc" for agent in self.agents):
            raise ValueError("a scenario needs at least one AXC agent")

    @property
    def total_events(self):
        return sum(len(agent.events) for agent in self.agents)

    @property
    def num_blocks(self):
        highest = 0
        for agent in self.agents:
            for event in agent.events:
                if event[0] in ("load", "store"):
                    highest = max(highest, event[1])
                elif event[0] in ("run", "invoke"):
                    highest = max(highest, event[2])
                elif event[0] == "batch":
                    # A batch window touches blocks k and k + 1.
                    highest = max(highest, event[2] + 1)
        return highest + 1

    def agent_labels(self):
        labels, ordinal = [], 0
        for agent in self.agents:
            if agent.role == "axc":
                labels.append("axc{}".format(ordinal))
                ordinal += 1
            else:
                labels.append("host")
        return labels

    def without_event(self, agent_index, event_index):
        """A copy with one event deleted (the shrinker's move)."""
        agents = list(self.agents)
        agent = agents[agent_index]
        events = agent.events[:event_index] + agent.events[event_index + 1:]
        agents[agent_index] = replace(agent, events=events)
        return replace(self, agents=tuple(agents))

    def to_dict(self):
        return {
            "name": self.name,
            "kind": self.kind,
            "lease": self.lease,
            "forward_plan": [list(pair) for pair in self.forward_plan],
            "agents": [{"role": agent.role,
                        "events": [list(e) for e in agent.events]}
                       for agent in self.agents],
        }


def _axc(*events):
    return Agent("axc", tuple(events))


def _host(*events):
    return Agent("host", tuple(events))


#: The curated catalog.  Script lengths stay <= 8 so a depth-8 bounded
#: exploration covers *every* interleaving of every scenario, including
#: the finalize flush — that is the acceptance bar for "zero violations".
CATALOG = (
    Scenario(
        name="acc-two-writers",
        kind="acc",
        agents=(_axc(("store", 0), ("store", 1), ("flush",)),
                _axc(("store", 0), ("load", 1), ("flush",))),
        description="Two AXCs race write epochs on one block; the "
                    "write-epoch lock must serialise them (SWMR)."),
    Scenario(
        name="acc-expiry-reload",
        kind="acc",
        agents=(_axc(("load", 0), ("advance", EXPIRE), ("load", 0)),
                _host(("store", 0))),
        description="A read lease expires while the host rewrites the "
                    "block; the reload must miss (no stale epoch use)."),
    Scenario(
        name="acc-host-mix",
        kind="acc",
        agents=(_axc(("store", 0), ("load", 2), ("flush",)),
                _axc(("load", 0),),
                _host(("load", 0), ("store", 0))),
        description="Host traffic forwarded into the tile (GTIME stall, "
                    "MEI invalidation) racing AXC epochs and a capacity "
                    "self-downgrade (blocks 0 and 2 conflict)."),
    Scenario(
        name="acc-capacity-churn",
        kind="acc",
        agents=(_axc(("store", 0), ("store", 2), ("load", 0), ("flush",)),
                _host(("load", 2),)),
        description="Same-set stores churn the 1-way L0X: every eviction "
                    "self-downgrades dirty data before the host reads it."),
    Scenario(
        name="acc-phase-boundary",
        kind="acc",
        agents=(_axc(("load", 0), ("advance", EXPIRE),
                     ("run", "load", 0, 4), ("flush",)),
                _host(("store", 0),)),
        description="A steady-state window opens exactly one event "
                    "after the line's lease expired: the phase guard "
                    "must decline the quote (serving it would replay "
                    "the dead epoch) and the per-op fallback must "
                    "re-request under host-store interference."),
    Scenario(
        name="acc-batch-quote",
        kind="acc",
        agents=(_axc(("load", 0), ("load", 1),
                     ("batch", "store", 0, 3), ("advance", EXPIRE),
                     ("batch", "load", 0, 3), ("flush",)),
                _host(("store", 1),)),
        description="A two-phase vectorized window issues through the "
                    "batched quote rung while both lines are live "
                    "(store tail must decline to an upgrade), then "
                    "re-issues after the leases died: the batched "
                    "guard must decline whole windows whose epochs no "
                    "longer cover the window's conservative span, "
                    "falling down the ladder per-op under host-store "
                    "interference.  A guard skewed to accept anyway — "
                    "the batch-guard-skip mutation — replays dead "
                    "epochs and is caught as stale-epoch-use."),
    Scenario(
        name="acc-replay-epoch",
        kind="acc",
        lease=5000,
        agents=(_axc(("load", 0), ("invoke", "load", 0, 3),
                     ("advance", 6000), ("invoke", "load", 0, 3)),
                _host(("store", 0),)),
        description="An invocation window is recorded under a long "
                    "lease, then re-issued after the epoch died: the "
                    "replay guard must decline (its recorded lease "
                    "class no longer covers) and fall back per-op.  A "
                    "guard that still matches — the "
                    "stale-replay-fingerprint mutation — replays the "
                    "dead epoch and is caught as stale-epoch-use."),
    Scenario(
        name="shared-race",
        kind="shared",
        agents=(_axc(("store", 0), ("load", 1), ("flush",)),
                _axc(("store", 0), ("load", 0)),
                _host(("store", 0), ("load", 0))),
        description="All agents race one block through the MESI-agent "
                    "shared L1X; the last serialised store must win."),
    Scenario(
        name="shared-evict",
        kind="shared",
        agents=(_axc(("store", 0), ("store", 2), ("store", 4), ("flush",)),
                _host(("load", 0),)),
        description="Three same-set stores force a dirty eviction from "
                    "the 2-way shared L1X under concurrent host reads."),
    Scenario(
        name="dx-forward",
        kind="dx",
        agents=(_axc(("store", 0), ("flush",)),
                _axc(("load", 0), ("flush",))),
        forward_plan=((0, 1),),
        description="Producer->consumer write forwarding: the dirty line "
                    "travels L0X->L0X and must still reach the L1X once."),
    Scenario(
        name="dx-expired-forward",
        kind="dx",
        agents=(_axc(("store", 0), ("advance", EXPIRE), ("flush",)),
                _axc(("advance", 50), ("load", 0), ("flush",))),
        forward_plan=((0, 1),),
        description="The forwarded lease can expire before consumption; "
                    "the consumer renews the epoch (one control message) "
                    "without losing the forwarded data."),
    Scenario(
        name="dx-two-blocks",
        kind="dx",
        agents=(_axc(("store", 0), ("store", 1), ("flush",)),
                _axc(("load", 0), ("load", 1), ("flush",))),
        forward_plan=((0, 1), (1, 1)),
        description="Two forwarded blocks interleave with the consumer's "
                    "own accesses and flushes."),
)


def catalog(kinds=KINDS):
    """The curated scenarios, optionally filtered by kind."""
    return tuple(s for s in CATALOG if s.kind in kinds)


def by_name(name):
    for scenario in CATALOG:
        if scenario.name == name:
            return scenario
    raise KeyError("no scenario named {!r}".format(name))


# ---------------------------------------------------------------------------
# seeded random scenarios (the checker's fuzz dimension)
# ---------------------------------------------------------------------------

def random_scenario(kind, seed, index):
    """Generate one deterministic random scenario.

    Seeding ``random.Random`` with a string uses SHA-512, so the same
    ``(kind, seed, index)`` triple produces the same scenario in every
    process — the printed seed is a complete reproducer.
    """
    rng = random.Random("scenario:{}:{}:{}".format(kind, seed, index))
    num_axcs = rng.choice((2, 2, 3) if kind != "dx" else (2, 2))
    with_host = kind != "dx" and rng.random() < 0.6
    blocks = rng.choice((2, 3, 4))
    agents = []
    for _ in range(num_axcs):
        events = []
        for _ in range(rng.randint(2, 4)):
            roll = rng.random()
            if roll < 0.4:
                events.append(("store", rng.randrange(blocks)))
            elif roll < 0.7:
                events.append(("load", rng.randrange(blocks)))
            elif roll < 0.8 and kind != "shared":
                # A steady-state run: exercises the phase-quote fast
                # path (and its per-op fallback when the guard says no).
                events.append(("run",
                               rng.choice(("load", "load", "store")),
                               rng.randrange(blocks),
                               rng.choice((2, 3, 4))))
            elif roll < 0.85 and kind != "shared":
                # A replayed invocation window: exercises the replay
                # rung's record/guard/decline paths above the phases.
                events.append(("invoke",
                               rng.choice(("load", "load", "store")),
                               rng.randrange(blocks),
                               rng.choice((2, 3))))
            elif roll < 0.9 and kind != "shared":
                # A two-phase vectorized window: exercises the batched
                # quote rung's accept/partial/decline paths.
                events.append(("batch",
                               rng.choice(("load", "load", "store")),
                               rng.randrange(blocks),
                               rng.choice((2, 3))))
            elif roll < 0.9:
                events.append(("load", rng.randrange(blocks)))
            else:
                events.append(("advance",
                               rng.choice((40, 120, EXPIRE))))
        events.append(("flush",))
        agents.append(Agent("axc", tuple(events)))
    if with_host:
        events = []
        for _ in range(rng.randint(1, 3)):
            kind_roll = rng.random()
            if kind_roll < 0.45:
                events.append(("store", rng.randrange(blocks)))
            elif kind_roll < 0.9:
                events.append(("load", rng.randrange(blocks)))
            else:
                events.append(("advance", rng.choice((40, 120))))
        agents.append(Agent("host", tuple(events)))
    plan = ()
    if kind == "dx":
        consumers = tuple(
            (block, rng.randrange(num_axcs))
            for block in range(blocks) if rng.random() < 0.5)
        plan = consumers
    return Scenario(
        name="{}-random-{}-{}".format(kind, seed, index),
        kind=kind, agents=tuple(agents), forward_plan=plan,
        description="seeded random scenario (seed={}, index={})".format(
            seed, index))
