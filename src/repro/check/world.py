"""Checker worlds: the real controllers on a tiny config, instrumented.

A :class:`CheckWorld` wires up the *production* coherence controllers —
`AccL0XController`/`AccL1XController`/`HostMemorySystem` (and
`SharedL1XController` for the baseline) — exactly the way
``tests/test_property_acc.py`` and the systems layer do, but on a
deliberately tiny geometry (1-2 sets, 2-4 lines per cache) so bounded
exploration saturates the state space.

Two things make the worlds checkable:

**A global serialised clock.**  One *event* is one controller entry call
(an access, a flush, a host op).  It executes atomically at ``world.now``
and the clock then advances by the event's full latency.  The
interleaving choice — which agent's next event runs — is the only
nondeterminism, which is exactly the nondeterminism of the trace-driven
simulator this checker guards.

**A shadow data model.**  The simulator moves no data, so "no lost or
duplicated dirty value" is unobservable from the controllers alone.  The
world wraps a handful of controller methods *on the instances* (never
the classes) and threads an abstract token through every grant, fill,
writeback, forward and eviction.  Wraps are installed innermost, so a
protocol mutation layered on top (``repro.check.mutations``) corrupts
what the protocol sees while the shadow still records the truth.

``deepcopy`` of a world is deliberately unsupported: the controllers'
bound counter handles and prebuilt flushers close over the live stats
registry, so a copy would silently share state.  The explorer replays
choice prefixes from scratch instead — worlds are cheap at this size.
"""

import hashlib

from ..accel.replay import (Ineligible, apply_cache_transform,
                            build_cache_recording, match_cache_signature)
from ..coherence.acc import AccL0XController, AccL1XController
from ..coherence.mesi import HostMemorySystem
from ..coherence.shared_l1 import SharedL1XController
from ..common.config import (AcceleratorTileConfig, CacheConfig, DramConfig,
                             HostConfig, SystemConfig)
from ..common.errors import ReproError
from ..common.stats import StatsRegistry
from ..common.types import AccessType, MemOp, block_address
from ..interconnect.link import Link
from ..mem.tlb import PageTable
from ..workloads import vector as vector_mod
from ..workloads.phases import single_run_phase
from .invariants import (INIT, Violation, check_quiescence, check_step,
                         violation_from_exception)
from .scenarios import DEFAULT_LEASE

#: Virtual base address of checker blocks — one page holds all of them.
BLOCK_BASE = 0x40000
LINE = 64

#: Recording budget per ``invoke`` key at checker scale (mirrors the
#: production engine's small per-key store).
REPLAY_RECORDINGS_PER_KEY = 4


def tiny_config():
    """The checker's geometry: every cache 1-2 sets, 2-4 lines.

    Small enough that two same-page blocks conflict (the interesting
    eviction races become reachable within a handful of events), fast
    enough that DRAM misses don't blow the clock past every lease.
    """
    return SystemConfig(
        name="check-tiny",
        host=HostConfig(
            l1=CacheConfig(256, 2, hit_latency=1),
            l2_size_bytes=1024, l2_ways=4, l2_banks=2, l2_avg_latency=4),
        tile=AcceleratorTileConfig(
            l0x=CacheConfig(128, 1, hit_latency=1, timestamp_bits=32),
            l1x=CacheConfig(256, 2, hit_latency=2, timestamp_bits=32),
            tlb_entries=4,
            default_lease=DEFAULT_LEASE),
        dram=DramConfig(latency=6, open_page_latency=4),
    )


def block_vaddr(block_index):
    return BLOCK_BASE + block_index * LINE


def build_world(scenario):
    """Build the world matching ``scenario.kind``."""
    if scenario.kind in ("acc", "dx"):
        return AccWorld(scenario)
    return SharedWorld(scenario)


class CheckWorld:
    """Base world: clock, agents, shadow value model, event driver."""

    kind = None

    def __init__(self, scenario):
        self.scenario = scenario
        self.config = tiny_config()
        self.stats = StatsRegistry()
        self.page_table = PageTable()
        self.host = HostMemorySystem(self.config, self.stats)
        self.now = 0
        self.pcs = [0] * len(scenario.agents)
        self.step_count = 0
        self.current_agent = None
        self.labels = scenario.agent_labels()
        #: AXC ordinal per agent index (None for the host agent).
        self.axc_of = {}
        ordinal = 0
        for index, agent in enumerate(scenario.agents):
            if agent.role == "axc":
                self.axc_of[index] = ordinal
                ordinal += 1
            else:
                self.axc_of[index] = None
        self.num_axcs = ordinal
        #: Ops issued per AXC ordinal (for the exact accounting check).
        self.issued = [0] * ordinal
        self._op_seq = [0] * len(scenario.agents)
        self._store_seq = [0] * len(scenario.agents)
        #: (label, per-agent op index, block_index, token) per load.
        self.observations = []
        self._violations = []
        # -- the shadow value model -------------------------------------
        self.host_value = {}     # pblock -> token (L2/DRAM coherent value)
        self.host_l1_value = {}  # pblock -> token cached in the host L1
        self.l1x_value = {}      # tile-L1X key -> token (vblock/pblock)
        self.l0x_value = {}      # (ordinal, vblock) -> token
        self.pending = {}        # (ordinal, vblock) -> dirty token owed
        #: (ordinal, vblock) -> (token, true lease) for a forwarded line
        #: sitting in the consumer's inbox, not yet accepted or drained.
        self.fwd_pending = {}
        self.shadow_lease = {}   # (ordinal, vblock) -> true epoch end
        self.final_writer = {}   # pblock -> last serialised store token
        self._build()

    # -- identity helpers ---------------------------------------------------

    def current_label(self):
        if self.current_agent is None:
            return None
        return self.labels[self.current_agent]

    def current_axc(self):
        if self.current_agent is None:
            return None
        return self.axc_of[self.current_agent]

    def pblock_of(self, block_index):
        return block_address(self.page_table.translate(
            block_vaddr(block_index)))

    def report(self, invariant, detail, **context):
        self._violations.append(Violation(
            invariant=invariant, detail=detail, time=self.now,
            agent=context.pop("agent", self.current_label()), **context))

    def _next_token(self, agent_index):
        self._store_seq[agent_index] += 1
        return "{}.w{}".format(self.labels[agent_index],
                               self._store_seq[agent_index])

    # -- scheduling interface ------------------------------------------------

    def enabled_agents(self):
        return tuple(index for index, agent in enumerate(self.scenario.agents)
                     if self.pcs[index] < len(agent.events))

    def done(self):
        return not self.enabled_agents()

    def step(self, agent_index):
        """Run ``agent_index``'s next event; returns the violations it
        (or the post-state invariant sweep) produced."""
        events = self.scenario.agents[agent_index].events
        if self.pcs[agent_index] >= len(events):
            raise IndexError("agent {} has no events left".format(
                self.labels[agent_index]))
        event = events[self.pcs[agent_index]]
        self.pcs[agent_index] += 1
        self.step_count += 1
        self.current_agent = agent_index
        try:
            self._execute(agent_index, event)
        except ReproError as exc:
            self._violations.append(violation_from_exception(self, exc))
        finally:
            self.current_agent = None
        out = self._violations + check_step(self)
        self._violations = []
        return out

    def finalize(self):
        """End-of-trace drain + quiescence sweep.

        Two flush passes: a producer's flush can push a forward into a
        consumer flushed earlier in the same pass (FUSION-Dx), and that
        forwarded dirty data must still reach the L1X.
        """
        for _ in range(2):
            for agent_index, agent in enumerate(self.scenario.agents):
                if agent.role != "axc":
                    continue
                self.current_agent = agent_index
                try:
                    self.now += self._flush(self.axc_of[agent_index])
                except ReproError as exc:
                    self._violations.append(
                        violation_from_exception(self, exc))
                finally:
                    self.current_agent = None
        out = self._violations + check_step(self) + check_quiescence(self)
        self._violations = []
        return out

    # -- event driver --------------------------------------------------------

    def _execute(self, agent_index, event):
        kind = event[0]
        if kind == "advance":
            self.now += event[1]
            return
        if kind == "flush":
            self.now += self._flush(self.axc_of[agent_index])
            return
        if kind == "run":
            self._axc_run(agent_index, event[1], event[2], event[3])
            return
        if kind == "invoke":
            self._axc_invoke(agent_index, event[1], event[2], event[3])
            return
        if kind == "batch":
            self._axc_batch(agent_index, event[1], event[2], event[3])
            return
        if self.axc_of[agent_index] is None:
            self._host_access(agent_index, kind, event[1])
        else:
            self._axc_access(agent_index, kind, event[1])

    def _host_access(self, agent_index, kind, block_index):
        paddr = self.page_table.translate(block_vaddr(block_index))
        pblock = block_address(paddr)
        self._op_seq[agent_index] += 1
        seq = self._op_seq[agent_index]
        if kind == "store":
            token = self._next_token(agent_index)
            self.now += self.host.host_store(paddr, self.now)
            # The store supersedes anything a forwarded invalidation
            # just pulled out of the tile.
            self.host_value[pblock] = token
            self.host_l1_value[pblock] = token
            self.final_writer[pblock] = token
        else:
            pre_hit = self.host.l1.contains(pblock)
            self.now += self.host.host_load(paddr, self.now)
            if pre_hit:
                observed = self.host_l1_value.get(pblock, INIT)
            else:
                observed = self.host_value.get(pblock, INIT)
                self.host_l1_value[pblock] = observed
            self.observations.append(
                (self.labels[agent_index], seq, block_index, observed))

    def _axc_access(self, agent_index, kind, block_index):
        raise NotImplementedError

    def _axc_run(self, agent_index, kind, block_index, count):
        raise NotImplementedError

    def _axc_invoke(self, agent_index, kind, block_index, count):
        raise NotImplementedError

    def _axc_batch(self, agent_index, kind, block_index, count):
        raise NotImplementedError

    def _flush(self, ordinal):
        raise NotImplementedError

    def final_value(self, block_index):
        raise NotImplementedError

    # -- canonical state -----------------------------------------------------

    def _cache_snapshot(self, cache):
        # Sorted by LRU age: captures both content and eviction order
        # (ranks, not raw use clocks — those differ across equivalent
        # histories and would defeat pruning).
        lines = sorted(cache.lines(), key=lambda l: l.last_use)
        return tuple(
            (rank, line.block, line.state, bool(line.dirty), line.lease,
             line.gtime, line.write_epoch_end, line.paddr, line.pid)
            for rank, line in enumerate(lines))

    def _shadow_snapshot(self):
        return (
            tuple(sorted(self.pending.items())),
            tuple(sorted(self.fwd_pending.items())),
            tuple(sorted(self.shadow_lease.items())),
            tuple(sorted(self.l0x_value.items())),
            tuple(sorted(self.l1x_value.items())),
            tuple(sorted(self.host_value.items())),
            tuple(sorted(self.host_l1_value.items())),
            tuple(sorted(self.final_writer.items())),
        )

    def _host_snapshot(self):
        directory = tuple(sorted(
            (pblock, entry.owner, tuple(sorted(entry.sharers)))
            for pblock, entry in self.host.directory._entries.items()
            if not entry.is_idle))
        dram = tuple(sorted(self.host.dram._open_rows.items()))
        return (self._cache_snapshot(self.host.l1),
                self._cache_snapshot(self.host.l2), directory, dram)

    def snapshot(self):
        return (self.kind, self.now, tuple(self.pcs),
                self._tile_snapshot(), self._host_snapshot(),
                self._shadow_snapshot())

    def state_hash(self):
        """Process-stable hash of the canonical state."""
        payload = repr(self.snapshot()).encode("utf-8")
        return hashlib.md5(payload).hexdigest()[:16]

    def _tile_snapshot(self):
        raise NotImplementedError


class AccWorld(CheckWorld):
    """FUSION's tile: per-AXC L0Xs under the ACC L1X (MEI at the host).

    ``kind == "dx"`` additionally installs the FUSION-Dx forward hook
    driven by the scenario's producer->consumer plan.
    """

    def __init__(self, scenario):
        self.kind = scenario.kind
        super().__init__(scenario)

    def _build(self):
        #: ``invoke`` replay store: (ordinal, kind, block, count) ->
        #: recorded guard/transform entries.  Deliberately *not* part of
        #: the canonical snapshot: a replayed invocation is observation-
        #: and state-equivalent to its per-op expansion, so two prefixes
        #: reaching the same snapshot have identical futures whether or
        #: not their stores agree.
        self._replay_store = {}
        #: ``batch`` event SoA windows, keyed (kind, block, count);
        #: ``None`` entries mark numpy-less fallback.  Not part of the
        #: canonical snapshot: windows are pure compilations of the
        #: event, identical however a prefix reached the state.
        self._batch_windows = {}
        self.l1x = AccL1XController(self.config, self.host,
                                    self.page_table, self.stats)
        self.host.tile_agent = self.l1x
        self.axc_link = Link("axc_l1x",
                             self.config.link.axc_l1x_pj_per_byte,
                             self.stats)
        self.fwd_link = Link("l0x_l0x",
                             self.config.link.l0x_l0x_pj_per_byte,
                             self.stats)
        self.l0xs = [
            AccL0XController(ordinal, self.config, self.l1x,
                             self.axc_link, self.fwd_link, self.stats)
            for ordinal in range(self.num_axcs)]
        self._install_shadow()
        if self.kind == "dx":
            plan = {block_vaddr(block): consumer
                    for block, consumer in self.scenario.forward_plan}
            world = self

            def forward_hook(l0x, line, now):
                consumer = plan.get(line.block)
                if consumer is None or consumer == l0x.axc_id:
                    return False
                l0x.forward_line_obj(line, world.l0xs[consumer], now)
                return True

            for l0x in self.l0xs:
                l0x.forward_hook = forward_hook

    # -- shadow wraps (instance-level, innermost) ----------------------------

    def _install_shadow(self):
        world = self
        l1x = self.l1x

        real_acquire = l1x.acquire

        def acquire(vblock, now, lease, is_write, pid=0):
            latency, epoch_end = real_acquire(vblock, now, lease,
                                              is_write, pid)
            ordinal = world.current_axc()
            if ordinal is not None:
                world.shadow_lease[(ordinal, vblock)] = epoch_end
            line = l1x.cache.lookup(vblock, touch=False)
            gtime = line.gtime if line is not None else None
            if gtime is None or gtime < epoch_end:
                world.report(
                    "gtime-bounds-epoch",
                    "granted epoch ends at {} but the L1X GTIME is "
                    "{}".format(epoch_end, gtime),
                    block=vblock, epoch=epoch_end)
            return latency, epoch_end

        l1x.acquire = acquire

        real_fill = l1x._fill

        def fill(vblock, now, pid=0):
            latency = real_fill(vblock, now, pid)
            line = l1x.cache.lookup(vblock, touch=False)
            if line is not None and line.paddr is not None:
                world.l1x_value[vblock] = world.host_value.get(
                    line.paddr, INIT)
            return latency

        l1x._fill = fill

        real_retire = l1x._retire

        def retire(victim, now):
            if victim.dirty and victim.paddr is not None:
                world.host_value[victim.paddr] = world.l1x_value.get(
                    victim.block, INIT)
            world.l1x_value.pop(victim.block, None)
            return real_retire(victim, now)

        l1x._retire = retire

        real_writeback = l1x.writeback_from_l0x

        def writeback_from_l0x(vblock, now, pid=0, epoch_end=None):
            vblock_aligned = block_address(vblock)
            ordinal = world.current_axc()
            token = world.pending.pop((ordinal, vblock_aligned), None)
            if token is None:
                world.report(
                    "conservation",
                    "writeback of a block with no outstanding dirty "
                    "value (duplicated data)",
                    block=vblock_aligned)
                token = world.l0x_value.get((ordinal, vblock_aligned),
                                            INIT)
            line = l1x.cache.lookup(vblock_aligned, touch=False)
            resident = line is not None and line.pid == pid
            latency = real_writeback(vblock, now, pid,
                                     epoch_end=epoch_end)
            if resident:
                world.l1x_value[vblock_aligned] = token
            else:
                # Late writeback: the data went straight to the host.
                paddr = world.page_table.translate(vblock_aligned)
                world.host_value[block_address(paddr)] = token
            return latency

        l1x.writeback_from_l0x = writeback_from_l0x

        real_forwarded = l1x.handle_forwarded_request

        def handle_forwarded_request(pblock, now, is_store):
            vblock = l1x.rmap._map.get(pblock)
            stall, dirty = real_forwarded(pblock, now, is_store)
            if dirty:
                world.host_value[pblock] = world.l1x_value.get(
                    vblock, INIT)
            if vblock is not None:
                world.l1x_value.pop(vblock, None)
            return stall, dirty

        l1x.handle_forwarded_request = handle_forwarded_request

        for producer_ordinal, l0x in enumerate(self.l0xs):
            self._wrap_forward(producer_ordinal, l0x)

    def _wrap_forward(self, producer, l0x):
        world = self
        real_forward = l0x.forward_line_obj
        real_accept = l0x._accept_forward
        real_drain = l0x._drain_forward

        def forward_line_obj(line, consumer, now):
            block = line.block
            real_forward(line, consumer, now)
            consumer_ordinal = consumer.axc_id
            token = world.pending.pop((producer, block), None)
            if token is None:
                world.report(
                    "conservation",
                    "forwarded a line with no outstanding dirty value",
                    agent="axc{}".format(producer), block=block)
                token = world.l0x_value.get((producer, block), INIT)
            # The *true* epoch the data travels with is the producer's
            # granted one, not whatever the (possibly mutated)
            # controller stamped on the line.
            carried = world.shadow_lease.get((producer, block), now)
            key = (consumer_ordinal, block)
            if key in world.fwd_pending:
                world.report(
                    "conservation",
                    "forward overwrote an unconsumed forwarded value "
                    "{!r} (lost data)".format(world.fwd_pending[key][0]),
                    agent="axc{}".format(consumer_ordinal), block=block)
            world.fwd_pending[key] = (token, carried)
            world.l0x_value.pop((producer, block), None)

        def accept_forward(vblock, now, lease):
            key = (l0x.axc_id, vblock)
            entry = world.fwd_pending.pop(key, None)
            if entry is None:
                world.report(
                    "conservation",
                    "accepted a forward the shadow model never saw",
                    agent="axc{}".format(l0x.axc_id), block=vblock)
                entry = (INIT, now)
            token, carried = entry
            # If the carried epoch is truly live it stays the line's
            # epoch; a renewal inside the real call goes through the
            # wrapped ``l1x.acquire`` and overwrites this.
            world.shadow_lease[key] = carried
            out = real_accept(vblock, now, lease)
            # The forwarded value became the consumer's own dirty line.
            world.l0x_value[key] = token
            world.pending[key] = token
            return out

        def drain_forward(vblock, now):
            key = (l0x.axc_id, vblock)
            entry = world.fwd_pending.pop(key, None)
            if entry is None:
                world.report(
                    "conservation",
                    "drained a forward the shadow model never saw",
                    agent="axc{}".format(l0x.axc_id), block=vblock)
                entry = (INIT, now)
            if key in world.pending:
                world.report(
                    "conservation",
                    "drain found the consumer's own dirty value {!r} "
                    "still outstanding".format(world.pending[key]),
                    agent="axc{}".format(l0x.axc_id), block=vblock)
            # The inner writeback wrap pops this as the value sent down.
            world.pending[key] = entry[0]
            return real_drain(vblock, now)

        l0x.forward_line_obj = forward_line_obj
        l0x._accept_forward = accept_forward
        l0x._drain_forward = drain_forward

    # -- AXC event driver ----------------------------------------------------

    def _protocol_op(self, agent_index, kind, block_index):
        """One real controller access, with the stale-epoch shadow
        checks — the per-op primitive shared by single access events
        and the run fallback expansion.  Returns ``(ctrl_hit,
        forward_hit)`` so callers can classify what the value model
        should have observed."""
        ordinal = self.axc_of[agent_index]
        l0x = self.l0xs[ordinal]
        op = MemOp(AccessType.STORE if kind == "store" else AccessType.LOAD,
                   block_vaddr(block_index))
        vblock = op.block
        now = self.now
        # Pre-classify the access the same way the controller will, so
        # the shadow observation matches the protocol's actual path.
        line = l0x.cache.lookup(vblock, touch=False)
        ctrl_hit = line is not None and line.lease is not None and \
            line.lease > now
        forward_hit = not ctrl_hit and vblock in l0x._incoming_forwards
        if ctrl_hit:
            true_end = self.shadow_lease.get((ordinal, vblock))
            if true_end is None or true_end <= now:
                self.report(
                    "stale-epoch-use",
                    "controller served a hit at t={} on an epoch that "
                    "ended at {}".format(now, true_end),
                    block=vblock, epoch=true_end)
        self.now += l0x.access(op, now, self.scenario.lease)
        if forward_hit:
            # Accepting a forward must leave the line under a live true
            # epoch — either the carried one, or a renewal granted now.
            true_end = self.shadow_lease.get((ordinal, vblock))
            if true_end is None or true_end <= now:
                self.report(
                    "stale-epoch-use",
                    "forward accepted at t={} without renewing its "
                    "expired epoch (ended {})".format(now, true_end),
                    block=vblock, epoch=true_end)
        return ctrl_hit, forward_hit

    def _axc_access(self, agent_index, kind, block_index):
        ordinal = self.axc_of[agent_index]
        vblock = block_vaddr(block_index)
        self._op_seq[agent_index] += 1
        seq = self._op_seq[agent_index]
        self.issued[ordinal] += 1
        token = self._next_token(agent_index) if kind == "store" else None
        ctrl_hit, forward_hit = self._protocol_op(agent_index, kind,
                                                  block_index)
        if kind == "store":
            # A store supersedes whatever the line held (its previous
            # value never left the L0X), including a just-accepted
            # forward.
            self.l0x_value[(ordinal, vblock)] = token
            self.pending[(ordinal, vblock)] = token
        else:
            if ctrl_hit or forward_hit:
                # Hit on our own line, or on a forward the accept wrap
                # just folded into it.
                observed = self.l0x_value.get((ordinal, vblock), INIT)
            else:
                observed = self.l0x_value[(ordinal, vblock)] = \
                    self.l1x_value.get(vblock, INIT)
            self.observations.append(
                (self.labels[agent_index], seq, block_index, observed))

    def _axc_run(self, agent_index, kind, block_index, count):
        """One steady-state run event, issued the way ``AxcCore.run``
        issues a compiled phase: quote the whole window via the L0X's
        ``phase_quote`` and apply it in bulk, or — when the guard
        declines — drop down the fallback ladder and expand per-op.

        The shadow checks mirror ``_protocol_op``'s: a granted quote
        serves every op of the window as a hit, so the line's *true*
        epoch must cover the window's last access instant (the guard's
        own bound, re-derived from the shadow leases).  A mutation that
        skews the guard (``phase-guard-skip``) is caught right here as
        ``stale-epoch-use``.

        A run is one logical event: one observation (loads) or one
        write token (stores) regardless of ``count`` — both paths
        must agree on it, which is exactly the engine's bit-identity
        contract at checker scale.
        """
        ordinal = self.axc_of[agent_index]
        l0x = self.l0xs[ordinal]
        op = MemOp(AccessType.STORE if kind == "store" else AccessType.LOAD,
                   block_vaddr(block_index))
        vblock = op.block
        key = (ordinal, vblock)
        now = self.now
        self._op_seq[agent_index] += 1
        seq = self._op_seq[agent_index]
        self.issued[ordinal] += count
        token = self._next_token(agent_index) if kind == "store" else None
        quote = l0x.phase_quote(single_run_phase(op, count), now, now, 0)
        if quote is not None:
            load_lat, store_lat = quote
            lat = store_lat if kind == "store" else load_lat
            # The quote serves ops at now, now+lat, ..., now+(n-1)*lat;
            # every one must land inside the line's true epoch.
            last_clock = now + (count - 1) * lat
            true_end = self.shadow_lease.get(key)
            if true_end is None or true_end <= last_clock:
                self.report(
                    "stale-epoch-use",
                    "phase quote served {} ops through t={} on an epoch "
                    "that ended at {}".format(count, last_clock, true_end),
                    block=vblock, epoch=true_end)
            self.now += count * lat
            if kind == "store":
                self.l0x_value[key] = token
                self.pending[key] = token
            else:
                self.observations.append(
                    (self.labels[agent_index], seq, block_index,
                     self.l0x_value.get(key, INIT)))
            return
        # Guard declined: the window drops to the per-op path (the
        # checker skips the middle coalesced rung — same protocol
        # transitions, so the observable contract is identical).
        observed = INIT
        for _ in range(count):
            ctrl_hit, forward_hit = self._protocol_op(agent_index, kind,
                                                      block_index)
            if kind == "store":
                # Set per op, not after the loop: a mid-run expiry
                # self-downgrades the dirty line, and the writeback
                # wrap must find the token outstanding.
                self.l0x_value[key] = token
                self.pending[key] = token
            elif ctrl_hit or forward_hit:
                observed = self.l0x_value.get(key, INIT)
            else:
                observed = self.l0x_value[key] = \
                    self.l1x_value.get(vblock, INIT)
        if kind != "store":
            self.observations.append(
                (self.labels[agent_index], seq, block_index, observed))

    def _batch_window(self, kind, block_index, count):
        """The cached two-phase SoA window of one ``batch`` event:
        ``count`` loads on ``block_index``, then ``count`` ops of
        ``kind`` on ``block_index + 1``.  ``None`` on a numpy-less
        install (the event then expands fully per-op, exactly like the
        production core's fallback)."""
        key = (kind, block_index, count)
        window = self._batch_windows.get(key)
        if window is None and key not in self._batch_windows:
            if vector_mod.HAVE_NUMPY:
                head = single_run_phase(
                    MemOp(AccessType.LOAD, block_vaddr(block_index)),
                    count)
                tail = single_run_phase(
                    MemOp(AccessType.STORE if kind == "store"
                          else AccessType.LOAD,
                          block_vaddr(block_index + 1)),
                    count)
                window = vector_mod.build_window(
                    ((head, None), (tail, None)))
            self._batch_windows[key] = window
        return window

    def _axc_batch(self, agent_index, kind, block_index, count):
        """One two-phase vectorized window through the batched quote
        rung, issued the way ``AxcCore._run_window`` issues it: quote
        the whole window via the L0X's ``phase_quote_batch``, apply
        the accepted prefix in bulk, and expand everything past the
        prefix down the fallback ladder per-op.

        The shadow checks extend ``_axc_run``'s quote branch across
        phases with a *cumulative* clock: an accepted phase ``j``
        serves its ops at ``clock, clock+lat, ...``, where ``clock``
        already includes every earlier accepted phase's span — so each
        phase's line must hold a *true* epoch (the shadow lease, which
        a mutation cannot skew) covering its own last access instant.
        A batched guard skewed into accepting anyway — the
        ``batch-guard-skip`` mutation — is caught right here as
        ``stale-epoch-use``.

        Each phase of the window is one logical event, exactly like a
        ``run``: one observation (loads) or one write token (stores)
        regardless of ``count``, and the accepted and expanded paths
        must agree on it — the engine's bit-identity contract at
        checker scale.
        """
        ordinal = self.axc_of[agent_index]
        l0x = self.l0xs[ordinal]
        window = self._batch_window(kind, block_index, count)
        phase_specs = (
            ("load", block_index),
            (kind, block_index + 1),
        )
        accepted = 0
        load_lat = store_lat = 0
        if window is not None:
            quote = l0x.phase_quote_batch(window, self.now, self.now, 0)
            if quote is not None:
                accepted, load_lat, store_lat = quote
        for j in range(accepted):
            phase_kind, phase_block = phase_specs[j]
            vblock = block_vaddr(phase_block)
            key = (ordinal, vblock)
            lat = store_lat if phase_kind == "store" else load_lat
            self._op_seq[agent_index] += 1
            seq = self._op_seq[agent_index]
            self.issued[ordinal] += count
            last_clock = self.now + (count - 1) * lat
            true_end = self.shadow_lease.get(key)
            if true_end is None or true_end <= last_clock:
                self.report(
                    "stale-epoch-use",
                    "batched quote served phase {} ({} x{}) through "
                    "t={} on an epoch that ended at {}".format(
                        j, phase_kind, count, last_clock, true_end),
                    block=vblock, epoch=true_end)
            self.now += count * lat
            if phase_kind == "store":
                token = self._next_token(agent_index)
                self.l0x_value[key] = token
                self.pending[key] = token
            else:
                self.observations.append(
                    (self.labels[agent_index], seq, phase_block,
                     self.l0x_value.get(key, INIT)))
        # Everything past the accepted prefix drops down the ladder:
        # per-phase expansion through the per-op primitive (the checker
        # skips the middle rungs — same protocol transitions).
        for j in range(accepted, len(phase_specs)):
            phase_kind, phase_block = phase_specs[j]
            vblock = block_vaddr(phase_block)
            key = (ordinal, vblock)
            self._op_seq[agent_index] += 1
            seq = self._op_seq[agent_index]
            self.issued[ordinal] += count
            token = self._next_token(agent_index) \
                if phase_kind == "store" else None
            observed = INIT
            for _ in range(count):
                ctrl_hit, forward_hit = self._protocol_op(
                    agent_index, phase_kind, phase_block)
                if phase_kind == "store":
                    # Per op, not after the loop — see ``_axc_run``.
                    self.l0x_value[key] = token
                    self.pending[key] = token
                elif ctrl_hit or forward_hit:
                    observed = self.l0x_value.get(key, INIT)
                else:
                    observed = self.l0x_value[key] = \
                        self.l1x_value.get(vblock, INIT)
            if phase_kind != "store":
                self.observations.append(
                    (self.labels[agent_index], seq, phase_block,
                     observed))

    # -- invocation replay rung (repro.accel.replay at checker scale) --------

    def _replay_match(self, ordinal, recording, now):
        """Probe one recording's guard against the live L0X state.

        A separate method so the ``stale-replay-fingerprint`` mutation
        can corrupt what the guard sees while the shadow model keeps
        the truth — exactly how the ``phase-guard-skip`` mutation
        attacks the rung below.
        """
        return match_cache_signature(self.l0xs[ordinal].cache,
                                     recording["signature"], now)

    def _axc_invoke(self, agent_index, kind, block_index, count):
        """One guarded mini-invocation through the replay rung.

        This is the checker-scale image of
        ``InvocationReplayEngine.run_invocation``: the first *clean*
        occurrence of an ``invoke`` key — every op a genuine L0X hit,
        no acquire, no violation mid-span — is expanded per-op through
        ``_protocol_op`` and its effect recorded with the production
        guard builder (``build_cache_recording``, lease fields clamped
        to PAST/COVERS classes).  Later occurrences probe the recorded
        signature with the production matcher and, on a match, serve
        the whole invocation in bulk: cache transform, recorded counter
        deltas, one clock rebase.  On a mismatch the rung declines to
        the per-op ladder, which is always correct.

        The shadow per-op check mirrors ``_axc_run``'s quote branch
        one level up: a replay serves every op as a hit, so the line's
        *true* epoch (the shadow lease, which a mutation cannot skew)
        must cover the instant the last replayed op issues.  A guard
        matching under a dead epoch — the ``stale-replay-fingerprint``
        mutation — is caught right here as ``stale-epoch-use``.

        Like a run, an invoke is one logical event: one observation
        (loads) or one write token (stores) regardless of ``count``,
        and both paths must agree on it — the engine's bit-identity
        contract at checker scale.
        """
        ordinal = self.axc_of[agent_index]
        l0x = self.l0xs[ordinal]
        vblock = block_vaddr(block_index)
        key = (ordinal, vblock)
        store_key = (ordinal, kind, block_index, count)
        now = self.now
        self._op_seq[agent_index] += 1
        seq = self._op_seq[agent_index]
        self.issued[ordinal] += count
        token = self._next_token(agent_index) if kind == "store" else None
        for recording in self._replay_store.get(store_key, ()):
            if not self._replay_match(ordinal, recording, now):
                continue
            last_issue = now + recording["last_rel"]
            true_end = self.shadow_lease.get(key)
            if true_end is None or true_end <= last_issue:
                self.report(
                    "stale-epoch-use",
                    "replayed an invocation of {} ops whose last hit "
                    "issues at t={} on an epoch that ended at "
                    "{}".format(count, last_issue, true_end),
                    block=vblock, epoch=true_end)
            apply_cache_transform(l0x.cache, recording["transform"], now)
            self.stats.bulk_add(recording["stats_delta"])
            self.now += recording["duration"]
            if kind == "store":
                self.l0x_value[key] = token
                self.pending[key] = token
            else:
                self.observations.append(
                    (self.labels[agent_index], seq, block_index,
                     self.l0x_value.get(key, INIT)))
            return
        # Guard declined (or nothing recorded yet): expand per-op and
        # record the invocation when the expansion stayed hits-only.
        pre = l0x.state_signature()
        stats_before = self.stats.snapshot()
        lease_before = dict(self.shadow_lease)
        violations_before = len(self._violations)
        all_hits = True
        last_issue = now
        observed = INIT
        for _ in range(count):
            last_issue = self.now
            ctrl_hit, forward_hit = self._protocol_op(agent_index, kind,
                                                      block_index)
            all_hits = all_hits and ctrl_hit
            if kind == "store":
                # Per op, not after the loop — see ``_axc_run``.
                self.l0x_value[key] = token
                self.pending[key] = token
            elif ctrl_hit or forward_hit:
                observed = self.l0x_value.get(key, INIT)
            else:
                observed = self.l0x_value[key] = \
                    self.l1x_value.get(vblock, INIT)
        if kind != "store":
            self.observations.append(
                (self.labels[agent_index], seq, block_index, observed))
        # Guardable = the steady hits-only shape: no acquire (the
        # shadow leases are untouched), no L1X or host traffic, no
        # violation mid-span.  Everything else keeps falling through
        # per-op, which handles every messy case correctly.
        if (not all_hits or self.shadow_lease != lease_before
                or len(self._violations) != violations_before):
            return
        recordings = self._replay_store.setdefault(store_key, [])
        if len(recordings) >= REPLAY_RECORDINGS_PER_KEY:
            return
        duration = self.now - now
        try:
            signature, transform = build_cache_recording(
                pre, l0x.state_signature(), now, clamp_lease=True,
                cover=8 * duration + 64)
        except Ineligible:
            return
        recordings.append({
            "signature": signature,
            "transform": transform,
            "duration": duration,
            "last_rel": last_issue - now,
            "stats_delta": tuple(sorted(
                self.stats.diff(stats_before).items())),
        })

    def _flush(self, ordinal):
        return self.l0xs[ordinal].flush_dirty(self.now)

    def final_value(self, block_index):
        vblock = block_vaddr(block_index)
        if vblock in self.l1x_value:
            return self.l1x_value[vblock]
        return self.host_value.get(self.pblock_of(block_index), INIT)

    def _tile_snapshot(self):
        tlb_entries = tuple(sorted(self.l1x.tlb._entries))
        forwards = tuple(
            tuple(sorted(l0x._incoming_forwards.items()))
            for l0x in self.l0xs)
        return (tuple(self._cache_snapshot(l0x.cache)
                      for l0x in self.l0xs),
                self._cache_snapshot(self.l1x.cache),
                tuple(sorted(self.l1x.rmap._map.items())),
                tlb_entries, forwards)


class SharedWorld(CheckWorld):
    """The SHARED baseline: one MESI-agent L1X, no leases, no L0Xs."""

    kind = "shared"

    def _build(self):
        self.shared = SharedL1XController(self.config, self.host,
                                          self.page_table, self.stats)
        self.host.tile_agent = self.shared
        self.shared.axc_link = Link(
            "axc_l1x", self.config.link.axc_l1x_pj_per_byte, self.stats)
        self.l0xs = []  # uniform interface for the invariant suite
        self._install_shadow()

    def _install_shadow(self):
        world = self
        shared = self.shared
        host = self.host

        real_fill = shared._fill

        def fill(pblock, now):
            latency, line = real_fill(pblock, now)
            world.l1x_value[pblock] = world.host_value.get(pblock, INIT)
            return latency, line

        shared._fill = fill

        real_writeback = host.tile_writeback

        def tile_writeback(pblock, dirty, now=0, tile=None):
            # In the SHARED world every tile writeback (eviction or
            # flush PUTX) relinquishes the line, so the shadow value
            # moves down to the host.
            aligned = block_address(pblock)
            if dirty:
                world.host_value[aligned] = world.l1x_value.get(
                    aligned, INIT)
            world.l1x_value.pop(aligned, None)
            if tile is None:
                return real_writeback(pblock, dirty, now)
            return real_writeback(pblock, dirty, now, tile)

        host.tile_writeback = tile_writeback

        real_forwarded = shared.handle_forwarded_request

        def handle_forwarded_request(pblock, now, is_store):
            stall, dirty = real_forwarded(pblock, now, is_store)
            if dirty:
                world.host_value[pblock] = world.l1x_value.get(
                    pblock, INIT)
            world.l1x_value.pop(pblock, None)
            return stall, dirty

        shared.handle_forwarded_request = handle_forwarded_request

    def _axc_access(self, agent_index, kind, block_index):
        ordinal = self.axc_of[agent_index]
        vaddr = block_vaddr(block_index)
        op = MemOp(AccessType.STORE if kind == "store" else AccessType.LOAD,
                   vaddr)
        pblock = block_address(self.page_table.translate(vaddr))
        self._op_seq[agent_index] += 1
        seq = self._op_seq[agent_index]
        self.issued[ordinal] += 1
        token = self._next_token(agent_index) if kind == "store" else None
        self.now += self.shared.access(op, self.now)
        if kind == "store":
            self.l1x_value[pblock] = token
            self.final_writer[pblock] = token
        else:
            observed = self.l1x_value.get(pblock, INIT)
            self.observations.append(
                (self.labels[agent_index], seq, block_index, observed))

    def _flush(self, ordinal):
        # The shared L1X drains once, not per AXC; draining it on the
        # first AXC's turn keeps flush idempotent for the second pass.
        return self.shared.flush(self.now)

    def final_value(self, block_index):
        pblock = self.pblock_of(block_index)
        if pblock in self.l1x_value:
            return self.l1x_value[pblock]
        return self.host_value.get(pblock, INIT)

    def _tile_snapshot(self):
        return (self._cache_snapshot(self.shared.cache),)
