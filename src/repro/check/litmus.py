"""Litmus tests: legal-outcome checking on top of the explorer.

Where the invariant suite checks *state* properties every step, a litmus
test checks *observable behaviour*: it enumerates every interleaving of
a tiny program (no pruning — outcomes depend on observation history, not
just reachable state) and asserts the set of outcomes seen is exactly a
hand-verified legal set.

An outcome is a frozenset of strings: one ``"label#seq:bK=token"`` entry
per load the program performs (``seq`` is the agent's 1-based memory-op
index) plus one ``"final:bK=token"`` entry per block the test declares
interesting.  Tokens are the shadow model's write names (``axc0.w1`` is
the first store agent axc0 performed) or ``init`` for the pre-trace
value.

The legal sets below were derived by enumerating the correct protocol
and then argued by hand (comments on each test); the harness asserts
exact equality, so a protocol change that *removes* behaviours fails the
same way as one that adds illegal ones — both mean the model's semantics
moved and the argument must be redone.
"""

from dataclasses import dataclass

from .explorer import explore
from .scenarios import DEFAULT_LEASE, EXPIRE, Agent, Scenario


@dataclass(frozen=True)
class LitmusTest:
    """A named program plus its exact set of legal outcomes."""

    name: str
    description: str
    scenario: Scenario
    legal: frozenset       # of frozenset[str]
    final_blocks: tuple = ()

    def outcome_of(self, observations, final_values):
        parts = ["{}#{}:b{}={}".format(label, seq, block, token)
                 for label, seq, block, token in observations]
        finals = dict(final_values)
        for block in self.final_blocks:
            parts.append("final:b{}={}".format(block, finals[block]))
        return frozenset(parts)


@dataclass(frozen=True)
class LitmusResult:
    test: object
    ok: bool
    seen: frozenset
    illegal: frozenset     # observed but not legal
    missing: frozenset     # legal but never observed
    interleavings: int
    violations: tuple      # invariant violations (also fail the test)

    def to_dict(self):
        return {
            "litmus": self.test.name,
            "ok": self.ok,
            "interleavings": self.interleavings,
            "outcomes": sorted(sorted(o) for o in self.seen),
            "illegal": sorted(sorted(o) for o in self.illegal),
            "missing": sorted(sorted(o) for o in self.missing),
            "violations": [v.to_dict() for v in self.violations],
        }


def run_litmus(test, mutation=None):
    """Enumerate every interleaving of ``test`` and judge the outcomes."""
    result = explore(test.scenario, depth=test.scenario.total_events,
                     mutation=mutation, prune=False, shrink=False)
    if result.failure is not None:
        return LitmusResult(
            test=test, ok=False, seen=frozenset(),
            illegal=frozenset(), missing=frozenset(),
            interleavings=result.interleavings,
            violations=result.failure.violations)
    seen = frozenset(
        test.outcome_of(observations, final_values)
        for observations, final_values in (
            (outcome[:len(outcome) - test.scenario.num_blocks],
             outcome[len(outcome) - test.scenario.num_blocks:])
            for outcome in result.outcomes))
    illegal = seen - test.legal
    missing = test.legal - seen
    return LitmusResult(
        test=test, ok=not illegal and not missing, seen=seen,
        illegal=illegal, missing=missing,
        interleavings=result.interleavings, violations=())


def _outcomes(*outcome_lists):
    return frozenset(frozenset(outcome) for outcome in outcome_lists)


def _axc(*events):
    return Agent("axc", tuple(events))


def _host(*events):
    return Agent("host", tuple(events))


# ---------------------------------------------------------------------------
# the litmus programs
# ---------------------------------------------------------------------------

# Message passing (MP): axc0 writes data (b0) then flag (b1) and flushes;
# axc1 reads flag then data.  ACC is *not* sequentially consistent
# between flushes — writes become visible only at the self-downgrade —
# so the classic forbidden outcome (flag new, data old) IS reachable
# while both writes sit dirty in axc0's L0X.  What must hold instead is
# ACC's actual contract: after axc0's flush, a *miss* by axc1 sees both
# writes; and the final L1X values are axc0's writes.  The legal set is
# every combination EXCEPT "flag seen new but data read fresh from the
# L1X still old after the flush" — concretely, both loads read the same
# coherent L1X once axc0 flushed, so (w1, init) can only appear when
# axc1's loads raced ahead of the flush.
MP = LitmusTest(
    name="message-passing",
    description="Writes become visible atomically at the flush: after "
                "axc0's self-downgrade, axc1's misses see both writes; "
                "before it, they see neither (plus the race where the "
                "flag load precedes and the data load follows the "
                "flush).",
    scenario=Scenario(
        name="litmus-mp", kind="acc",
        agents=(_axc(("store", 0), ("store", 1), ("flush",)),
                _axc(("load", 1), ("load", 0)))),
    final_blocks=(0, 1),
    legal=_outcomes(
        # Both loads before the flush: nothing visible yet.
        ["axc1#1:b1=init", "axc1#2:b0=init",
         "final:b0=axc0.w1", "final:b1=axc0.w2"],
        # Flag load before the flush, data load after it.
        ["axc1#1:b1=init", "axc1#2:b0=axc0.w1",
         "final:b0=axc0.w1", "final:b1=axc0.w2"],
        # Both loads after the flush: both writes visible.
        ["axc1#1:b1=axc0.w2", "axc1#2:b0=axc0.w1",
         "final:b0=axc0.w1", "final:b1=axc0.w2"]),
)

# Ping-pong (AXC <-> host): axc0 writes b0 and flushes; the host then
# writes and reads it back.  MEI exclusivity means every hand-off goes
# through the directory: whichever side writes, the other side's copy
# is invalidated/recalled first, so the host's read-back sees whichever
# write serialised last before it — its own, or the tile's when the
# store+flush lands between the host's store and its load (the tile's
# fill invalidated the host's L1 copy, and the load's GetS pulls the
# tile's dirty line).  What can never happen: the read seeing a value
# older than the host's own store with nothing serialised in between.
PING_PONG = LitmusTest(
    name="ping-pong",
    description="MEI exclusivity between tile and host: each write "
                "hand-off invalidates the other side, and the host's "
                "read-back sees the last serialised write.",
    scenario=Scenario(
        name="litmus-ping-pong", kind="acc",
        agents=(_axc(("store", 0), ("flush",)),
                _host(("store", 0), ("load", 0)))),
    final_blocks=(0,),
    legal=_outcomes(
        # Host ran first; the tile's late writeback serialised last.
        ["host#2:b0=host.w1", "final:b0=axc0.w1"],
        # Tile flushed first: host's write serialised last.
        ["host#2:b0=host.w1", "final:b0=host.w1"],
        # Tile's store+flush landed between host store and host load:
        # the load's GetS pulls the tile's dirty line.
        ["host#2:b0=axc0.w1", "final:b0=axc0.w1"]),
)

# Producer -> consumer forwarding (FUSION-Dx): axc0's dirty b0 is
# forwarded into axc1's L0X at the flush.  The consumer's load sees the
# produced value iff it runs after the forward (its miss beats the
# forward otherwise); either way the produced value reaches the L1X
# exactly once.
PRODUCER_CONSUMER = LitmusTest(
    name="producer-consumer",
    description="FUSION-Dx forwarding delivers the produced value "
                "without the L1X round trip, and the dirty data still "
                "reaches the L1X exactly once.",
    scenario=Scenario(
        name="litmus-dx", kind="dx",
        agents=(_axc(("store", 0), ("flush",)),
                _axc(("load", 0), ("flush",))),
        forward_plan=((0, 1),)),
    final_blocks=(0,),
    legal=_outcomes(
        # Consumer load before the producer's flush: old value.
        ["axc1#1:b0=init", "final:b0=axc0.w1"],
        # Consumer load after the forward: produced value, from its L0X.
        ["axc1#1:b0=axc0.w1", "final:b0=axc0.w1"]),
)

# Lease-expiry race: axc0 reads b0, waits out its lease, reads again;
# the host stores b0 concurrently.  The second read happens strictly
# after the lease expired, so it can NEVER return the first epoch's
# value stale: it re-requests and sees the serialisation-order value —
# init if the host has not stored yet, the host's write if it has.
# The first read may see either, depending on the race.
LEASE_EXPIRY = LitmusTest(
    name="lease-expiry-race",
    description="Self-invalidation: after its lease expires, a reader "
                "re-requests and observes the serialised value; the "
                "expired epoch's value cannot be served again.",
    scenario=Scenario(
        name="litmus-lease-expiry", kind="acc",
        agents=(_axc(("load", 0), ("advance", EXPIRE), ("load", 0)),
                _host(("store", 0)))),
    final_blocks=(0,),
    legal=_outcomes(
        # Host store after both reads.
        ["axc0#1:b0=init", "axc0#2:b0=init", "final:b0=host.w1"],
        # Host store between the reads (or before the expiry).
        ["axc0#1:b0=init", "axc0#2:b0=host.w1", "final:b0=host.w1"],
        # Host store before the first read.
        ["axc0#1:b0=host.w1", "axc0#2:b0=host.w1",
         "final:b0=host.w1"]),
)

# Phase boundary: axc0 warms b0 (load), serves a steady-state window
# over it (run of 4 — the phase fast path, its lease still live), waits
# out the lease, then issues a second window that opens exactly one
# event after the epoch died.  The host stores b0 concurrently.  The
# phase guard must decline the post-expiry quote — a ``run`` event is
# the engine's unit of work, so serving it would replay the whole dead
# epoch in bulk — and the per-op fallback re-requests and observes the
# serialisation-order value.  Legal outcomes are exactly the monotone
# ones: once the host's store serialises before an axc0 event, every
# later observation sees it; the forbidden outcomes (any window reading
# ``init`` after an earlier event saw ``host.w1``, and in particular
# the post-expiry window resurrecting ``init`` past the store) are how
# a guard bug — see the ``phase-guard-skip`` mutation — would surface.
# Note the first window observes exactly what the warming load did:
# hit or quote, both are served from the same live epoch.
PHASE_BOUNDARY = LitmusTest(
    name="phase-boundary",
    description="A steady-state window crossing its lease boundary is "
                "declined by the phase guard and re-requests: expired "
                "epochs are never served in bulk.",
    scenario=Scenario(
        name="litmus-phase-boundary", kind="acc",
        agents=(_axc(("load", 0), ("run", "load", 0, 4),
                     ("advance", EXPIRE), ("run", "load", 0, 4)),
                _host(("store", 0),))),
    final_blocks=(0,),
    legal=_outcomes(
        # Host store after every axc0 event (or between the last window
        # and the finalize): nothing but init is ever visible to axc0.
        ["axc0#1:b0=init", "axc0#2:b0=init", "axc0#3:b0=init",
         "final:b0=host.w1"],
        # Host store between the expiry and the second window: the
        # declined quote's per-op fallback re-requests and sees it.
        ["axc0#1:b0=init", "axc0#2:b0=init", "axc0#3:b0=host.w1",
         "final:b0=host.w1"],
        # Host store between the warming load and the first window: the
        # GTIME stall it suffered pushed the clock past the lease, so
        # the first window *also* declines and re-requests.
        ["axc0#1:b0=init", "axc0#2:b0=host.w1", "axc0#3:b0=host.w1",
         "final:b0=host.w1"],
        # Host store before the warming load.
        ["axc0#1:b0=host.w1", "axc0#2:b0=host.w1", "axc0#3:b0=host.w1",
         "final:b0=host.w1"]),
)

# Replay window: axc0 warms b0, then issues the same three-op window
# three times through the invocation replay rung.  Occurrence one is
# expanded per-op and recorded; occurrence two replays it while the
# (long, 5000-cycle) lease still COVERS-matches the recorded guard;
# occurrence three opens after an advance that expired the epoch, so
# the guard must decline — the recorded lease class no longer covers —
# and the per-op fallback re-requests.  The host stores b0
# concurrently.  Because the lease is long, a host store landing while
# the tile holds the line stalls on GTIME until the epoch ends,
# pushing the serialised clock past the lease — so the legal outcomes
# are exactly the monotone ones: once the host's store serialises
# before an axc0 event, every later observation sees it.  The
# forbidden outcomes — any window resurrecting ``init`` after an
# earlier event saw ``host.w1``, i.e. a replay served from a dead
# epoch — are what the ``stale-replay-fingerprint`` mutation
# manufactures and the replay rung's ``stale-epoch-use`` shadow check
# catches.
REPLAY_LEASE = 5000

REPLAY_WINDOW = LitmusTest(
    name="replay-window",
    description="A recorded invocation replays only under a live "
                "covering epoch: expiry makes the guard decline and "
                "the per-op fallback re-request — stale state is "
                "never served in bulk.",
    scenario=Scenario(
        name="litmus-replay-window", kind="acc", lease=REPLAY_LEASE,
        agents=(_axc(("load", 0), ("invoke", "load", 0, 3),
                     ("invoke", "load", 0, 3),
                     ("advance", REPLAY_LEASE + 1000),
                     ("invoke", "load", 0, 3)),
                _host(("store", 0),))),
    final_blocks=(0,),
    legal=_outcomes(
        # Host store after every axc0 event: axc0 only ever sees init.
        ["axc0#1:b0=init", "axc0#2:b0=init", "axc0#3:b0=init",
         "axc0#4:b0=init", "final:b0=host.w1"],
        # Host store between the expiry and the last window (or right
        # after the advance): the declined replay's per-op fallback
        # re-requests and sees it.
        ["axc0#1:b0=init", "axc0#2:b0=init", "axc0#3:b0=init",
         "axc0#4:b0=host.w1", "final:b0=host.w1"],
        # Host store between the windows: its GTIME stall pushed the
        # clock past the lease, so the second window's guard declines
        # and its fallback re-requests.
        ["axc0#1:b0=init", "axc0#2:b0=init", "axc0#3:b0=host.w1",
         "axc0#4:b0=host.w1", "final:b0=host.w1"],
        # Host store between the warming load and the first window:
        # same stall, so even the recording occurrence re-requests.
        ["axc0#1:b0=init", "axc0#2:b0=host.w1", "axc0#3:b0=host.w1",
         "axc0#4:b0=host.w1", "final:b0=host.w1"],
        # Host store before the warming load.
        ["axc0#1:b0=host.w1", "axc0#2:b0=host.w1", "axc0#3:b0=host.w1",
         "axc0#4:b0=host.w1", "final:b0=host.w1"]),
)

LITMUS_TESTS = (MP, PING_PONG, PRODUCER_CONSUMER, LEASE_EXPIRY,
                PHASE_BOUNDARY, REPLAY_WINDOW)

LITMUS_BY_NAME = {test.name: test for test in LITMUS_TESTS}
