"""repro — a reproduction of FUSION (ISCA 2015).

"Fusion: Design Tradeoffs in Coherent Cache Hierarchies for
Accelerators" (Kumar, Shriraman, Vedula) studies how fixed-function
accelerators extracted from sequential programs should cache and share
data.  This package re-implements the whole toolchain in Python: the
benchmark kernels and their dynamic traces, the four system designs
(SCRATCH, SHARED, FUSION, FUSION-Dx), the ACC lease-based coherence
protocol, the host directory-MESI substrate, and the energy models —
plus an experiment layer that regenerates every table and figure of the
paper's evaluation.

Quickstart::

    from repro import run, small_config

    result = run("FUSION", "histogram", size="small")
    print(result.accel_cycles, result.energy.total_pj)

See ``examples/`` for richer scenarios and ``benchmarks/`` for the
table/figure harness.
"""

from .common import (
    AccessType,
    CacheConfig,
    ComputeOp,
    FunctionTrace,
    MemOp,
    StatsRegistry,
    SystemConfig,
    WorkloadTrace,
    WritePolicy,
    large_config,
    small_config,
)
from .energy import EnergyBreakdown, breakdown_from_stats
from .sim import ALL_EXPERIMENTS, ExperimentTable, RunResult, run, run_all
from .systems import (
    SYSTEMS,
    FusionDxSystem,
    FusionSystem,
    ScratchSystem,
    SharedSystem,
)
from .workloads import (
    BENCHMARKS,
    LABELS,
    build_workload,
    build_workload_with_outputs,
    characterize,
)

__version__ = "1.0.0"

__all__ = [
    "AccessType", "CacheConfig", "ComputeOp", "FunctionTrace", "MemOp",
    "StatsRegistry", "SystemConfig", "WorkloadTrace", "WritePolicy",
    "large_config", "small_config",
    "EnergyBreakdown", "breakdown_from_stats",
    "ALL_EXPERIMENTS", "ExperimentTable", "RunResult", "run", "run_all",
    "SYSTEMS", "FusionDxSystem", "FusionSystem", "ScratchSystem",
    "SharedSystem",
    "BENCHMARKS", "LABELS", "build_workload", "build_workload_with_outputs",
    "characterize",
    "__version__",
]
