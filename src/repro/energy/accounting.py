"""Energy accounting: turns raw simulator counters into the component
breakdown plotted in Figure 6a.

Components (stat prefixes -> display names):

* ``compute``        — accelerator datapath activity
* ``l0x`` / ``scratchpad`` — per-AXC local storage accesses
* ``l1x``            — shared L1X accesses (SHARED / FUSION)
* ``l2``             — host LLC accesses (incl. DMA-driven ones)
* ``dram``           — main memory
* ``link.axc_l1x``   — tile-internal link (split msg vs data)
* ``link.l1x_l2``    — tile-to-host link (DMA traffic included)
* ``link.fwd``       — L0X-to-L0X forwarding link (FUSION-Dx)
* ``xlat``           — AX-TLB + AX-RMAP
"""

from dataclasses import dataclass, field

from ..workloads import vector as _vector

#: Ordered component keys used by reports and plots.
COMPONENTS = (
    "compute", "local", "l1x", "l2", "dram",
    "link_axc_l1x_msg", "link_axc_l1x_data", "link_l1x_l2", "link_fwd",
    "xlat",
)

_COMPONENT_SOURCES = {
    "compute": ("axc.compute.energy_pj",),
    "local": ("l0x.energy_pj", "scratchpad.energy_pj"),
    "l1x": ("l1x.energy_pj",),
    "l2": ("l2.energy_pj",),
    "dram": ("dram.energy_pj",),
    "link_axc_l1x_msg": ("link.axc_l1x.msg_energy_pj",),
    "link_axc_l1x_data": ("link.axc_l1x.data_energy_pj",),
    "link_l1x_l2": ("link.l1x_l2.msg_energy_pj",
                    "link.l1x_l2.data_energy_pj"),
    "link_fwd": ("link.fwd.msg_energy_pj", "link.fwd.data_energy_pj"),
    "xlat": ("ax_tlb.energy_pj", "ax_rmap.energy_pj"),
}


@dataclass
class EnergyBreakdown:
    """Per-component dynamic energy of one run, in pJ."""

    components: dict = field(default_factory=dict)

    @property
    def total_pj(self):
        return sum(self.components.values())

    @property
    def cache_pj(self):
        """Energy in the storage hierarchy (everything but compute)."""
        return self.total_pj - self.components.get("compute", 0.0)

    @property
    def link_pj(self):
        return sum(value for key, value in self.components.items()
                   if key.startswith("link_"))

    def cache_to_compute_ratio(self):
        """The Table 3 "Cache/Compute Energy" ratio."""
        compute = self.components.get("compute", 0.0)
        if compute == 0:
            return float("inf")
        return self.cache_pj / compute

    def normalized_to(self, baseline):
        """Return components scaled so the *baseline total* is 1.0 —
        the Figure 6a normalization."""
        base = baseline.total_pj
        if base == 0:
            raise ZeroDivisionError("baseline run consumed no energy")
        return {key: value / base for key, value in self.components.items()}

    def __getitem__(self, key):
        return self.components.get(key, 0.0)


def breakdown_from_stats(stats):
    """Build an :class:`EnergyBreakdown` from a stats snapshot or registry."""
    snapshot = stats if isinstance(stats, dict) else stats.snapshot()
    components = {}
    for component, sources in _COMPONENT_SOURCES.items():
        total = 0.0
        for source in sources:
            total += _prefix_total(snapshot, source)
        components[component] = total
    return EnergyBreakdown(components=components)


def _prefix_total(snapshot, name):
    """Sum ``name`` wherever it appears as a dotted component path.

    Matches the exact counter, nested counters (``name.*``) and
    scope-prefixed counters (``tile0.name`` / ``tile0.name.*``) — the
    latter appear when a multi-tile system namespaces each tile's stats.

    The matched values fold in snapshot iteration order.  With numpy
    available the fold is one ``numpy.add.accumulate`` pass
    (:func:`repro.workloads.vector.accumulate`) — a strict serial left
    fold, so the float result is bit-identical to the plain
    ``total += value`` loop it replaces (pinned by
    ``tests/test_accounting.py``); without numpy the Python loop runs.
    """
    total = snapshot.get(name, 0.0)
    prefix = name + "."
    suffix = "." + name
    infix = "." + name + "."
    matched = [value for key, value in snapshot.items()
               if key.startswith(prefix) or key.endswith(suffix)
               or infix in key]
    if not matched:
        return total
    if _vector.HAVE_NUMPY:
        return _vector.accumulate(total, matched)
    for value in matched:
        total += value
    return total
