"""Energy models: CACTI-style caches, Aladdin-style datapaths, accounting."""

from . import area, cacti
from .accel_energy import FP_OP_PJ, INT_OP_PJ, compute_energy_pj, \
    invocation_energy_pj
from .accounting import COMPONENTS, EnergyBreakdown, breakdown_from_stats
from .cacti import (
    TIMESTAMP_TAG_OVERHEAD,
    cache_access_energy_pj,
    llc_bank_access_energy_pj,
    scratchpad_access_energy_pj,
)

__all__ = [
    "area", "cacti", "FP_OP_PJ", "INT_OP_PJ", "compute_energy_pj",
    "invocation_energy_pj", "COMPONENTS", "EnergyBreakdown",
    "breakdown_from_stats", "TIMESTAMP_TAG_OVERHEAD",
    "cache_access_energy_pj", "llc_bank_access_energy_pj",
    "scratchpad_access_energy_pj",
]
