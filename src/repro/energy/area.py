"""Area and static-power estimates for the accelerator tile.

The paper sizes its wire-length (and hence link-energy) model from
component areas ("Wire Length = 2 x sum(sqrt(Component_Area_i))",
Section 4) and its results are dynamic-energy only.  This module fills
in the rest of the floorplan picture: per-component SRAM area, the
derived tile wire length, and a leakage estimate — useful for the
design-space sweeps (a 256 kB L1X is not just 2x access energy, it is
4x the leaking SRAM).
"""

from dataclasses import dataclass, field

from .cacti import cache_area_mm2, wire_length_mm

#: Static power density of 45 nm HP SRAM, mW per mm^2.  HP transistors
#: leak heavily — the reason the paper's caches are specified as ITRS HP
#: for speed but kept small.
SRAM_LEAKAGE_MW_PER_MM2 = 60.0

#: Fixed-function datapath area per accelerator, mm^2 (Aladdin-scale).
AXC_DATAPATH_MM2 = 0.15

#: Clock frequency used to convert leakage power to per-cycle energy.
_CLOCK_GHZ = 2.0


@dataclass
class TileAreaReport:
    """Component areas of one accelerator tile, mm^2."""

    components: dict = field(default_factory=dict)

    @property
    def total_mm2(self):
        return sum(self.components.values())

    def wire_length_mm(self):
        """The paper's dataflow-path wire length estimate."""
        return wire_length_mm(self.components.values())

    def leakage_mw(self):
        """Static power of the tile's SRAM at 45 nm HP."""
        sram = sum(area for name, area in self.components.items()
                   if name != "datapaths")
        return sram * SRAM_LEAKAGE_MW_PER_MM2

    def leakage_pj_per_cycle(self):
        """Leakage energy charged per simulated cycle."""
        return self.leakage_mw() / _CLOCK_GHZ  # mW / GHz == pJ/cycle


def tile_area(config, num_axcs, with_scratchpads=False):
    """Build the :class:`TileAreaReport` for one tile configuration.

    ``with_scratchpads`` reports the SCRATCH design's floorplan
    (per-AXC scratchpads, no shared L1X) instead of FUSION's.
    """
    components = {"datapaths": num_axcs * AXC_DATAPATH_MM2}
    if with_scratchpads:
        components["scratchpads"] = num_axcs * cache_area_mm2(
            config.tile.scratchpad.size_bytes)
    else:
        components["l0x"] = num_axcs * cache_area_mm2(
            config.tile.l0x.size_bytes)
        components["l1x"] = cache_area_mm2(config.tile.l1x.size_bytes)
        # Translation structures: entry counts to SRAM-equivalent bytes.
        components["ax_tlb"] = cache_area_mm2(config.tile.tlb_entries * 16)
        components["ax_rmap"] = cache_area_mm2(
            config.tile.rmap_entries * 12)
    return TileAreaReport(components=components)


def static_energy_pj(config, num_axcs, cycles, with_scratchpads=False):
    """Leakage energy of the tile over ``cycles`` simulated cycles."""
    report = tile_area(config, num_axcs, with_scratchpads)
    return report.leakage_pj_per_cycle() * cycles


def area_table(config, num_axcs):
    """FUSION-vs-SCRATCH floorplan rows for reports."""
    fusion = tile_area(config, num_axcs)
    scratch = tile_area(config, num_axcs, with_scratchpads=True)
    rows = []
    for name, area in sorted(fusion.components.items()):
        rows.append(("FUSION", name, area))
    for name, area in sorted(scratch.components.items()):
        rows.append(("SCRATCH", name, area))
    rows.append(("FUSION", "TOTAL", fusion.total_mm2))
    rows.append(("SCRATCH", "TOTAL", scratch.total_mm2))
    return rows
