"""CACTI-style analytical per-access cache energy model.

The paper models cache energy with CACTI 6.0 at 45 nm ITRS HP.  We cannot
run CACTI, so this module provides an analytical model anchored to every
energy *ratio* the paper states:

* a 4 KB L0X is ~1.5x more energy efficient than the heavily banked
  64 KB L1X (Lesson 3);
* the 256 KB L1X costs ~2x the 64 KB L1X per access (Section 5.5);
* the 32-bit ACC timestamp check adds a 15 % tag-energy overhead
  (Section 4);
* a scratchpad RAM is slightly cheaper than a same-size cache (no tags).

The functional form is the standard CACTI scaling: data-array energy grows
with the square root of the per-bank capacity (wordline/bitline length),
an H-tree factor grows logarithmically with bank count, and tag energy
grows with associativity.
"""

import math

#: pJ per sqrt(byte) of the data array at 45 nm ITRS HP.
_DATA_COEFF_PJ = 0.14

#: pJ per sqrt(byte) per way of the tag array.
_TAG_COEFF_PJ = 0.004

#: H-tree / bank-decode overhead per doubling of bank count.
_BANK_FACTOR = 0.08

#: Extra tag energy for the 32-bit ACC timestamp field check.
TIMESTAMP_TAG_OVERHEAD = 0.15

#: Stores drive the bitlines slightly harder than reads.
_WRITE_FACTOR = 1.05

#: Extra energy factor for the 4 MB NUCA LLC: CACTI 6.0 reports ~0.5 nJ
#: per read for multi-megabyte NUCA arrays at 45 nm — the long H-tree,
#: bank predecode and request network dominate, which the sqrt(bank)
#: model alone under-counts.  Calibrated so one LLC access ~= 500 pJ.
_NUCA_FACTOR = 2.9


def data_array_energy_pj(size_bytes, banks=1):
    """Dynamic energy of one data-array access, pJ."""
    bank_bytes = size_bytes / banks
    htree = 1.0 + _BANK_FACTOR * math.log2(banks)
    return _DATA_COEFF_PJ * math.sqrt(bank_bytes) * htree


def tag_array_energy_pj(size_bytes, ways, banks=1, timestamp_bits=0):
    """Dynamic energy of one tag-array access (all ways compared), pJ."""
    bank_bytes = size_bytes / banks
    energy = _TAG_COEFF_PJ * math.sqrt(bank_bytes) * ways
    if timestamp_bits:
        energy *= 1.0 + TIMESTAMP_TAG_OVERHEAD
    return energy


def cache_access_energy_pj(config, is_store=False):
    """Total dynamic energy of one access to a cache described by
    :class:`repro.common.config.CacheConfig`."""
    energy = (data_array_energy_pj(config.size_bytes, config.banks)
              + tag_array_energy_pj(config.size_bytes, config.ways,
                                    config.banks, config.timestamp_bits))
    if is_store:
        energy *= _WRITE_FACTOR
    return energy


def scratchpad_access_energy_pj(config, is_store=False):
    """Dynamic energy of one scratchpad access (data array only)."""
    energy = data_array_energy_pj(config.size_bytes, banks=1)
    if is_store:
        energy *= _WRITE_FACTOR
    return energy


def llc_bank_access_energy_pj(host_config, is_store=False):
    """Dynamic energy of one NUCA L2 access (bank + NUCA network)."""
    energy = (data_array_energy_pj(host_config.l2_size_bytes,
                                   host_config.l2_banks)
              + tag_array_energy_pj(host_config.l2_size_bytes,
                                    host_config.l2_ways,
                                    host_config.l2_banks))
    energy *= _NUCA_FACTOR
    if is_store:
        energy *= _WRITE_FACTOR
    return energy


def cache_area_mm2(size_bytes):
    """Rough cache area used for wire-length estimates (Section 4).

    Anchored to ~1 mm^2 per 64 KB of SRAM at 45 nm.
    """
    return size_bytes / (64 * 1024)


def wire_length_mm(component_areas_mm2):
    """The paper's wire-length estimate: twice the sum of the square roots
    of the component areas along the dataflow path."""
    return 2.0 * sum(math.sqrt(area) for area in component_areas_mm2)
