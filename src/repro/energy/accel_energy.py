"""Aladdin-style activity-count energy model for the accelerator datapath.

The paper (Section 4) uses per-operation energies from Aladdin's 45 nm
model; the key published anchor is 0.5 pJ per integer add [Balfour].
Fixed-function datapaths have no fetch/decode/register-file overhead, so
compute energy is simply activity counts times per-op energy — which is
exactly why data movement dominates and why the cache hierarchy matters.
"""

#: pJ per integer ALU operation (paper's cited anchor).
INT_OP_PJ = 0.5

#: pJ per floating-point operation.
FP_OP_PJ = 2.0

#: Fixed per-invocation control/sequencing energy, pJ.
INVOCATION_OVERHEAD_PJ = 50.0


def compute_energy_pj(int_ops, fp_ops):
    """Datapath energy of a run of arithmetic operations."""
    return int_ops * INT_OP_PJ + fp_ops * FP_OP_PJ


def invocation_energy_pj(trace):
    """Total compute energy of one function invocation's trace."""
    int_ops = 0
    fp_ops = 0
    for op in trace.compute_ops():
        int_ops += op.int_ops
        fp_ops += op.fp_ops
    return compute_energy_pj(int_ops, fp_ops) + INVOCATION_OVERHEAD_PJ
