"""Shim for environments without the ``wheel`` package (offline installs).

``pip install -e . --no-build-isolation`` needs bdist_wheel; this shim
lets ``python setup.py develop`` work instead.  All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
