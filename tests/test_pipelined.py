"""Pipelined FUSION (repro.systems.pipelined)."""

import pytest

from repro.common.config import small_config
from repro.sim.simulator import run
from repro.sim.validate import validate
from repro.workloads.registry import BENCHMARKS, build_workload


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_pipelined_never_slower_than_sequential(bench):
    sequential = run("FUSION", bench, "tiny")
    pipelined = run("FUSION-PIPE", bench, "tiny")
    assert pipelined.accel_cycles <= sequential.accel_cycles + 1


def test_pure_chain_gains_nothing():
    """ADPCM's decoder consumes the coder's output in place: no
    independent work exists, so the schedule is identical."""
    sequential = run("FUSION", "adpcm", "tiny")
    pipelined = run("FUSION-PIPE", "adpcm", "tiny")
    assert pipelined.accel_cycles == sequential.accel_cycles


def test_independent_stages_overlap():
    """Disparity's SAD for the next shift is independent of the current
    shift's aggregation stages: the pipeline must find overlap."""
    sequential = run("FUSION", "disparity", "small")
    pipelined = run("FUSION-PIPE", "disparity", "small")
    assert pipelined.accel_cycles < 0.97 * sequential.accel_cycles


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_pipelined_results_validate(bench):
    assert validate(run("FUSION-PIPE", bench, "tiny")) == []


def test_same_work_is_performed():
    """Scheduling must not change *what* executes — only when: the L0X
    access counts match the sequential run exactly."""
    sequential = run("FUSION", "tracking", "tiny")
    pipelined = run("FUSION-PIPE", "tracking", "tiny")

    def accesses(result):
        return sum(v for k, v in result.stats.items()
                   if k.startswith("l0x.axc") and
                   k.endswith(".accesses"))

    assert accesses(pipelined) == accesses(sequential)


def test_every_invocation_completes():
    from repro.systems import PipelinedFusionSystem
    workload = build_workload("susan", "tiny")
    system = PipelinedFusionSystem(small_config(), workload)
    result = system.run()
    assert set(result.function_names()) == set(workload.function_names())
    for name in result.function_names():
        assert result.invocation_cycles(name) > 0


def test_energy_close_to_sequential():
    """Overlap changes timing, not traffic: energy stays within a few
    percent (lease-expiry patterns shift slightly)."""
    sequential = run("FUSION", "susan", "tiny")
    pipelined = run("FUSION-PIPE", "susan", "tiny")
    ratio = pipelined.energy.total_pj / sequential.energy.total_pj
    assert 0.9 < ratio < 1.1
