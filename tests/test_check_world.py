"""Checker worlds (repro.check.world): real controllers on tiny configs."""

import pytest

from repro.check import build_world, by_name, check_quiescence, tiny_config
from repro.check.scenarios import Agent, Scenario


def run_to_completion(scenario):
    """Drive a fresh world round-robin through every agent's script."""
    world = build_world(scenario)
    violations = []
    step = 0
    while not world.done():
        enabled = world.enabled_agents()
        violations.extend(world.step(enabled[step % len(enabled)]))
        step += 1
    violations.extend(world.finalize())
    return world, violations, step


@pytest.mark.parametrize("name", ["acc-two-writers", "acc-host-mix",
                                  "shared-race", "dx-forward",
                                  "dx-expired-forward",
                                  "acc-replay-epoch"])
def test_round_robin_run_is_clean(name):
    _, violations, _ = run_to_completion(by_name(name))
    assert violations == []


def test_invoke_records_then_replays_then_declines():
    """Anti-vacuity for the checker's replay rung: a repeated invoke
    key records on its first clean occurrence, the second occurrence
    is served by the guard, and a post-expiry occurrence declines —
    all without violations and with one observation per window."""
    scenario = Scenario(
        name="unit-invoke", kind="acc", lease=5000,
        agents=(Agent("axc", (("load", 0),
                              ("invoke", "load", 0, 3),
                              ("invoke", "load", 0, 3),
                              ("advance", 6000),
                              ("invoke", "load", 0, 3))),))
    world = build_world(scenario)
    hits = [0]
    real = world._replay_match
    def counting(ordinal, recording, now):
        matched = real(ordinal, recording, now)
        hits[0] += bool(matched)
        return matched
    world._replay_match = counting
    violations = []
    while not world.done():
        violations.extend(world.step(0))
    violations.extend(world.finalize())
    assert violations == []
    assert list(world._replay_store) == [(0, "load", 0, 3)]
    assert hits[0] == 1       # second window replayed, third declined
    assert [obs[3] for obs in world.observations] == ["init"] * 4
    # All ten issued ops (1 warm load + 3 windows x 3) are accounted
    # for, replayed or expanded alike.
    assert world.issued == [10]


def test_tiny_config_is_actually_tiny():
    config = tiny_config()
    # Small enough that a handful of blocks exercise evictions, large
    # enough to hold a scenario's working set in the L1X.
    assert config.tile.l0x.size_bytes <= 256
    assert config.tile.l1x.size_bytes <= 512
    assert config.host.l2_size_bytes <= 4096


def test_clock_is_serialised_and_monotone():
    world = build_world(by_name("acc-two-writers"))
    stamps = [world.now]
    while not world.done():
        world.step(world.enabled_agents()[0])
        stamps.append(world.now)
    assert stamps == sorted(stamps)
    assert stamps[-1] > stamps[0]  # every event charged real latency


def test_loads_record_observations():
    scenario = Scenario(
        name="unit-observe", kind="acc",
        agents=(Agent("axc", (("store", 0), ("flush",))),
                Agent("axc", (("load", 0),))))
    world = build_world(scenario)
    # Producer runs fully first, then the consumer load must see w1.
    for agent in (0, 0, 1):
        assert world.step(agent) == []
    assert world.finalize() == []
    assert world.observations == [("axc1", 1, 0, "axc0.w1")]
    assert world.final_value(0) == "axc0.w1"


def test_final_value_without_stores_is_init():
    scenario = Scenario(
        name="unit-init", kind="acc",
        agents=(Agent("axc", (("load", 0),)),))
    world = build_world(scenario)
    world.step(0)
    world.finalize()
    assert world.observations == [("axc0", 1, 0, "init")]
    assert world.final_value(0) == "init"


def test_state_hash_is_deterministic_across_worlds():
    scenario = by_name("dx-forward")
    hashes = []
    for _ in range(2):
        world = build_world(scenario)
        world.step(0)
        world.step(1)
        hashes.append(world.state_hash())
    assert hashes[0] == hashes[1]


def test_state_hash_distinguishes_schedules():
    scenario = by_name("acc-two-writers")
    a = build_world(scenario)
    a.step(0)
    b = build_world(scenario)
    b.step(1)
    assert a.state_hash() != b.state_hash()


def test_quiescence_flags_unflushed_dirty_line():
    # No flush in the script and finalize() suppressed: the world ends
    # with axc0's store still dirty in its L0X.
    scenario = Scenario(
        name="unit-dirty-end", kind="acc",
        agents=(Agent("axc", (("store", 0),)),))
    world = build_world(scenario)
    assert world.step(0) == []
    found = check_quiescence(world)
    assert any(v.invariant in ("quiescence", "conservation")
               for v in found)


def test_shared_world_tracks_last_store():
    scenario = Scenario(
        name="unit-shared-last", kind="shared",
        agents=(Agent("axc", (("store", 0), ("flush",))),
                Agent("host", (("store", 0),))))
    world = build_world(scenario)
    for agent in (0, 1, 0):   # tile store, host store, tile flush
        assert world.step(agent) == []
    assert world.finalize() == []
    # The host's store serialised after the tile's.
    assert world.final_value(0) == "host.w1"
