"""Property-based tests: ACC protocol invariants under random traffic.

A random interleaving of loads/stores from two accelerators plus host
accesses must never violate the protocol's structural invariants:

* every granted epoch is bounded by the L1X line's GTIME at grant
  time (the bound that lets the L1X answer host forwards without
  probing any L0X);
* every L1X line has an AX-RMAP entry and vice versa;
* hit/miss accounting is exact.
"""

from hypothesis import given, note, settings
from hypothesis import strategies as st

from repro.common.config import small_config
from repro.common.stats import StatsRegistry
from repro.common.types import AccessType, MemOp
from repro.coherence.acc import AccL0XController, AccL1XController
from repro.coherence.mesi import HostMemorySystem
from repro.interconnect.link import Link
from repro.mem.tlb import PageTable

LEASE = 200

op_strategy = st.tuples(
    st.integers(0, 2),                 # 0, 1: AXC id; 2: host
    st.sampled_from([AccessType.LOAD, AccessType.STORE]),
    st.integers(0, 47).map(lambda i: i * 64),   # 48 blocks: forces churn
    st.integers(1, 50),                # time step
)


def build_tile():
    config = small_config()
    stats = StatsRegistry()
    mem = HostMemorySystem(config, stats)
    page_table = PageTable()
    l1x = AccL1XController(config, mem, page_table, stats)
    mem.tile_agent = l1x
    axc_link = Link("axc_l1x", 0.4, stats)
    fwd_link = Link("fwd", 0.1, stats)
    l0xs = [AccL0XController(i, config, l1x, axc_link, fwd_link, stats)
            for i in range(2)]
    return mem, page_table, l1x, l0xs, stats


def check_invariants(l1x, l0xs, now, granted_block=None, granting=None,
                     prev_lease=None):
    if granted_block is not None:
        # At grant time, the just-granted lease must be bounded by the
        # L1X's GTIME: that bound is what lets the L1X answer host
        # forwards without probing any L0X.  (A *global* check across
        # all L0X lines does not hold in this model: stalls are
        # accounted as latency while state changes are instantaneous,
        # so a forward-evict + refetch can reincarnate an L1X line
        # under an older live lease — in hardware the stall serialises
        # those events.  The same reincarnation means the bound only
        # applies when the access actually granted a lease: an L0X hit
        # under a still-live older lease never contacts the L1X, so its
        # lease may legitimately exceed a refetched line's GTIME.)
        line = granting.cache.lookup(granted_block, touch=False)
        l1x_line = l1x.cache.lookup(granted_block, touch=False)
        if line is not None and l1x_line is not None and \
                line.lease is not None and line.lease != prev_lease:
            assert l1x_line.gtime is not None
            assert l1x_line.gtime >= line.lease, "GTIME below a grant"
    for line in l1x.cache.lines():
        assert line.paddr is not None
        assert l1x.rmap.lookup(line.paddr) == line.block
    assert l1x.rmap.occupancy == l1x.cache.occupancy


@given(st.lists(op_strategy, max_size=120))
@settings(max_examples=60, deadline=None)
def test_acc_invariants_hold_under_random_traffic(ops):
    note("op trace: {!r}".format(ops))
    mem, page_table, l1x, l0xs, stats = build_tile()
    now = 0
    for agent, kind, vaddr, step in ops:
        now += step
        if agent == 2:
            paddr = page_table.translate(vaddr)
            if kind is AccessType.STORE:
                mem.host_store(paddr, now)
            else:
                mem.host_load(paddr, now)
        else:
            op = MemOp(kind, vaddr)
            held = l0xs[agent].cache.lookup(op.block, touch=False)
            prev_lease = held.lease if held is not None else None
            l0xs[agent].access(op, now, LEASE)
            check_invariants(l1x, l0xs, now, granted_block=op.block,
                             granting=l0xs[agent], prev_lease=prev_lease)
            continue
        check_invariants(l1x, l0xs, now)


@given(st.lists(op_strategy, max_size=120))
@settings(max_examples=40, deadline=None)
def test_acc_accounting_is_exact(ops):
    note("op trace: {!r}".format(ops))
    _, _, l1x, l0xs, stats = build_tile()
    now = 0
    issued = [0, 0]
    for agent, kind, vaddr, step in ops:
        now += step
        if agent == 2:
            continue
        l0xs[agent].access(MemOp(kind, vaddr), now, LEASE)
        issued[agent] += 1
    for axc in range(2):
        prefix = "l0x.axc{}.".format(axc)
        assert (stats.get(prefix + "hits")
                + stats.get(prefix + "misses")) == issued[axc]
    assert (stats.get("l1x.hits") + stats.get("l1x.misses")
            == stats.get("l1x.read_epochs") + stats.get("l1x.write_epochs"))


@given(st.lists(op_strategy, max_size=100))
@settings(max_examples=40, deadline=None)
def test_flush_leaves_no_dirty_l0x_lines(ops):
    note("op trace: {!r}".format(ops))
    _, _, l1x, l0xs, _ = build_tile()
    now = 0
    for agent, kind, vaddr, step in ops:
        if agent == 2:
            continue
        now += step
        l0xs[agent].access(MemOp(kind, vaddr), now, LEASE)
    for l0x in l0xs:
        l0x.flush_dirty(now)
        assert not l0x.cache.dirty_lines()
        assert not l0x._incoming_forwards
