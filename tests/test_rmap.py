"""AX-RMAP reverse map (repro.mem.rmap)."""

from repro.common.stats import StatsRegistry
from repro.mem.rmap import AxRmap


def make_rmap():
    stats = StatsRegistry()
    return AxRmap(stats), stats


def test_record_and_lookup():
    rmap, stats = make_rmap()
    rmap.record_fill(0x100000, 0x40)
    assert rmap.lookup(0x100000) == 0x40
    assert stats.get("ax_rmap.lookups") == 1


def test_lookup_missing_returns_none_but_counts():
    rmap, stats = make_rmap()
    assert rmap.lookup(0x200000) is None
    assert stats.get("ax_rmap.lookups") == 1


def test_record_fill_is_block_aligned():
    rmap, _ = make_rmap()
    rmap.record_fill(0x100020, 0x44)
    assert rmap.lookup(0x100000) == 0x40


def test_synonym_detection_returns_duplicate():
    rmap, stats = make_rmap()
    assert rmap.record_fill(0x100000, 0x40) is None
    duplicate = rmap.record_fill(0x100000, 0x80)
    assert duplicate == 0x40
    assert stats.get("ax_rmap.synonym_evictions") == 1
    # Only the new synonym remains mapped.
    assert rmap.lookup(0x100000) == 0x80


def test_same_mapping_is_not_a_synonym():
    rmap, stats = make_rmap()
    rmap.record_fill(0x100000, 0x40)
    assert rmap.record_fill(0x100000, 0x40) is None
    assert stats.get("ax_rmap.synonym_evictions") == 0


def test_remove():
    rmap, _ = make_rmap()
    rmap.record_fill(0x100000, 0x40)
    rmap.remove(0x100000)
    assert rmap.lookup(0x100000) is None
    assert rmap.occupancy == 0
