"""Lease policies (repro.coherence.lease_policy)."""

import pytest

from repro.coherence.lease_policy import (
    AdaptiveLeasePolicy,
    FixedLeasePolicy,
    make_policy,
)


def test_fixed_policy_is_identity():
    policy = FixedLeasePolicy()
    assert policy.lease_for(3, 500) == 500
    policy.on_renewal_miss(3)
    policy.on_wasted_lease(3)
    assert policy.lease_for(3, 500) == 500


def test_adaptive_doubles_on_renewal_miss():
    policy = AdaptiveLeasePolicy(num_sets=16)
    assert policy.lease_for(0, 400) == 400
    policy.on_renewal_miss(0)
    assert policy.lease_for(0, 400) == 800
    policy.on_renewal_miss(0)
    assert policy.lease_for(0, 400) == 1600


def test_adaptive_halves_on_wasted_lease():
    policy = AdaptiveLeasePolicy(num_sets=16)
    policy.on_wasted_lease(5)
    assert policy.lease_for(5, 400) == 200


def test_adaptive_bounds():
    policy = AdaptiveLeasePolicy(num_sets=4)
    for _ in range(10):
        policy.on_renewal_miss(1)
    assert policy.lease_for(1, 100) == 100 << policy.MAX_SHIFT
    for _ in range(20):
        policy.on_wasted_lease(1)
    assert policy.lease_for(1, 100) == 100 >> -policy.MIN_SHIFT


def test_adaptive_sets_are_independent():
    policy = AdaptiveLeasePolicy(num_sets=8)
    policy.on_renewal_miss(2)
    assert policy.lease_for(2, 100) == 200
    assert policy.lease_for(3, 100) == 100


def test_adaptive_counts_events():
    policy = AdaptiveLeasePolicy(num_sets=8)
    policy.on_renewal_miss(0)
    policy.on_wasted_lease(1)
    policy.on_wasted_lease(2)
    assert policy.renewal_misses == 1
    assert policy.wasted_leases == 2


def test_factory():
    assert isinstance(make_policy("fixed", 16), FixedLeasePolicy)
    assert isinstance(make_policy("adaptive", 16), AdaptiveLeasePolicy)
    with pytest.raises(ValueError):
        make_policy("oracle", 16)


def test_adaptive_reduces_renewal_misses_end_to_end():
    """On a lease-thrashing workload, the adaptive policy must cut L0X
    renewal misses relative to fixed short leases."""
    from repro.common.config import small_config
    from repro.systems import FusionSystem
    from repro.workloads.registry import build_workload
    workload = build_workload("filter", "small")
    short = small_config().with_lease(40)
    fixed = FusionSystem(short, workload).run()
    adaptive = FusionSystem(short.with_lease_policy("adaptive"),
                            workload).run()

    def misses(result):
        return sum(v for k, v in result.stats.items()
                   if k.startswith("l0x.axc") and k.endswith(".misses"))

    assert misses(adaptive) < misses(fixed)
