"""Lease policies (repro.coherence.lease_policy)."""

import pytest

from repro.coherence.lease_policy import (
    AdaptiveLeasePolicy,
    FixedLeasePolicy,
    make_policy,
)


def test_fixed_policy_is_identity():
    policy = FixedLeasePolicy()
    assert policy.lease_for(3, 500) == 500
    policy.on_renewal_miss(3)
    policy.on_wasted_lease(3)
    assert policy.lease_for(3, 500) == 500


def test_adaptive_doubles_on_renewal_miss():
    policy = AdaptiveLeasePolicy(num_sets=16)
    assert policy.lease_for(0, 400) == 400
    policy.on_renewal_miss(0)
    assert policy.lease_for(0, 400) == 800
    policy.on_renewal_miss(0)
    assert policy.lease_for(0, 400) == 1600


def test_adaptive_halves_on_wasted_lease():
    policy = AdaptiveLeasePolicy(num_sets=16)
    policy.on_wasted_lease(5)
    assert policy.lease_for(5, 400) == 200


def test_adaptive_bounds():
    policy = AdaptiveLeasePolicy(num_sets=4)
    for _ in range(10):
        policy.on_renewal_miss(1)
    assert policy.lease_for(1, 100) == 100 << policy.MAX_SHIFT
    for _ in range(20):
        policy.on_wasted_lease(1)
    assert policy.lease_for(1, 100) == 100 >> -policy.MIN_SHIFT


def test_adaptive_sets_are_independent():
    policy = AdaptiveLeasePolicy(num_sets=8)
    policy.on_renewal_miss(2)
    assert policy.lease_for(2, 100) == 200
    assert policy.lease_for(3, 100) == 100


def test_adaptive_counts_events():
    policy = AdaptiveLeasePolicy(num_sets=8)
    policy.on_renewal_miss(0)
    policy.on_wasted_lease(1)
    policy.on_wasted_lease(2)
    assert policy.renewal_misses == 1
    assert policy.wasted_leases == 2


def test_factory():
    assert isinstance(make_policy("fixed", 16), FixedLeasePolicy)
    assert isinstance(make_policy("adaptive", 16), AdaptiveLeasePolicy)
    with pytest.raises(ValueError):
        make_policy("oracle", 16)


def test_adaptive_reduces_renewal_misses_end_to_end():
    """On a lease-thrashing workload, the adaptive policy must cut L0X
    renewal misses relative to fixed short leases."""
    from repro.common.config import small_config
    from repro.systems import FusionSystem
    from repro.workloads.registry import build_workload
    workload = build_workload("filter", "small")
    short = small_config().with_lease(40)
    fixed = FusionSystem(short, workload).run()
    adaptive = FusionSystem(short.with_lease_policy("adaptive"),
                            workload).run()

    def misses(result):
        return sum(v for k, v in result.stats.items()
                   if k.startswith("l0x.axc") and k.endswith(".misses"))

    assert misses(adaptive) < misses(fixed)


# -- CountingLeasePolicy (the policy subsystem's telemetry tap) --------------

def test_counting_policy_delegates_and_counts():
    from repro.coherence.lease_policy import CountingLeasePolicy
    counts = {"renewal_misses": 0, "wasted_leases": 0}
    policy = CountingLeasePolicy(AdaptiveLeasePolicy(num_sets=8),
                                 counts)
    assert policy.name == "adaptive"
    policy.on_renewal_miss(2)
    policy.on_renewal_miss(2)
    policy.on_wasted_lease(5)
    assert counts == {"renewal_misses": 2, "wasted_leases": 1}
    # Arithmetic still the inner policy's: two misses doubled twice.
    assert policy.lease_for(2, 100) == 400
    assert policy.lease_for(5, 100) == 50
    # The inner policy saw every event too.
    assert policy.inner.renewal_misses == 2


def test_counting_policy_owns_counts_when_not_shared():
    from repro.coherence.lease_policy import CountingLeasePolicy
    policy = CountingLeasePolicy(FixedLeasePolicy())
    policy.on_wasted_lease(0)
    assert policy.counts["wasted_leases"] == 1
    assert policy.counts["renewal_misses"] == 0


# -- lease-length edge cases (against a real L0X controller) -----------------

def _counting_tile():
    """A two-L0X tile whose first L0X counts lease events."""
    from tests.test_acc import make_tile
    from repro.coherence.lease_policy import CountingLeasePolicy
    tile = make_tile()
    counts = {"renewal_misses": 0, "wasted_leases": 0}
    tile.l0xa.lease_policy = CountingLeasePolicy(
        tile.l0xa.lease_policy, counts)
    return tile, counts


def test_zero_length_lease_expires_at_grant():
    """A zero lease expires the moment the fill completes (the epoch
    end is the *grant* time plus the lease): every later access is a
    renewal miss, degenerating ACC to per-access L1X traffic — legal,
    just slow."""
    from tests.test_acc import load
    tile, counts = _counting_tile()
    latency = tile.l0xa.access(load(0x40), now=0, lease=0)
    line = tile.l0xa.cache.lookup(0x40, touch=False)
    assert line.lease <= latency            # dead on arrival
    now = line.lease
    for _ in range(3):
        tile.l0xa.access(load(0x40), now=now, lease=0)
        now = tile.l0xa.cache.lookup(0x40, touch=False).lease
    assert tile.stats.get("l0x.axc0.hits") == 0
    assert tile.stats.get("l0x.axc0.misses") == 4
    assert counts["renewal_misses"] == 3   # every re-request, post-cold


def test_renewal_exactly_at_epoch_boundary_is_a_miss():
    """``line.lease > now`` is strict: an access in the very cycle the
    epoch ends must take the renewal path (self-downgrade + re-acquire),
    not ride the stale lease."""
    from tests.test_acc import load
    tile, counts = _counting_tile()
    tile.l0xa.access(load(0x40), now=0, lease=500)
    line = tile.l0xa.cache.lookup(0x40, touch=False)
    end = line.lease
    tile.l0xa.access(load(0x44), now=end - 1, lease=500)  # last cycle
    assert tile.stats.get("l0x.axc0.hits") == 1
    assert counts["renewal_misses"] == 0
    tile.l0xa.access(load(0x48), now=end, lease=500)      # boundary
    assert tile.stats.get("l0x.axc0.misses") == 2
    assert counts["renewal_misses"] == 1


def test_lease_longer_than_invocation_never_renews():
    """A lease outlasting the whole invocation yields zero renewal
    misses end-to-end (the other extreme of the lease tradeoff)."""
    from repro.common.config import small_config
    from repro.systems import SYSTEMS
    from repro.workloads.registry import build_workload
    config = small_config().with_policy(
        selector="schedule", schedule=("fusion:lease=1000000000",))
    system = SYSTEMS["POLICY"](config, build_workload("fft", "tiny"))
    system.run()
    assert sum(r.lease_expiries for r in system.telemetry) == 0
    # The short-lease extreme on the same workload renews constantly.
    short = SYSTEMS["POLICY"](
        small_config().with_policy(selector="schedule",
                                   schedule=("fusion:lease=1",)),
        build_workload("fft", "tiny"))
    short.run()
    assert sum(r.lease_expiries for r in short.telemetry) > 0


def test_adaptive_policy_with_zero_default_lease_stays_zero():
    """Doubling a zero lease is still zero — the adaptive policy cannot
    rescue a degenerate base lease (it scales, never adds)."""
    policy = AdaptiveLeasePolicy(num_sets=4)
    policy.on_renewal_miss(0)
    policy.on_renewal_miss(0)
    assert policy.lease_for(0, 0) == 0
