"""Property-based tests: run coalescing is invisible to the results.

The coalesced fast path (``access_run`` + the tight replay loop in
``AxcCore.run``) is a pure interpreter optimisation: for any trace, on
any of the four evaluated systems, the :class:`RunResult` with
``COALESCE_RUNS`` enabled must be *bit-identical* — every cycle count
and every stats counter, floats compared via ``repr`` — to the one
computed by the per-op path.  The traces here are biased to produce
long same-line runs (the fast path's target) interleaved with compute,
kind changes and cross-accelerator sharing (the guards' targets).
"""

from hypothesis import given, note, settings
from hypothesis import strategies as st

import repro.accel.core as core_mod
from repro.common.config import small_config
from repro.common.types import AccessType, ComputeOp, FunctionTrace, \
    MemOp, WorkloadTrace
from repro.systems import FusionDxSystem, FusionSystem, ScratchSystem, \
    SharedSystem

SYSTEMS = (ScratchSystem, SharedSystem, FusionSystem, FusionDxSystem)

# A segment is either a same-line access run (block index, store?,
# length — lengths up to 6 make the fast path bite) or a compute op.
# Blocks come from a 16-line pool so lines churn through the tiny L0X.
run_segment = st.tuples(
    st.integers(0, 15),       # block index in the shared pool
    st.booleans(),            # store?
    st.integers(1, 6),        # run length
)
compute_segment = st.builds(ComputeOp, int_ops=st.integers(1, 8))
segments = st.lists(st.one_of(run_segment, compute_segment),
                    min_size=1, max_size=20)

workloads = st.lists(
    st.tuples(st.integers(0, 2), segments),   # (function tag, segments)
    min_size=1, max_size=4)

BASE = 0x10000


def _expand(segs):
    ops = []
    for seg in segs:
        if isinstance(seg, ComputeOp):
            ops.append(seg)
            continue
        index, is_store, length = seg
        kind = AccessType.STORE if is_store else AccessType.LOAD
        for word in range(length):
            ops.append(MemOp(kind, BASE + index * 64 + (word % 8) * 8))
    return ops


def build(spec):
    invocations = [
        FunctionTrace(name="fn{}".format(tag), benchmark="prop",
                      ops=_expand(segs), lease_time=250)
        for tag, segs in spec
        if _expand(segs)
    ]
    size = 16 * 64
    return WorkloadTrace(
        benchmark="prop", invocations=invocations,
        host_input_arrays=[(BASE, size)],
        host_output_arrays=[(BASE, size)],
        array_ranges={"pool": (BASE, size)},
    )


def fingerprint(result):
    """Everything a RunResult reports, floats pinned via ``repr``."""
    return {
        "accel_cycles": result.accel_cycles,
        "total_cycles": result.total_cycles,
        "energy_pj": repr(result.energy.total_pj),
        "stats": sorted((name, repr(value))
                        for name, value in result.stats.items()),
    }


def run_both_paths(system_cls, workload):
    original = core_mod.COALESCE_RUNS
    try:
        core_mod.COALESCE_RUNS = True
        coalesced = system_cls(small_config(), workload).run()
        core_mod.COALESCE_RUNS = False
        per_op = system_cls(small_config(), workload).run()
    finally:
        core_mod.COALESCE_RUNS = original
    return coalesced, per_op


@given(workloads)
@settings(max_examples=25, deadline=None)
def test_coalesced_results_bit_identical_on_all_systems(spec):
    note("workload spec: {!r}".format(spec))
    workload = build(spec)
    if not workload.invocations:
        return
    for system_cls in SYSTEMS:
        coalesced, per_op = run_both_paths(system_cls, workload)
        assert fingerprint(coalesced) == fingerprint(per_op), \
            "coalescing changed {} results".format(system_cls.name)


@given(segments)
@settings(max_examples=25, deadline=None)
def test_single_function_store_heavy_runs_match(segs):
    """Stress the store-side guards (W state, write-through, dirty
    accounting) with a single hot function."""
    note("segments: {!r}".format(segs))
    ops = _expand(segs)
    if not ops:
        return
    workload = build([(0, segs)])
    for system_cls in SYSTEMS:
        coalesced, per_op = run_both_paths(system_cls, workload)
        assert fingerprint(coalesced) == fingerprint(per_op), \
            "coalescing changed {} results".format(system_cls.name)
