"""Functional verification of the benchmark kernels.

The kernels are not just trace generators: they compute real results.
Each test checks the kernel's output against an independent reference
(numpy / scipy) or a mathematical property of the algorithm.
"""

import numpy as np
import pytest
import scipy.ndimage

from repro.workloads.registry import build_workload_with_outputs


# -- FFT ----------------------------------------------------------------------

def test_fft_matches_numpy_iterated():
    _, out = build_workload_with_outputs("fft", "tiny")
    data = np.asarray(out["input_re"]) + 1j * np.asarray(out["input_im"])
    for _ in range(out["iterations"]):
        data = np.fft.fft(data)
    np.testing.assert_allclose(out["re"], data.real, rtol=1e-6, atol=1e-6)
    np.testing.assert_allclose(out["im"], data.imag, rtol=1e-6, atol=1e-6)


def test_fft_rejects_non_power_of_two():
    from repro.workloads.kernels.fft import build_workload
    from repro.workloads.registry import _factory
    with pytest.raises(ValueError):
        build_workload(_factory, n=100)


# -- ADPCM --------------------------------------------------------------------

def test_adpcm_roundtrip_tracks_signal():
    _, out = build_workload_with_outputs("adpcm", "tiny")
    original = np.asarray(out["original"], dtype=float)
    decoded = np.asarray(out["decoded"], dtype=float)
    # 4-bit ADPCM is lossy but must track the waveform closely.
    rms_signal = np.sqrt(np.mean(original ** 2))
    rms_error = np.sqrt(np.mean((original - decoded) ** 2))
    assert rms_error < 0.25 * rms_signal


def test_adpcm_codes_are_4bit():
    _, out = build_workload_with_outputs("adpcm", "tiny")
    assert all(0 <= code < 16 for code in out["codes"])


def test_adpcm_step_table_is_monotonic():
    _, out = build_workload_with_outputs("adpcm", "tiny")
    table = out["step_table"]
    assert all(a <= b for a, b in zip(table, table[1:]))


# -- Filter -------------------------------------------------------------------

def test_median_filter_matches_scipy_interior():
    _, out = build_workload_with_outputs("filter", "tiny")
    dim = out["dim"]
    noisy = np.asarray(out["noisy_input"]).reshape(dim, dim)
    reference = scipy.ndimage.median_filter(noisy, size=3)
    ours = np.asarray(out["median"]).reshape(dim, dim)
    np.testing.assert_array_equal(ours[1:-1, 1:-1],
                                  reference[1:-1, 1:-1])


def test_median_filter_removes_salt_and_pepper():
    _, out = build_workload_with_outputs("filter", "tiny")
    dim = out["dim"]
    noisy = np.asarray(out["noisy_input"]).reshape(dim, dim)[1:-1, 1:-1]
    med = np.asarray(out["median"]).reshape(dim, dim)[1:-1, 1:-1]
    extremes = lambda img: np.count_nonzero((img == 0) | (img == 255))
    assert extremes(med) < extremes(noisy)


def test_edge_filter_output_is_binary():
    _, out = build_workload_with_outputs("filter", "tiny")
    assert set(out["edge"]) <= {0, 255}


# -- Tracking -----------------------------------------------------------------

def _tracking_reference(out):
    width, height = out["width"], out["height"]
    blurred = np.asarray(out["blurred"]).reshape(height, width)
    return width, height, blurred


def test_tracking_sobel_matches_blurred_gradient():
    _, out = build_workload_with_outputs("tracking", "tiny")
    width, height, blurred = _tracking_reference(out)
    dx = np.asarray(out["sobel_dx"]).reshape(height, width)
    expected = blurred[1:-1, 2:] - blurred[1:-1, :-2]
    np.testing.assert_array_equal(dx[1:-1, 1:-1], expected)


def test_tracking_resize_averages_quads():
    _, out = build_workload_with_outputs("tracking", "tiny")
    width, height, blurred = _tracking_reference(out)
    rw, rh = width // 2, height // 2
    resized = np.asarray(out["resized"]).reshape(rh, rw)
    quads = (blurred[0::2, 0::2][:rh, :rw]
             + blurred[0::2, 1::2][:rh, :rw]
             + blurred[1::2, 0::2][:rh, :rw]
             + blurred[1::2, 1::2][:rh, :rw]) // 4
    np.testing.assert_array_equal(resized, quads)


def test_tracking_blur_smooths():
    _, out = build_workload_with_outputs("tracking", "tiny")
    width, height, blurred = _tracking_reference(out)
    interior = blurred[1:-1, 1:-1]
    # A binomial blur of uniform noise shrinks the variance.
    assert interior.std() < 255 / np.sqrt(12) * 0.9


# -- Disparity ----------------------------------------------------------------

def test_disparity_recovers_ground_truth_shift():
    _, out = build_workload_with_outputs("disparity", "small")
    width, height = out["width"], out["height"]
    disp = np.asarray(out["disparity"]).reshape(height, width)
    # The right image is the left shifted by true_shift; the dominant
    # recovered disparity (away from borders) must match it.
    interior = disp[6:-6, 10:-6]
    values, counts = np.unique(interior, return_counts=True)
    dominant = values[counts.argmax()]
    expected = out["true_shift"] * 255 // out["shifts"]
    assert dominant == expected


# -- Histogram ----------------------------------------------------------------

def test_histogram_counts_every_pixel():
    _, out = build_workload_with_outputs("histogram", "tiny")
    assert sum(out["hist"]) == out["num_pixels"]


def test_equalization_flattens_lightness():
    _, out = build_workload_with_outputs("histogram", "tiny")
    light = np.asarray(out["lightness"])
    # Input lightness was clustered in a narrow band; after
    # equalisation it must span most of [0, 1].
    assert light.max() - light.min() > 0.8
    assert 0.3 < light.mean() < 0.7


def test_equalization_lut_is_monotonic():
    _, out = build_workload_with_outputs("histogram", "tiny")
    lut = out["lut"]
    assert all(a <= b for a, b in zip(lut, lut[1:]))


def test_hsl_roundtrip_outputs_valid_rgb():
    _, out = build_workload_with_outputs("histogram", "tiny")
    for channel in ("r", "g", "b"):
        values = out[channel]
        assert min(values) >= 0 and max(values) <= 255


# -- Susan --------------------------------------------------------------------

def test_susan_outputs_are_masks():
    _, out = build_workload_with_outputs("susan", "tiny")
    assert set(out["corners"]) <= {0, 255}
    assert set(out["edges"]) <= {0, 255}


def test_susan_smoothing_reduces_variance():
    _, out = build_workload_with_outputs("susan", "tiny")
    dim = out["dim"]
    smooth = np.asarray(out["smoothed"]).reshape(dim, dim)
    interior = smooth[2:-2, 2:-2]
    assert interior.std() < 255 / np.sqrt(12)


def test_susan_corners_rarer_than_edges():
    _, out = build_workload_with_outputs("susan", "small")
    corners = sum(1 for v in out["corners"] if v)
    edges = sum(1 for v in out["edges"] if v)
    assert corners <= edges
